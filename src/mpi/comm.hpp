// MPI-flavoured communicator over the runtime abstraction.
//
// This is the layer application code is written against, mirroring the MPI
// calls the paper's implementations use (MPI_Send/Recv, MPI_Bcast,
// MPI_Reduce/Allreduce, MPI_Barrier, and the alltoallv that backs
// MapReduce-MPI's aggregate()). Collectives are binomial trees built on
// point-to-point sends, so their log2(p) cost emerges from the backend —
// the DES network model or the host machine — instead of being asserted.
//
// Comm is written purely against rt::Rank (Transport + Clock), so the same
// application code runs on the discrete-event simulator and on the native
// multithreaded backend. The Comm(sim::Process&) convenience constructor
// wraps a DES process in an internally-owned adapter for the existing
// sim-only call sites.
//
// Tag space: application tags must lie in [0, kUserTagLimit); the
// collective implementations use reserved tags above that range. The
// transport's per-channel FIFO guarantee makes fixed collective tags safe.
//
// "Phantom" variants (bcast_phantom, reduce_phantom, ...) execute the same
// communication trees but carry empty payloads with a nominal byte count:
// on the DES that is how paper-scale transfers (e.g. broadcasting a
// multi-megabyte SOM codebook to 1024 ranks) are timed without moving real
// gigabytes through host memory; on real backends they degrade to timed
// no-ops (empty messages through the same trees, zero bandwidth charge).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"
#include "fault/fault.hpp"
#include "obs/metrics.hpp"
#include "rt/runtime.hpp"
#include "trace/trace.hpp"

namespace mrbio::sim {
class Process;
}

namespace mrbio::mpi {

constexpr int kAnySource = rt::kAnySource;
constexpr int kAnyTag = rt::kAnyTag;
constexpr int kAnyUserTag = rt::kAnyUserTag;
constexpr int kUserTagLimit = 1 << 20;
// The fault layer sits below mpi and gates message faults on its own copy
// of the user-tag boundary; the two must agree.
static_assert(kUserTagLimit == fault::kUserTagLimit);

using RecvStatus = rt::RecvStatus;
using PeerState = rt::PeerState;

/// Element-wise reduction operators.
enum class ReduceOp { Sum, Max, Min };

class Comm {
 public:
  explicit Comm(rt::Rank& rank) : rank_(&rank) {}

  /// Convenience for DES-only call sites: wraps the process in an
  /// internally-owned rt::SimRank adapter.
  explicit Comm(sim::Process& proc);

  int rank() const { return rank_->rank(); }
  int size() const { return rank_->size(); }
  double now() const { return rank_->now(); }
  void compute(double seconds) { rank_->compute(seconds); }

  /// The rank handle of the active backend.
  rt::Rank& runtime() { return *rank_; }

  /// The backend's span recorder / metrics registry, or null when off.
  trace::Recorder* tracer() const { return rank_->tracer(); }
  obs::Registry* metrics() const { return rank_->metrics(); }

  // ---- point to point ----

  void send_bytes(int dst, int tag, std::vector<std::byte> payload) {
    check_user_tag(tag);
    rank_->send(dst, tag, std::move(payload));
  }

  /// Sends with an explicit nominal size for the timing model.
  void send_bytes(int dst, int tag, std::vector<std::byte> payload,
                  std::uint64_t nominal_bytes) {
    check_user_tag(tag);
    rank_->send(dst, tag, std::move(payload), nominal_bytes);
  }

  rt::Message recv_bytes(int src = kAnySource, int tag = kAnyTag) {
    return rank_->recv(src, tag);
  }

  /// Failure-notification receive: blocks until a match arrives (Ok), the
  /// absolute `deadline` in this backend's time base passes (Timeout), or
  /// the awaited specific peer terminated with nothing matching in flight
  /// (PeerDead) — instead of hanging on a dead peer forever.
  RecvStatus recv_bytes_deadline(int src, int tag, double deadline, rt::Message* out) {
    return rank_->recv_deadline(src, tag, deadline, out);
  }

  /// Observed lifecycle of `peer` (Active on backends without tracking).
  PeerState peer_state(int peer) const { return rank_->peer_state(peer); }

  /// Blocks until the absolute time `deadline` without consuming messages:
  /// a timed receive on a reserved tag no sender ever uses, so both
  /// backends sleep in their own time base (virtual or wall-clock).
  void sleep_until(double deadline) {
    rt::Message scratch;
    rank_->recv_deadline(rank(), kTagNever, deadline, &scratch);
  }

  bool has_message(int src = kAnySource, int tag = kAnyTag) const {
    return rank_->has_message(src, tag);
  }

  /// Sends a single trivially-copyable value.
  template <typename T>
  void send_value(int dst, int tag, const T& value) {
    ByteWriter w;
    w.put(value);
    send_bytes(dst, tag, w.take());
  }

  /// Receives a single value; optionally reports the actual source rank.
  template <typename T>
  T recv_value(int src = kAnySource, int tag = kAnyTag, int* actual_src = nullptr,
               int* actual_tag = nullptr) {
    rt::Message m = recv_bytes(src, tag);
    if (actual_src != nullptr) *actual_src = m.source;
    if (actual_tag != nullptr) *actual_tag = m.tag;
    ByteReader r(m.payload);
    return r.get<T>();
  }

  template <typename T>
  void send_span(int dst, int tag, std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    ByteWriter w;
    w.put<std::uint64_t>(values.size());
    w.append(values.data(), values.size_bytes());
    send_bytes(dst, tag, w.take());
  }

  template <typename T>
  std::vector<T> recv_vector(int src = kAnySource, int tag = kAnyTag,
                             int* actual_src = nullptr) {
    rt::Message m = recv_bytes(src, tag);
    if (actual_src != nullptr) *actual_src = m.source;
    ByteReader r(m.payload);
    return r.get_vector<T>();
  }

  // ---- nonblocking operations ----
  //
  // isend is complete immediately (the runtime buffers eagerly, like an
  // MPI_Ibsend); irecv registers interest and the matching happens at
  // wait()/test() time, which models the same completion instant as a
  // blocking receive posted there: completion = max(now, arrival).

  class Request {
   public:
    bool is_send() const { return is_send_; }
    bool completed() const { return done_; }

   private:
    friend class Comm;
    int src_ = kAnySource;
    int tag_ = kAnyTag;
    bool is_send_ = false;
    bool done_ = false;
    rt::Message message_;
  };

  /// Buffered nonblocking send: returns an already-complete request.
  Request isend(int dst, int tag, std::vector<std::byte> payload) {
    send_bytes(dst, tag, std::move(payload));
    Request r;
    r.is_send_ = true;
    r.done_ = true;
    return r;
  }

  /// Nonblocking receive: match deferred to wait()/test().
  Request irecv(int src = kAnySource, int tag = kAnyTag) {
    Request r;
    r.src_ = src;
    r.tag_ = tag;
    return r;
  }

  /// Blocks until the request completes; returns the message for receives
  /// (an empty message for sends). Idempotent once completed.
  rt::Message wait(Request& request) {
    if (!request.done_) {
      request.message_ = recv_bytes(request.src_, request.tag_);
      request.done_ = true;
    }
    return request.message_;
  }

  /// Nonblocking completion check; on success the message is available
  /// via wait() without blocking.
  bool test(Request& request) {
    if (request.done_) return true;
    if (!has_message(request.src_, request.tag_)) return false;
    wait(request);
    return true;
  }

  /// Waits for every request (in index order; completion instants are
  /// order-independent because matching is by arrival time).
  void waitall(std::span<Request> requests) {
    for (Request& r : requests) wait(r);
  }

  // ---- collectives (must be called by every rank, in the same order) ----

  void barrier();

  /// Broadcasts `data` from `root`; on non-root ranks `data` is replaced.
  void bcast_bytes(std::vector<std::byte>& data, int root);

  template <typename T>
  void bcast(std::vector<T>& data, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf;
    if (rank() == root) {
      buf.resize(data.size() * sizeof(T));
      std::memcpy(buf.data(), data.data(), buf.size());
    }
    bcast_bytes(buf, root);
    if (rank() != root) {
      MRBIO_CHECK(buf.size() % sizeof(T) == 0, "bcast size mismatch");
      data.resize(buf.size() / sizeof(T));
      std::memcpy(data.data(), buf.data(), buf.size());
    }
  }

  template <typename T>
  void bcast_value(T& value, int root) {
    std::vector<T> one(1);
    if (rank() == root) one[0] = value;
    bcast(one, root);
    value = one[0];
  }

  /// Element-wise reduction of `data` into root's `data` (other ranks'
  /// buffers are left in an unspecified combined state, as with MPI).
  template <typename T>
  void reduce(std::vector<T>& data, ReduceOp op, int root);

  /// Reduce followed by broadcast; every rank ends with the result.
  template <typename T>
  void allreduce(std::vector<T>& data, ReduceOp op) {
    reduce(data, op, 0);
    bcast(data, 0);
  }

  /// Allreduce of a trivially-copyable aggregate with a caller-supplied
  /// combine function and explicit nominal message sizes for the timing
  /// model. Harness-level statistics use this to piggyback on a modeled
  /// fixed-size reduction: the real payload carries the whole struct while
  /// the network is charged for `nominal_*` bytes, so growing the stats
  /// never perturbs virtual times.
  template <typename T, typename CombineFn>
  void allreduce_custom(T& value, const CombineFn& combine,
                        std::uint64_t nominal_reduce_bytes,
                        std::uint64_t nominal_bcast_bytes);

  double allreduce_scalar(double value, ReduceOp op) {
    std::vector<double> v{value};
    allreduce(v, op);
    return v[0];
  }

  std::uint64_t allreduce_scalar(std::uint64_t value, ReduceOp op) {
    std::vector<std::uint64_t> v{value};
    allreduce(v, op);
    return v[0];
  }

  /// Gathers each rank's byte buffer at root; result[i] is rank i's buffer.
  /// Non-root ranks receive an empty result.
  std::vector<std::vector<std::byte>> gather_bytes(std::vector<std::byte> mine, int root);

  /// Gather followed by broadcast: every rank gets every buffer.
  std::vector<std::vector<std::byte>> allgather_bytes(std::vector<std::byte> mine);

  /// Root distributes buffers[i] to rank i; returns this rank's buffer.
  /// Non-root ranks pass an empty vector.
  std::vector<std::byte> scatter_bytes(std::vector<std::vector<std::byte>> buffers,
                                       int root);

  template <typename T>
  std::vector<T> gather_value(const T& value, int root) {
    static_assert(std::is_trivially_copyable_v<T>);
    std::vector<std::byte> buf(sizeof(T));
    std::memcpy(buf.data(), &value, sizeof(T));
    auto all = gather_bytes(std::move(buf), root);
    std::vector<T> out;
    if (rank() == root) {
      out.resize(all.size());
      for (std::size_t i = 0; i < all.size(); ++i) {
        MRBIO_CHECK(all[i].size() == sizeof(T), "gather_value size mismatch");
        std::memcpy(&out[i], all[i].data(), sizeof(T));
      }
    }
    return out;
  }

  /// Personalized all-to-all: sendbufs[d] goes to rank d; returns one
  /// buffer per source rank. sendbufs must have size() == comm size.
  std::vector<std::vector<std::byte>> alltoallv(std::vector<std::vector<std::byte>> sendbufs);

  /// alltoallv with explicit per-destination nominal byte counts for the
  /// timing model (payloads may be token-sized stand-ins).
  std::vector<std::vector<std::byte>> alltoallv_nominal(
      std::vector<std::vector<std::byte>> sendbufs,
      const std::vector<std::uint64_t>& nominal_bytes);

  /// Bruck-style radix-r staged personalized all-to-all: every rank sends
  /// (radix-1) * ceil(log_radix p) messages instead of p-1, with each
  /// payload forwarded through intermediate ranks. Same contract and
  /// result as alltoallv_nominal (out[i] is rank i's buffer, the local
  /// buffer is moved, never sent); the latency/bandwidth trade-off — fewer,
  /// larger, multi-hop messages — is priced naturally by the per-message
  /// alpha-beta model. `stages_out` (optional) receives the number of
  /// communication rounds this rank executed.
  std::vector<std::vector<std::byte>> alltoallv_staged(
      std::vector<std::vector<std::byte>> sendbufs,
      const std::vector<std::uint64_t>& nominal_bytes, int radix,
      int* stages_out = nullptr);

  // ---- phantom collectives: timing-only transfers of nominal size ----

  /// Same tree and timing as bcast of `nominal_bytes`, empty payloads.
  void bcast_phantom(std::uint64_t nominal_bytes, int root);

  /// Same tree and timing as reduce of `nominal_bytes`; `combine_seconds`
  /// is charged at each interior combine step (modeling the element-wise
  /// arithmetic a real reduce performs).
  void reduce_phantom(std::uint64_t nominal_bytes, int root, double combine_seconds = 0.0);

  void allreduce_phantom(std::uint64_t nominal_bytes, double combine_seconds = 0.0) {
    reduce_phantom(nominal_bytes, 0, combine_seconds);
    bcast_phantom(nominal_bytes, 0);
  }

  // Pipelined phantom collectives. Production MPI implementations switch
  // to pipelined / scatter-allgather algorithms for large messages, whose
  // cost is ~ log2(p) * latency + 2 * bytes / bandwidth rather than the
  // binomial tree's log2(p) * bytes / bandwidth. These variants model
  // that: a latency-only tree synchronization (so completion ordering is
  // still enforced through real messages) followed by an analytic
  // bandwidth charge on every rank. Use them for multi-megabyte
  // collectives such as the SOM codebook exchange.

  void bcast_phantom_pipelined(std::uint64_t nominal_bytes, int root);

  /// `combine_seconds` models the element-wise arithmetic of the whole
  /// reduction (charged once, overlapped across the pipeline).
  void reduce_phantom_pipelined(std::uint64_t nominal_bytes, int root,
                                double combine_seconds = 0.0);

 private:
  static void check_user_tag(int tag) {
    MRBIO_REQUIRE(tag >= 0 && tag < kUserTagLimit, "user tag out of range: ", tag);
  }

  /// RAII span covering one rank's participation in a collective. Only
  /// reads the virtual clock, so it cannot change simulated times; the
  /// same holds for the per-collective duration histograms it feeds.
  class CollectiveSpan {
   public:
    CollectiveSpan(Comm& comm, const char* name, std::uint64_t bytes = 0)
        : comm_(comm),
          name_(name),
          bytes_(bytes),
          rec_(comm.rank_->tracer()),
          metrics_(comm.rank_->metrics()),
          t0_(rec_ != nullptr || metrics_ != nullptr ? comm.now() : 0.0) {}
    ~CollectiveSpan() {
      if (rec_ != nullptr) {
        rec_->add(comm_.rank(), trace::Category::Collective, name_, t0_, comm_.now(), 0,
                  bytes_);
      }
      if (metrics_ != nullptr) {
        metrics_->counter("mpi.collectives").inc();
        metrics_->histogram("mpi.collective_seconds").observe(comm_.now() - t0_);
        metrics_->histogram(std::string("mpi.") + name_ + "_seconds")
            .observe(comm_.now() - t0_);
      }
    }
    CollectiveSpan(const CollectiveSpan&) = delete;
    CollectiveSpan& operator=(const CollectiveSpan&) = delete;

   private:
    Comm& comm_;
    const char* name_;
    std::uint64_t bytes_;
    trace::Recorder* rec_;
    obs::Registry* metrics_;
    double t0_;
  };

  // Reserved internal tags.
  static constexpr int kTagBcast = kUserTagLimit + 1;
  static constexpr int kTagReduce = kUserTagLimit + 2;
  static constexpr int kTagBarrierUp = kUserTagLimit + 3;
  static constexpr int kTagBarrierDown = kUserTagLimit + 4;
  static constexpr int kTagGather = kUserTagLimit + 5;
  static constexpr int kTagAlltoall = kUserTagLimit + 6;
  static constexpr int kTagScatter = kUserTagLimit + 7;
  /// Never sent by anyone; sleep_until() posts timed receives on it.
  static constexpr int kTagNever = kUserTagLimit + 8;
  static constexpr int kTagAlltoallStaged = kUserTagLimit + 9;

  int vrank(int root) const { return (rank() - root + size()) % size(); }
  int from_vrank(int vr, int root) const { return (vr + root) % size(); }

  /// Binomial-tree downward pass: calls send/recv hooks. Used by bcast.
  template <typename SendFn, typename RecvFn>
  void bcast_tree(int root, const SendFn& send_to, const RecvFn& recv_from);

  /// Binomial-tree upward pass: combine at interior nodes toward root.
  template <typename SendFn, typename RecvFn>
  void reduce_tree(int root, const SendFn& send_to, const RecvFn& recv_from);

  rt::Rank* rank_;
  std::unique_ptr<rt::Rank> owned_;  ///< set only by the Comm(sim::Process&) ctor
};

// ---- template implementations ----

template <typename SendFn, typename RecvFn>
void Comm::bcast_tree(int root, const SendFn& send_to, const RecvFn& recv_from) {
  const int p = size();
  const int vr = vrank(root);
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      recv_from(from_vrank(vr ^ mask, root));
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vr + mask < p && (vr & (mask - 1)) == 0) {
      send_to(from_vrank(vr + mask, root));
    }
    mask >>= 1;
  }
}

template <typename SendFn, typename RecvFn>
void Comm::reduce_tree(int root, const SendFn& send_to, const RecvFn& recv_from) {
  const int p = size();
  const int vr = vrank(root);
  int mask = 1;
  while (mask < p) {
    if ((vr & mask) != 0) {
      send_to(from_vrank(vr ^ mask, root));
      return;
    }
    const int partner = vr | mask;
    if (partner < p) {
      recv_from(from_vrank(partner, root));
    }
    mask <<= 1;
  }
}

template <typename T>
void Comm::reduce(std::vector<T>& data, ReduceOp op, int root) {
  static_assert(std::is_trivially_copyable_v<T>);
  CollectiveSpan span(*this, "reduce", data.size() * sizeof(T));
  reduce_tree(
      root,
      [&](int dst) {
        ByteWriter w;
        w.put_vector(data);
        rank_->send(dst, kTagReduce, w.take());
      },
      [&](int src) {
        const rt::Message m = rank_->recv(src, kTagReduce);
        ByteReader r(m.payload);
        std::vector<T> other = r.get_vector<T>();
        MRBIO_CHECK(other.size() == data.size(), "reduce length mismatch: ", other.size(),
                    " vs ", data.size());
        switch (op) {
          case ReduceOp::Sum:
            for (std::size_t i = 0; i < data.size(); ++i) data[i] += other[i];
            break;
          case ReduceOp::Max:
            for (std::size_t i = 0; i < data.size(); ++i)
              data[i] = std::max(data[i], other[i]);
            break;
          case ReduceOp::Min:
            for (std::size_t i = 0; i < data.size(); ++i)
              data[i] = std::min(data[i], other[i]);
            break;
        }
      });
}

template <typename T, typename CombineFn>
void Comm::allreduce_custom(T& value, const CombineFn& combine,
                            std::uint64_t nominal_reduce_bytes,
                            std::uint64_t nominal_bcast_bytes) {
  static_assert(std::is_trivially_copyable_v<T>);
  CollectiveSpan span(*this, "allreduce", nominal_reduce_bytes);
  reduce_tree(
      0,
      [&](int dst) {
        std::vector<std::byte> buf(sizeof(T));
        std::memcpy(buf.data(), &value, sizeof(T));
        rank_->send(dst, kTagReduce, std::move(buf), nominal_reduce_bytes);
      },
      [&](int src) {
        const rt::Message m = rank_->recv(src, kTagReduce);
        MRBIO_CHECK(m.payload.size() == sizeof(T), "allreduce_custom size mismatch");
        T other;
        std::memcpy(&other, m.payload.data(), sizeof(T));
        combine(value, other);
      });
  bcast_tree(
      0,
      [&](int dst) {
        std::vector<std::byte> buf(sizeof(T));
        std::memcpy(buf.data(), &value, sizeof(T));
        rank_->send(dst, kTagBcast, std::move(buf), nominal_bcast_bytes);
      },
      [&](int src) {
        const rt::Message m = rank_->recv(src, kTagBcast);
        MRBIO_CHECK(m.payload.size() == sizeof(T), "allreduce_custom size mismatch");
        std::memcpy(&value, m.payload.data(), sizeof(T));
      });
}

}  // namespace mrbio::mpi
