#include "mpi/comm.hpp"

#include "rt/sim_rank.hpp"

namespace mrbio::mpi {

Comm::Comm(sim::Process& proc)
    : rank_(nullptr), owned_(std::make_unique<rt::SimRank>(proc)) {
  rank_ = owned_.get();
}

void Comm::barrier() {
  CollectiveSpan span(*this, "barrier");
  reduce_tree(
      0, [&](int dst) { rank_->send(dst, kTagBarrierUp, {}); },
      [&](int src) { rank_->recv(src, kTagBarrierUp); });
  bcast_tree(
      0, [&](int dst) { rank_->send(dst, kTagBarrierDown, {}); },
      [&](int src) { rank_->recv(src, kTagBarrierDown); });
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  CollectiveSpan span(*this, "bcast", data.size());
  bcast_tree(
      root,
      [&](int dst) {
        std::vector<std::byte> copy = data;
        rank_->send(dst, kTagBcast, std::move(copy));
      },
      [&](int src) { data = rank_->recv(src, kTagBcast).payload; });
}

std::vector<std::vector<std::byte>> Comm::gather_bytes(std::vector<std::byte> mine, int root) {
  CollectiveSpan span(*this, "gather", mine.size());
  std::vector<std::vector<std::byte>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      out[static_cast<std::size_t>(src)] = rank_->recv(src, kTagGather).payload;
    }
  } else {
    rank_->send(root, kTagGather, std::move(mine));
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallv(
    std::vector<std::vector<std::byte>> sendbufs) {
  std::vector<std::uint64_t> nominal(sendbufs.size());
  for (std::size_t i = 0; i < sendbufs.size(); ++i) nominal[i] = sendbufs[i].size();
  return alltoallv_nominal(std::move(sendbufs), nominal);
}

std::vector<std::vector<std::byte>> Comm::alltoallv_nominal(
    std::vector<std::vector<std::byte>> sendbufs,
    const std::vector<std::uint64_t>& nominal_bytes) {
  const int p = size();
  MRBIO_REQUIRE(sendbufs.size() == static_cast<std::size_t>(p),
                "alltoallv needs one buffer per rank, got ", sendbufs.size());
  std::uint64_t total_nominal = 0;
  for (const std::uint64_t n : nominal_bytes) total_nominal += n;
  CollectiveSpan span(*this, "alltoallv", total_nominal);
  MRBIO_REQUIRE(nominal_bytes.size() == static_cast<std::size_t>(p),
                "alltoallv needs one nominal size per rank");
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank())] = std::move(sendbufs[static_cast<std::size_t>(rank())]);
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (rank() + offset) % p;
    rank_->send(dst, kTagAlltoall, std::move(sendbufs[static_cast<std::size_t>(dst)]),
                nominal_bytes[static_cast<std::size_t>(dst)]);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank() - offset + p) % p;
    out[static_cast<std::size_t>(src)] = rank_->recv(src, kTagAlltoall).payload;
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(std::vector<std::byte> mine) {
  auto all = gather_bytes(std::move(mine), 0);
  // Broadcast the gathered set: length-prefixed concatenation.
  ByteWriter w;
  if (rank() == 0) {
    w.put<std::uint64_t>(all.size());
    for (const auto& buf : all) w.put_bytes(buf);
  }
  std::vector<std::byte> packed = w.take();
  bcast_bytes(packed, 0);
  if (rank() != 0) {
    ByteReader r(packed);
    const auto n = r.get<std::uint64_t>();
    all.resize(n);
    for (auto& buf : all) buf = r.get_bytes();
  }
  return all;
}

std::vector<std::byte> Comm::scatter_bytes(std::vector<std::vector<std::byte>> buffers,
                                           int root) {
  CollectiveSpan span(*this, "scatter");
  if (rank() == root) {
    MRBIO_REQUIRE(buffers.size() == static_cast<std::size_t>(size()),
                  "scatter needs one buffer per rank, got ", buffers.size());
    std::vector<std::byte> mine = std::move(buffers[static_cast<std::size_t>(root)]);
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      rank_->send(dst, kTagScatter, std::move(buffers[static_cast<std::size_t>(dst)]));
    }
    return mine;
  }
  return rank_->recv(root, kTagScatter).payload;
}

void Comm::bcast_phantom(std::uint64_t nominal_bytes, int root) {
  CollectiveSpan span(*this, "bcast", nominal_bytes);
  bcast_tree(
      root,
      [&](int dst) { rank_->send(dst, kTagBcast, {}, nominal_bytes); },
      [&](int src) { rank_->recv(src, kTagBcast); });
}

void Comm::bcast_phantom_pipelined(std::uint64_t nominal_bytes, int root) {
  CollectiveSpan span(*this, "bcast_pipelined", nominal_bytes);
  // Synchronize on the root's readiness through a latency-only tree, then
  // charge the pipelined bandwidth term identically on every rank.
  bcast_tree(
      root, [&](int dst) { rank_->send(dst, kTagBcast, {}, 0); },
      [&](int src) { rank_->recv(src, kTagBcast); });
  const double p = static_cast<double>(size());
  const double bw_term = 2.0 * (p - 1.0) / p * static_cast<double>(nominal_bytes) *
                         rank_->modeled_byte_time();
  rank_->compute(bw_term);
}

void Comm::reduce_phantom_pipelined(std::uint64_t nominal_bytes, int root,
                                    double combine_seconds) {
  CollectiveSpan span(*this, "reduce_pipelined", nominal_bytes);
  // Everyone must have produced its contribution before the root can own
  // the result: latency-only tree toward the root, then the bandwidth and
  // combine charges.
  reduce_tree(
      root, [&](int dst) { rank_->send(dst, kTagReduce, {}, 0); },
      [&](int src) { rank_->recv(src, kTagReduce); });
  const double p = static_cast<double>(size());
  const double bw_term = 2.0 * (p - 1.0) / p * static_cast<double>(nominal_bytes) *
                         rank_->modeled_byte_time();
  rank_->compute(bw_term + combine_seconds);
}

void Comm::reduce_phantom(std::uint64_t nominal_bytes, int root, double combine_seconds) {
  CollectiveSpan span(*this, "reduce", nominal_bytes);
  reduce_tree(
      root,
      [&](int dst) { rank_->send(dst, kTagReduce, {}, nominal_bytes); },
      [&](int src) {
        rank_->recv(src, kTagReduce);
        if (combine_seconds > 0.0) rank_->compute(combine_seconds);
      });
}

}  // namespace mrbio::mpi
