#include "mpi/comm.hpp"

#include "rt/sim_rank.hpp"

namespace mrbio::mpi {

Comm::Comm(sim::Process& proc)
    : rank_(nullptr), owned_(std::make_unique<rt::SimRank>(proc)) {
  rank_ = owned_.get();
}

void Comm::barrier() {
  CollectiveSpan span(*this, "barrier");
  reduce_tree(
      0, [&](int dst) { rank_->send(dst, kTagBarrierUp, {}); },
      [&](int src) { rank_->recv(src, kTagBarrierUp); });
  bcast_tree(
      0, [&](int dst) { rank_->send(dst, kTagBarrierDown, {}); },
      [&](int src) { rank_->recv(src, kTagBarrierDown); });
}

void Comm::bcast_bytes(std::vector<std::byte>& data, int root) {
  CollectiveSpan span(*this, "bcast", data.size());
  bcast_tree(
      root,
      [&](int dst) {
        std::vector<std::byte> copy = data;
        rank_->send(dst, kTagBcast, std::move(copy));
      },
      [&](int src) { data = rank_->recv(src, kTagBcast).payload; });
}

std::vector<std::vector<std::byte>> Comm::gather_bytes(std::vector<std::byte> mine, int root) {
  CollectiveSpan span(*this, "gather", mine.size());
  std::vector<std::vector<std::byte>> out;
  if (rank() == root) {
    out.resize(static_cast<std::size_t>(size()));
    out[static_cast<std::size_t>(root)] = std::move(mine);
    for (int src = 0; src < size(); ++src) {
      if (src == root) continue;
      out[static_cast<std::size_t>(src)] = rank_->recv(src, kTagGather).payload;
    }
  } else {
    rank_->send(root, kTagGather, std::move(mine));
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallv(
    std::vector<std::vector<std::byte>> sendbufs) {
  std::vector<std::uint64_t> nominal(sendbufs.size());
  for (std::size_t i = 0; i < sendbufs.size(); ++i) nominal[i] = sendbufs[i].size();
  return alltoallv_nominal(std::move(sendbufs), nominal);
}

std::vector<std::vector<std::byte>> Comm::alltoallv_nominal(
    std::vector<std::vector<std::byte>> sendbufs,
    const std::vector<std::uint64_t>& nominal_bytes) {
  const int p = size();
  MRBIO_REQUIRE(sendbufs.size() == static_cast<std::size_t>(p),
                "alltoallv needs one buffer per rank, got ", sendbufs.size());
  MRBIO_REQUIRE(nominal_bytes.size() == static_cast<std::size_t>(p),
                "alltoallv needs one nominal size per rank");
  // The rank-local buffer is moved below, never serialized or sent, so its
  // nominal size must not count as wire traffic in the collective span.
  std::uint64_t total_nominal = 0;
  for (int d = 0; d < p; ++d) {
    if (d != rank()) total_nominal += nominal_bytes[static_cast<std::size_t>(d)];
  }
  CollectiveSpan span(*this, "alltoallv", total_nominal);
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank())] = std::move(sendbufs[static_cast<std::size_t>(rank())]);
  for (int offset = 1; offset < p; ++offset) {
    const int dst = (rank() + offset) % p;
    rank_->send(dst, kTagAlltoall, std::move(sendbufs[static_cast<std::size_t>(dst)]),
                nominal_bytes[static_cast<std::size_t>(dst)]);
  }
  for (int offset = 1; offset < p; ++offset) {
    const int src = (rank() - offset + p) % p;
    out[static_cast<std::size_t>(src)] = rank_->recv(src, kTagAlltoall).payload;
  }
  return out;
}

std::vector<std::vector<std::byte>> Comm::alltoallv_staged(
    std::vector<std::vector<std::byte>> sendbufs,
    const std::vector<std::uint64_t>& nominal_bytes, int radix, int* stages_out) {
  const int p = size();
  MRBIO_REQUIRE(sendbufs.size() == static_cast<std::size_t>(p),
                "alltoallv_staged needs one buffer per rank, got ", sendbufs.size());
  MRBIO_REQUIRE(nominal_bytes.size() == static_cast<std::size_t>(p),
                "alltoallv_staged needs one nominal size per rank");
  const int r = std::max(radix, 2);

  // One blob per destination, routed digit by digit: a blob held by rank q
  // with remaining distance rem = (dest - q) mod p moves, at the stage for
  // digit position j (weight w = r^j), to rank q + digit_j(rem) * w. All
  // ranks walk the same (j, z) schedule, so each round is exactly one
  // message to a fixed partner (possibly empty) and one from the mirror
  // partner — deterministic matching with no counts exchange.
  struct Blob {
    std::uint32_t origin;
    std::uint32_t dest;
    std::uint64_t nominal;
    std::vector<std::byte> payload;
  };
  std::vector<std::vector<std::byte>> out(static_cast<std::size_t>(p));
  out[static_cast<std::size_t>(rank())] = std::move(sendbufs[static_cast<std::size_t>(rank())]);

  std::uint64_t wire_nominal = 0;
  std::vector<Blob> hold;
  hold.reserve(static_cast<std::size_t>(p) - 1);
  for (int d = 0; d < p; ++d) {
    if (d == rank()) continue;
    Blob b;
    b.origin = static_cast<std::uint32_t>(rank());
    b.dest = static_cast<std::uint32_t>(d);
    b.nominal = nominal_bytes[static_cast<std::size_t>(d)];
    b.payload = std::move(sendbufs[static_cast<std::size_t>(d)]);
    hold.push_back(std::move(b));
  }

  int stages = 0;
  {
    CollectiveSpan span(*this, "alltoallv_staged", 0);
    for (std::uint64_t w = 1; w < static_cast<std::uint64_t>(p);
         w *= static_cast<std::uint64_t>(r)) {
      for (int z = 1; z < r; ++z) {
        const std::uint64_t hop = z * w;
        if (hop >= static_cast<std::uint64_t>(p)) break;
        ++stages;
        const int to = static_cast<int>((static_cast<std::uint64_t>(rank()) + hop) %
                                        static_cast<std::uint64_t>(p));
        const int from = static_cast<int>((static_cast<std::uint64_t>(rank()) -
                                           hop % static_cast<std::uint64_t>(p) +
                                           static_cast<std::uint64_t>(p)) %
                                          static_cast<std::uint64_t>(p));
        ByteWriter w_out;
        std::uint64_t msg_nominal = 0;
        std::vector<Blob> keep;
        keep.reserve(hold.size());
        for (Blob& b : hold) {
          const std::uint64_t rem =
              (b.dest + static_cast<std::uint64_t>(p) -
               static_cast<std::uint64_t>(rank())) % static_cast<std::uint64_t>(p);
          if ((rem / w) % static_cast<std::uint64_t>(r) == static_cast<std::uint64_t>(z)) {
            w_out.put(b.origin);
            w_out.put(b.dest);
            w_out.put(b.nominal);
            w_out.put<std::uint64_t>(b.payload.size());
            w_out.append(b.payload.data(), b.payload.size());
            msg_nominal += b.nominal;
          } else {
            keep.push_back(std::move(b));
          }
        }
        hold = std::move(keep);
        wire_nominal += msg_nominal;
        rank_->send(to, kTagAlltoallStaged, w_out.take(), msg_nominal);
        const rt::Message m = rank_->recv(from, kTagAlltoallStaged);
        ByteReader reader(m.payload);
        while (!reader.done()) {
          Blob b;
          b.origin = reader.get<std::uint32_t>();
          b.dest = reader.get<std::uint32_t>();
          b.nominal = reader.get<std::uint64_t>();
          const auto len = reader.get<std::uint64_t>();
          const auto raw = reader.raw(len);
          b.payload.assign(raw.begin(), raw.end());
          hold.push_back(std::move(b));
        }
      }
    }
  }
  if (obs::Registry* reg = metrics(); reg != nullptr) {
    reg->counter("mpi.alltoallv_staged_wire_bytes").inc(wire_nominal);
  }

  // Every remaining blob is addressed to this rank; origins are unique.
  for (Blob& b : hold) {
    MRBIO_CHECK(b.dest == static_cast<std::uint32_t>(rank()),
                "alltoallv_staged: blob for rank ", b.dest, " stranded on ", rank());
    auto& slot = out[b.origin];
    MRBIO_CHECK(slot.empty(), "alltoallv_staged: duplicate blob from rank ", b.origin);
    slot = std::move(b.payload);
  }
  if (stages_out != nullptr) *stages_out = stages;
  return out;
}

std::vector<std::vector<std::byte>> Comm::allgather_bytes(std::vector<std::byte> mine) {
  auto all = gather_bytes(std::move(mine), 0);
  // Broadcast the gathered set: length-prefixed concatenation.
  ByteWriter w;
  if (rank() == 0) {
    w.put<std::uint64_t>(all.size());
    for (const auto& buf : all) w.put_bytes(buf);
  }
  std::vector<std::byte> packed = w.take();
  bcast_bytes(packed, 0);
  if (rank() != 0) {
    ByteReader r(packed);
    const auto n = r.get<std::uint64_t>();
    all.resize(n);
    for (auto& buf : all) buf = r.get_bytes();
  }
  return all;
}

std::vector<std::byte> Comm::scatter_bytes(std::vector<std::vector<std::byte>> buffers,
                                           int root) {
  CollectiveSpan span(*this, "scatter");
  if (rank() == root) {
    MRBIO_REQUIRE(buffers.size() == static_cast<std::size_t>(size()),
                  "scatter needs one buffer per rank, got ", buffers.size());
    std::vector<std::byte> mine = std::move(buffers[static_cast<std::size_t>(root)]);
    for (int dst = 0; dst < size(); ++dst) {
      if (dst == root) continue;
      rank_->send(dst, kTagScatter, std::move(buffers[static_cast<std::size_t>(dst)]));
    }
    return mine;
  }
  return rank_->recv(root, kTagScatter).payload;
}

void Comm::bcast_phantom(std::uint64_t nominal_bytes, int root) {
  CollectiveSpan span(*this, "bcast", nominal_bytes);
  bcast_tree(
      root,
      [&](int dst) { rank_->send(dst, kTagBcast, {}, nominal_bytes); },
      [&](int src) { rank_->recv(src, kTagBcast); });
}

void Comm::bcast_phantom_pipelined(std::uint64_t nominal_bytes, int root) {
  CollectiveSpan span(*this, "bcast_pipelined", nominal_bytes);
  // Synchronize on the root's readiness through a latency-only tree, then
  // charge the pipelined bandwidth term identically on every rank.
  bcast_tree(
      root, [&](int dst) { rank_->send(dst, kTagBcast, {}, 0); },
      [&](int src) { rank_->recv(src, kTagBcast); });
  const double p = static_cast<double>(size());
  const double bw_term = 2.0 * (p - 1.0) / p * static_cast<double>(nominal_bytes) *
                         rank_->modeled_byte_time();
  rank_->compute(bw_term);
}

void Comm::reduce_phantom_pipelined(std::uint64_t nominal_bytes, int root,
                                    double combine_seconds) {
  CollectiveSpan span(*this, "reduce_pipelined", nominal_bytes);
  // Everyone must have produced its contribution before the root can own
  // the result: latency-only tree toward the root, then the bandwidth and
  // combine charges.
  reduce_tree(
      root, [&](int dst) { rank_->send(dst, kTagReduce, {}, 0); },
      [&](int src) { rank_->recv(src, kTagReduce); });
  const double p = static_cast<double>(size());
  const double bw_term = 2.0 * (p - 1.0) / p * static_cast<double>(nominal_bytes) *
                         rank_->modeled_byte_time();
  rank_->compute(bw_term + combine_seconds);
}

void Comm::reduce_phantom(std::uint64_t nominal_bytes, int root, double combine_seconds) {
  CollectiveSpan span(*this, "reduce", nominal_bytes);
  reduce_tree(
      root,
      [&](int dst) { rank_->send(dst, kTagReduce, {}, nominal_bytes); },
      [&](int src) {
        rank_->recv(src, kTagReduce);
        if (combine_seconds > 0.0) rank_->compute(combine_seconds);
      });
}

}  // namespace mrbio::mpi
