// Paper-scale BLAST workload oracle.
//
// The paper's evaluation searched 12K-80K metagenomic read fragments
// against a 364 Gbp database formatted into 109 one-gigabyte partitions on
// up to 1024 Ranger cores. That input set cannot be recreated here, so this
// module models the *cost structure* of the computation instead, which is
// what the scaling figures actually measure:
//
//   - per-work-unit compute cost: lognormal (BLAST's "highly non-uniform
//     and unpredictable execution time"), deterministic per (block,
//     partition) pair;
//   - DB partition load cost: a rank switching partitions pays a cold
//     (Lustre) or warm (cluster RAM cache) load; the probability of a warm
//     load grows with the cluster's combined RAM, which is the mechanism
//     the paper credits for the superlinear speed-up at 128 cores ("all
//     109 1GB DB partitions begin to fit entirely into the combined RAM");
//   - output volume: hits per query with a fixed serialized size, feeding
//     the collate()/reduce() stages with paper-sized nominal bytes.
//
// The oracle is deterministic: every cost is derived from the seed and the
// unit's coordinates, never from execution order.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.hpp"

namespace mrbio::workload {

struct BlastWorkloadConfig {
  // Shape of the matrix split (Fig. 3 defaults: 80K queries, 1000-query
  // blocks, 109 partitions).
  std::uint64_t total_queries = 80'000;
  std::uint64_t queries_per_block = 1'000;
  /// Explicit per-block query counts (dynamic chunking). When non-empty it
  /// overrides queries_per_block and must sum to total_queries.
  std::vector<std::uint64_t> block_sizes;
  std::uint64_t db_partitions = 109;
  std::uint64_t partition_bytes = 1ull << 30;

  // Compute cost model. The per-unit cost is lognormal around
  // mean_seconds_per_query * block size; block-level averaging keeps sigma
  // modest, but rare (block x partition) combinations blow up by
  // outlier_factor -- the paper's "some combinations of the query blocks
  // and DB partitions take much longer than others".
  double mean_seconds_per_query = 0.012;  ///< per (query x partition) pair
  double lognormal_sigma = 0.35;          ///< block-level heterogeneity
  double outlier_prob = 0.001;            ///< pathological unit probability
  double outlier_factor = 8.0;            ///< cost multiplier for outliers

  // I/O cost model. Cold loads hit the shared Lustre filesystem under
  // concurrent access; warm loads re-map a partition resident in cluster
  // RAM.
  double cold_load_seconds = 25.0;
  double warm_load_seconds = 0.4;

  // Cluster memory model.
  std::uint64_t ram_bytes_per_core = 2ull << 30;  ///< Ranger: 32 GB / 16 cores

  // Output model.
  double hits_per_query = 8.0;
  std::uint64_t bytes_per_hit = 120;

  std::uint64_t seed = 1234;
};

/// A paper-style preset for the protein run of Fig. 5: env_nr (139,846
/// proteins) against UniRef100 in 58 partitions; strongly CPU-bound.
BlastWorkloadConfig protein_workload_config();

class BlastWorkload {
 public:
  explicit BlastWorkload(BlastWorkloadConfig config);

  const BlastWorkloadConfig& config() const { return config_; }

  std::uint64_t num_blocks() const { return num_blocks_; }
  std::uint64_t num_units() const { return num_blocks_ * config_.db_partitions; }

  /// Work units enumerate block-major: unit = block * partitions + p.
  std::uint64_t block_of(std::uint64_t unit) const { return unit / config_.db_partitions; }
  std::uint64_t partition_of(std::uint64_t unit) const {
    return unit % config_.db_partitions;
  }

  /// Queries in a block (the last block may be short).
  std::uint64_t block_queries(std::uint64_t block) const;

  /// Deterministic compute cost of one work unit, in virtual seconds.
  double unit_compute_seconds(std::uint64_t unit) const;

  /// Deterministic number of hits a unit emits, and their payload bytes.
  std::uint64_t unit_hits(std::uint64_t unit) const;
  std::uint64_t unit_hit_bytes(std::uint64_t unit) const {
    return unit_hits(unit) * config_.bytes_per_hit;
  }

  /// Load cost paid when a rank switches to `partition`, given whether the
  /// cluster-wide cache would hold it. `total_cores` sizes the combined
  /// RAM; the coin is deterministic per (unit, rank).
  double load_seconds(std::uint64_t unit, int rank, int total_cores) const;

  /// Fraction of partition loads served warm at this core count.
  double warm_fraction(int total_cores) const;

 private:
  BlastWorkloadConfig config_;
  std::uint64_t num_blocks_;
};

/// Collects per-rank busy intervals (virtual time) and renders the
/// paper's Fig. 5 "useful CPU utilization per core" time series.
class UtilizationTracker {
 public:
  /// Records that `rank` was doing useful work during [t0, t1).
  void add(int rank, double t0, double t1);

  /// Mean utilization (busy cores / total cores) per time bucket from 0 to
  /// the last recorded instant.
  std::vector<double> series(double bucket_seconds, int total_cores) const;

  double total_busy_seconds() const;

 private:
  struct Interval {
    int rank;
    double t0;
    double t1;
  };
  mutable std::mutex mutex_;
  std::vector<Interval> intervals_;
};

}  // namespace mrbio::workload
