#include "workload/blast_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace mrbio::workload {

BlastWorkloadConfig protein_workload_config() {
  BlastWorkloadConfig c;
  c.total_queries = 139'846;
  c.queries_per_block = 500;
  c.db_partitions = 58;
  c.partition_bytes = 200ull << 20;  // 200K protein seqs per partition
  // Protein search is far more CPU-bound: remote homologies mean many more
  // candidate extensions per database residue. ~2.2 s per query per
  // partition reproduces the paper's 294-minute wall clock at 1024 cores.
  c.mean_seconds_per_query = 2.2;
  c.lognormal_sigma = 0.3;
  c.outlier_prob = 0.0005;
  c.outlier_factor = 2.5;
  c.cold_load_seconds = 1.5;
  c.warm_load_seconds = 0.1;
  c.hits_per_query = 20.0;
  c.seed = 4321;
  return c;
}

BlastWorkload::BlastWorkload(BlastWorkloadConfig config) : config_(std::move(config)) {
  MRBIO_REQUIRE(config_.total_queries > 0 && config_.queries_per_block > 0 &&
                    config_.db_partitions > 0,
                "empty BLAST workload");
  MRBIO_REQUIRE(config_.lognormal_sigma >= 0.0, "negative lognormal sigma");
  if (config_.block_sizes.empty()) {
    num_blocks_ = (config_.total_queries + config_.queries_per_block - 1) /
                  config_.queries_per_block;
  } else {
    std::uint64_t sum = 0;
    for (const std::uint64_t b : config_.block_sizes) {
      MRBIO_REQUIRE(b > 0, "empty query block in schedule");
      sum += b;
    }
    MRBIO_REQUIRE(sum == config_.total_queries, "block schedule sums to ", sum,
                  " but total_queries is ", config_.total_queries);
    num_blocks_ = config_.block_sizes.size();
  }
}

std::uint64_t BlastWorkload::block_queries(std::uint64_t block) const {
  MRBIO_CHECK(block < num_blocks_, "block out of range");
  if (!config_.block_sizes.empty()) {
    return config_.block_sizes[static_cast<std::size_t>(block)];
  }
  if (block + 1 < num_blocks_) return config_.queries_per_block;
  const std::uint64_t rem = config_.total_queries % config_.queries_per_block;
  return rem == 0 ? config_.queries_per_block : rem;
}

double BlastWorkload::unit_compute_seconds(std::uint64_t unit) const {
  MRBIO_CHECK(unit < num_units(), "unit out of range");
  // Lognormal with mean mean_seconds_per_query * block_queries: choose
  // mu = ln(mean) - sigma^2/2 so E[exp(N(mu, sigma))] equals the mean.
  const double mean = config_.mean_seconds_per_query *
                      static_cast<double>(block_queries(block_of(unit)));
  const double sigma = config_.lognormal_sigma;
  const double mu = std::log(mean) - 0.5 * sigma * sigma;
  Rng rng(mix64(config_.seed ^ (unit * 0x9e3779b97f4a7c15ULL + 1)));
  double cost = rng.lognormal(mu, sigma);
  if (rng.uniform() < config_.outlier_prob) cost *= config_.outlier_factor;
  return cost;
}

std::uint64_t BlastWorkload::unit_hits(std::uint64_t unit) const {
  MRBIO_CHECK(unit < num_units(), "unit out of range");
  // Hits are spread over partitions: a query's hits_per_query total splits
  // across the db_partitions it is searched against, with noise.
  const double mean = config_.hits_per_query *
                      static_cast<double>(block_queries(block_of(unit))) /
                      static_cast<double>(config_.db_partitions);
  Rng rng(mix64(config_.seed ^ (unit * 0x2545f4914f6cdd1dULL + 2)));
  const double n = rng.lognormal(std::log(std::max(mean, 0.5)), 0.5);
  return static_cast<std::uint64_t>(std::max(0.0, std::round(n)));
}

double BlastWorkload::warm_fraction(int total_cores) const {
  const double cluster_ram = static_cast<double>(config_.ram_bytes_per_core) *
                             static_cast<double>(total_cores);
  const double db_bytes = static_cast<double>(config_.partition_bytes) *
                          static_cast<double>(config_.db_partitions);
  return std::clamp(cluster_ram / db_bytes, 0.0, 1.0);
}

double BlastWorkload::load_seconds(std::uint64_t unit, int rank, int total_cores) const {
  const double f = warm_fraction(total_cores);
  Rng rng(mix64(config_.seed ^ mix64(unit * 1315423911ULL + static_cast<std::uint64_t>(rank))));
  const bool warm = rng.uniform() < f;
  return warm ? config_.warm_load_seconds : config_.cold_load_seconds;
}

void UtilizationTracker::add(int rank, double t0, double t1) {
  MRBIO_REQUIRE(t1 >= t0, "utilization interval ends before it starts");
  std::lock_guard<std::mutex> lock(mutex_);
  intervals_.push_back({rank, t0, t1});
}

std::vector<double> UtilizationTracker::series(double bucket_seconds, int total_cores) const {
  MRBIO_REQUIRE(bucket_seconds > 0.0 && total_cores > 0, "bad utilization series params");
  std::lock_guard<std::mutex> lock(mutex_);
  double horizon = 0.0;
  for (const Interval& iv : intervals_) horizon = std::max(horizon, iv.t1);
  const auto nbuckets = static_cast<std::size_t>(std::ceil(horizon / bucket_seconds));
  std::vector<double> busy(nbuckets, 0.0);
  for (const Interval& iv : intervals_) {
    const auto first = static_cast<std::size_t>(iv.t0 / bucket_seconds);
    for (std::size_t b = first; b < nbuckets; ++b) {
      const double lo = static_cast<double>(b) * bucket_seconds;
      const double hi = lo + bucket_seconds;
      if (iv.t1 <= lo) break;
      busy[b] += std::max(0.0, std::min(iv.t1, hi) - std::max(iv.t0, lo));
    }
  }
  for (double& b : busy) b /= bucket_seconds * static_cast<double>(total_cores);
  return busy;
}

double UtilizationTracker::total_busy_seconds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  double total = 0.0;
  for (const Interval& iv : intervals_) total += iv.t1 - iv.t0;
  return total;
}

}  // namespace mrbio::workload
