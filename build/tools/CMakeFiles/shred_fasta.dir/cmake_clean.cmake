file(REMOVE_RECURSE
  "CMakeFiles/shred_fasta.dir/shred_fasta.cpp.o"
  "CMakeFiles/shred_fasta.dir/shred_fasta.cpp.o.d"
  "shred_fasta"
  "shred_fasta.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shred_fasta.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
