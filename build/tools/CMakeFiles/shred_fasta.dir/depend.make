# Empty dependencies file for shred_fasta.
# This may be replaced when dependencies are built.
