file(REMOVE_RECURSE
  "CMakeFiles/mrsom_train.dir/mrsom_train.cpp.o"
  "CMakeFiles/mrsom_train.dir/mrsom_train.cpp.o.d"
  "mrsom_train"
  "mrsom_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrsom_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
