# Empty compiler generated dependencies file for mrsom_train.
# This may be replaced when dependencies are built.
