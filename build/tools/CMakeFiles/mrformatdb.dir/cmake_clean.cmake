file(REMOVE_RECURSE
  "CMakeFiles/mrformatdb.dir/mrformatdb.cpp.o"
  "CMakeFiles/mrformatdb.dir/mrformatdb.cpp.o.d"
  "mrformatdb"
  "mrformatdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrformatdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
