# Empty dependencies file for mrformatdb.
# This may be replaced when dependencies are built.
