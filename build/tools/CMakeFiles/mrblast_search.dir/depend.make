# Empty dependencies file for mrblast_search.
# This may be replaced when dependencies are built.
