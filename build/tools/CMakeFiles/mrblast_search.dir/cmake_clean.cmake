file(REMOVE_RECURSE
  "CMakeFiles/mrblast_search.dir/mrblast_search.cpp.o"
  "CMakeFiles/mrblast_search.dir/mrblast_search.cpp.o.d"
  "mrblast_search"
  "mrblast_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrblast_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
