file(REMOVE_RECURSE
  "CMakeFiles/mrbio_som.dir/som.cpp.o"
  "CMakeFiles/mrbio_som.dir/som.cpp.o.d"
  "libmrbio_som.a"
  "libmrbio_som.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_som.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
