file(REMOVE_RECURSE
  "libmrbio_som.a"
)
