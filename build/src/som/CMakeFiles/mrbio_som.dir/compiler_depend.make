# Empty compiler generated dependencies file for mrbio_som.
# This may be replaced when dependencies are built.
