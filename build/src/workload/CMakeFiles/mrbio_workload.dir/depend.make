# Empty dependencies file for mrbio_workload.
# This may be replaced when dependencies are built.
