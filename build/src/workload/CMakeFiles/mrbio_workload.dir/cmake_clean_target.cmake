file(REMOVE_RECURSE
  "libmrbio_workload.a"
)
