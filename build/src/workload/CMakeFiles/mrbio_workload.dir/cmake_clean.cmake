file(REMOVE_RECURSE
  "CMakeFiles/mrbio_workload.dir/blast_model.cpp.o"
  "CMakeFiles/mrbio_workload.dir/blast_model.cpp.o.d"
  "libmrbio_workload.a"
  "libmrbio_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
