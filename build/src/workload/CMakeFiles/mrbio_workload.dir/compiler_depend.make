# Empty compiler generated dependencies file for mrbio_workload.
# This may be replaced when dependencies are built.
