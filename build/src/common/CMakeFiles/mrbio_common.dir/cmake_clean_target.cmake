file(REMOVE_RECURSE
  "libmrbio_common.a"
)
