file(REMOVE_RECURSE
  "CMakeFiles/mrbio_common.dir/image.cpp.o"
  "CMakeFiles/mrbio_common.dir/image.cpp.o.d"
  "CMakeFiles/mrbio_common.dir/log.cpp.o"
  "CMakeFiles/mrbio_common.dir/log.cpp.o.d"
  "CMakeFiles/mrbio_common.dir/mmap_file.cpp.o"
  "CMakeFiles/mrbio_common.dir/mmap_file.cpp.o.d"
  "CMakeFiles/mrbio_common.dir/options.cpp.o"
  "CMakeFiles/mrbio_common.dir/options.cpp.o.d"
  "CMakeFiles/mrbio_common.dir/stats.cpp.o"
  "CMakeFiles/mrbio_common.dir/stats.cpp.o.d"
  "libmrbio_common.a"
  "libmrbio_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
