# Empty compiler generated dependencies file for mrbio_common.
# This may be replaced when dependencies are built.
