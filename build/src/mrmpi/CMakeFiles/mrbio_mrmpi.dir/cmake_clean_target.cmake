file(REMOVE_RECURSE
  "libmrbio_mrmpi.a"
)
