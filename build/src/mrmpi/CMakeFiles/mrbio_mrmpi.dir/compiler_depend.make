# Empty compiler generated dependencies file for mrbio_mrmpi.
# This may be replaced when dependencies are built.
