file(REMOVE_RECURSE
  "CMakeFiles/mrbio_mrmpi.dir/keyvalue.cpp.o"
  "CMakeFiles/mrbio_mrmpi.dir/keyvalue.cpp.o.d"
  "CMakeFiles/mrbio_mrmpi.dir/mapreduce.cpp.o"
  "CMakeFiles/mrbio_mrmpi.dir/mapreduce.cpp.o.d"
  "libmrbio_mrmpi.a"
  "libmrbio_mrmpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_mrmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
