file(REMOVE_RECURSE
  "CMakeFiles/mrbio_mrblast.dir/mrblast.cpp.o"
  "CMakeFiles/mrbio_mrblast.dir/mrblast.cpp.o.d"
  "libmrbio_mrblast.a"
  "libmrbio_mrblast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_mrblast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
