file(REMOVE_RECURSE
  "libmrbio_mrblast.a"
)
