# Empty dependencies file for mrbio_mrblast.
# This may be replaced when dependencies are built.
