file(REMOVE_RECURSE
  "CMakeFiles/mrbio_mpi.dir/comm.cpp.o"
  "CMakeFiles/mrbio_mpi.dir/comm.cpp.o.d"
  "libmrbio_mpi.a"
  "libmrbio_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
