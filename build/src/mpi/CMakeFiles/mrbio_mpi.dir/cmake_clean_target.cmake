file(REMOVE_RECURSE
  "libmrbio_mpi.a"
)
