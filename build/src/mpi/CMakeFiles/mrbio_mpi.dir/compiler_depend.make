# Empty compiler generated dependencies file for mrbio_mpi.
# This may be replaced when dependencies are built.
