file(REMOVE_RECURSE
  "libmrbio_blast.a"
)
