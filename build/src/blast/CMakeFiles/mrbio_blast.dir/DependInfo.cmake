
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/blast/alphabet.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/alphabet.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/alphabet.cpp.o.d"
  "/root/repo/src/blast/composition.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/composition.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/composition.cpp.o.d"
  "/root/repo/src/blast/dbformat.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/dbformat.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/dbformat.cpp.o.d"
  "/root/repo/src/blast/display.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/display.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/display.cpp.o.d"
  "/root/repo/src/blast/extend.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/extend.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/extend.cpp.o.d"
  "/root/repo/src/blast/fasta_index.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/fasta_index.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/fasta_index.cpp.o.d"
  "/root/repo/src/blast/filter.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/filter.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/filter.cpp.o.d"
  "/root/repo/src/blast/hsp.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/hsp.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/hsp.cpp.o.d"
  "/root/repo/src/blast/lookup.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/lookup.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/lookup.cpp.o.d"
  "/root/repo/src/blast/score.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/score.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/score.cpp.o.d"
  "/root/repo/src/blast/search.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/search.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/search.cpp.o.d"
  "/root/repo/src/blast/sequence.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/sequence.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/sequence.cpp.o.d"
  "/root/repo/src/blast/stats.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/stats.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/stats.cpp.o.d"
  "/root/repo/src/blast/translate.cpp" "src/blast/CMakeFiles/mrbio_blast.dir/translate.cpp.o" "gcc" "src/blast/CMakeFiles/mrbio_blast.dir/translate.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/mrbio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
