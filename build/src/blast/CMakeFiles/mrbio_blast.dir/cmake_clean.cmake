file(REMOVE_RECURSE
  "CMakeFiles/mrbio_blast.dir/alphabet.cpp.o"
  "CMakeFiles/mrbio_blast.dir/alphabet.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/composition.cpp.o"
  "CMakeFiles/mrbio_blast.dir/composition.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/dbformat.cpp.o"
  "CMakeFiles/mrbio_blast.dir/dbformat.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/display.cpp.o"
  "CMakeFiles/mrbio_blast.dir/display.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/extend.cpp.o"
  "CMakeFiles/mrbio_blast.dir/extend.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/fasta_index.cpp.o"
  "CMakeFiles/mrbio_blast.dir/fasta_index.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/filter.cpp.o"
  "CMakeFiles/mrbio_blast.dir/filter.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/hsp.cpp.o"
  "CMakeFiles/mrbio_blast.dir/hsp.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/lookup.cpp.o"
  "CMakeFiles/mrbio_blast.dir/lookup.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/score.cpp.o"
  "CMakeFiles/mrbio_blast.dir/score.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/search.cpp.o"
  "CMakeFiles/mrbio_blast.dir/search.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/sequence.cpp.o"
  "CMakeFiles/mrbio_blast.dir/sequence.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/stats.cpp.o"
  "CMakeFiles/mrbio_blast.dir/stats.cpp.o.d"
  "CMakeFiles/mrbio_blast.dir/translate.cpp.o"
  "CMakeFiles/mrbio_blast.dir/translate.cpp.o.d"
  "libmrbio_blast.a"
  "libmrbio_blast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
