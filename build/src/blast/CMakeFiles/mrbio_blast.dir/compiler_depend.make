# Empty compiler generated dependencies file for mrbio_blast.
# This may be replaced when dependencies are built.
