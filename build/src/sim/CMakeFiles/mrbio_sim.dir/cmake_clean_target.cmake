file(REMOVE_RECURSE
  "libmrbio_sim.a"
)
