# Empty compiler generated dependencies file for mrbio_sim.
# This may be replaced when dependencies are built.
