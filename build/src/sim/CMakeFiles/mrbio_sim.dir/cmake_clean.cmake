file(REMOVE_RECURSE
  "CMakeFiles/mrbio_sim.dir/engine.cpp.o"
  "CMakeFiles/mrbio_sim.dir/engine.cpp.o.d"
  "libmrbio_sim.a"
  "libmrbio_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
