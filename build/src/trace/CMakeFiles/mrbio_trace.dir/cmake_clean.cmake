file(REMOVE_RECURSE
  "CMakeFiles/mrbio_trace.dir/trace.cpp.o"
  "CMakeFiles/mrbio_trace.dir/trace.cpp.o.d"
  "libmrbio_trace.a"
  "libmrbio_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
