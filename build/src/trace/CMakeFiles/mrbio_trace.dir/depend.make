# Empty dependencies file for mrbio_trace.
# This may be replaced when dependencies are built.
