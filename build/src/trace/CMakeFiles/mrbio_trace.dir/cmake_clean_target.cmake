file(REMOVE_RECURSE
  "libmrbio_trace.a"
)
