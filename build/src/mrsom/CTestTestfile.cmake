# CMake generated Testfile for 
# Source directory: /root/repo/src/mrsom
# Build directory: /root/repo/build/src/mrsom
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
