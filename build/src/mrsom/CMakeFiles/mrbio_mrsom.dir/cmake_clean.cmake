file(REMOVE_RECURSE
  "CMakeFiles/mrbio_mrsom.dir/mrsom.cpp.o"
  "CMakeFiles/mrbio_mrsom.dir/mrsom.cpp.o.d"
  "libmrbio_mrsom.a"
  "libmrbio_mrsom.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mrbio_mrsom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
