file(REMOVE_RECURSE
  "libmrbio_mrsom.a"
)
