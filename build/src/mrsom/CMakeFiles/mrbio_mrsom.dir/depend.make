# Empty dependencies file for mrbio_mrsom.
# This may be replaced when dependencies are built.
