file(REMOVE_RECURSE
  "CMakeFiles/fig8_umatrix_500d.dir/fig8_umatrix_500d.cpp.o"
  "CMakeFiles/fig8_umatrix_500d.dir/fig8_umatrix_500d.cpp.o.d"
  "fig8_umatrix_500d"
  "fig8_umatrix_500d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_umatrix_500d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
