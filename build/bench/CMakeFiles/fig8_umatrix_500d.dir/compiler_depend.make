# Empty compiler generated dependencies file for fig8_umatrix_500d.
# This may be replaced when dependencies are built.
