# Empty dependencies file for fig6_som_scaling.
# This may be replaced when dependencies are built.
