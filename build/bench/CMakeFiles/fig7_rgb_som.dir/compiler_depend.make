# Empty compiler generated dependencies file for fig7_rgb_som.
# This may be replaced when dependencies are built.
