file(REMOVE_RECURSE
  "CMakeFiles/fig7_rgb_som.dir/fig7_rgb_som.cpp.o"
  "CMakeFiles/fig7_rgb_som.dir/fig7_rgb_som.cpp.o.d"
  "fig7_rgb_som"
  "fig7_rgb_som.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_rgb_som.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
