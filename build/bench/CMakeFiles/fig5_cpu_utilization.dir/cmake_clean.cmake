file(REMOVE_RECURSE
  "CMakeFiles/fig5_cpu_utilization.dir/fig5_cpu_utilization.cpp.o"
  "CMakeFiles/fig5_cpu_utilization.dir/fig5_cpu_utilization.cpp.o.d"
  "fig5_cpu_utilization"
  "fig5_cpu_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cpu_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
