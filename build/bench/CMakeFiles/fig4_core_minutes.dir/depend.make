# Empty dependencies file for fig4_core_minutes.
# This may be replaced when dependencies are built.
