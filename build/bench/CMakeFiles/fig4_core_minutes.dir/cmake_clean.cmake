file(REMOVE_RECURSE
  "CMakeFiles/fig4_core_minutes.dir/fig4_core_minutes.cpp.o"
  "CMakeFiles/fig4_core_minutes.dir/fig4_core_minutes.cpp.o.d"
  "fig4_core_minutes"
  "fig4_core_minutes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_core_minutes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
