# Empty dependencies file for ablation_tapered_blocks.
# This may be replaced when dependencies are built.
