file(REMOVE_RECURSE
  "CMakeFiles/ablation_tapered_blocks.dir/ablation_tapered_blocks.cpp.o"
  "CMakeFiles/ablation_tapered_blocks.dir/ablation_tapered_blocks.cpp.o.d"
  "ablation_tapered_blocks"
  "ablation_tapered_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_tapered_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
