# Empty dependencies file for fig3_blast_scaling.
# This may be replaced when dependencies are built.
