
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/metagenome_binning.cpp" "examples/CMakeFiles/metagenome_binning.dir/metagenome_binning.cpp.o" "gcc" "examples/CMakeFiles/metagenome_binning.dir/metagenome_binning.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mrsom/CMakeFiles/mrbio_mrsom.dir/DependInfo.cmake"
  "/root/repo/build/src/blast/CMakeFiles/mrbio_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrbio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/som/CMakeFiles/mrbio_som.dir/DependInfo.cmake"
  "/root/repo/build/src/mrmpi/CMakeFiles/mrbio_mrmpi.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mrbio_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mrbio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrbio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
