file(REMOVE_RECURSE
  "CMakeFiles/metagenome_binning.dir/metagenome_binning.cpp.o"
  "CMakeFiles/metagenome_binning.dir/metagenome_binning.cpp.o.d"
  "metagenome_binning"
  "metagenome_binning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/metagenome_binning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
