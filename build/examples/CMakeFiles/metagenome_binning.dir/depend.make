# Empty dependencies file for metagenome_binning.
# This may be replaced when dependencies are built.
