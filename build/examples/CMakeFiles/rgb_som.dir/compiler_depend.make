# Empty compiler generated dependencies file for rgb_som.
# This may be replaced when dependencies are built.
