file(REMOVE_RECURSE
  "CMakeFiles/rgb_som.dir/rgb_som.cpp.o"
  "CMakeFiles/rgb_som.dir/rgb_som.cpp.o.d"
  "rgb_som"
  "rgb_som.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rgb_som.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
