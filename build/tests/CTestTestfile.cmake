# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_mrmpi[1]_include.cmake")
include("/root/repo/build/tests/test_blast[1]_include.cmake")
include("/root/repo/build/tests/test_som[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_trace[1]_include.cmake")
include("/root/repo/build/tests/test_mrblast[1]_include.cmake")
include("/root/repo/build/tests/test_mrsom[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_tools[1]_include.cmake")
include("/root/repo/build/tests/test_examples[1]_include.cmake")
