file(REMOVE_RECURSE
  "CMakeFiles/test_blast.dir/blast/test_alphabet.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_alphabet.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_composition.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_composition.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_fasta_index.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_fasta_index.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_filter_db.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_filter_db.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_lookup_extend.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_lookup_extend.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_score_stats.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_score_stats.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_search.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_search.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_sequence.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_sequence.cpp.o.d"
  "CMakeFiles/test_blast.dir/blast/test_translate_display.cpp.o"
  "CMakeFiles/test_blast.dir/blast/test_translate_display.cpp.o.d"
  "test_blast"
  "test_blast.pdb"
  "test_blast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_blast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
