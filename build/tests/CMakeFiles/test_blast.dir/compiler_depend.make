# Empty compiler generated dependencies file for test_blast.
# This may be replaced when dependencies are built.
