
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/blast/test_alphabet.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_alphabet.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_alphabet.cpp.o.d"
  "/root/repo/tests/blast/test_composition.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_composition.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_composition.cpp.o.d"
  "/root/repo/tests/blast/test_fasta_index.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_fasta_index.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_fasta_index.cpp.o.d"
  "/root/repo/tests/blast/test_filter_db.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_filter_db.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_filter_db.cpp.o.d"
  "/root/repo/tests/blast/test_lookup_extend.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_lookup_extend.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_lookup_extend.cpp.o.d"
  "/root/repo/tests/blast/test_score_stats.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_score_stats.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_score_stats.cpp.o.d"
  "/root/repo/tests/blast/test_search.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_search.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_search.cpp.o.d"
  "/root/repo/tests/blast/test_sequence.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_sequence.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_sequence.cpp.o.d"
  "/root/repo/tests/blast/test_translate_display.cpp" "tests/CMakeFiles/test_blast.dir/blast/test_translate_display.cpp.o" "gcc" "tests/CMakeFiles/test_blast.dir/blast/test_translate_display.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blast/CMakeFiles/mrbio_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrbio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
