# Empty dependencies file for test_mrblast.
# This may be replaced when dependencies are built.
