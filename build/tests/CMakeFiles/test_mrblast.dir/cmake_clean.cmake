file(REMOVE_RECURSE
  "CMakeFiles/test_mrblast.dir/mrblast/test_blastx_mr.cpp.o"
  "CMakeFiles/test_mrblast.dir/mrblast/test_blastx_mr.cpp.o.d"
  "CMakeFiles/test_mrblast.dir/mrblast/test_extensions.cpp.o"
  "CMakeFiles/test_mrblast.dir/mrblast/test_extensions.cpp.o.d"
  "CMakeFiles/test_mrblast.dir/mrblast/test_mrblast.cpp.o"
  "CMakeFiles/test_mrblast.dir/mrblast/test_mrblast.cpp.o.d"
  "test_mrblast"
  "test_mrblast.pdb"
  "test_mrblast[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrblast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
