# Empty dependencies file for test_mrsom.
# This may be replaced when dependencies are built.
