file(REMOVE_RECURSE
  "CMakeFiles/test_mrsom.dir/mrsom/test_mrsom.cpp.o"
  "CMakeFiles/test_mrsom.dir/mrsom/test_mrsom.cpp.o.d"
  "test_mrsom"
  "test_mrsom.pdb"
  "test_mrsom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrsom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
