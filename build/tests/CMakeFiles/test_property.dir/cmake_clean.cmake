file(REMOVE_RECURSE
  "CMakeFiles/test_property.dir/property/test_alignment_property.cpp.o"
  "CMakeFiles/test_property.dir/property/test_alignment_property.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_engine_property.cpp.o"
  "CMakeFiles/test_property.dir/property/test_engine_property.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_search_property.cpp.o"
  "CMakeFiles/test_property.dir/property/test_search_property.cpp.o.d"
  "CMakeFiles/test_property.dir/property/test_som_property.cpp.o"
  "CMakeFiles/test_property.dir/property/test_som_property.cpp.o.d"
  "test_property"
  "test_property.pdb"
  "test_property[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
