
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/property/test_alignment_property.cpp" "tests/CMakeFiles/test_property.dir/property/test_alignment_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_alignment_property.cpp.o.d"
  "/root/repo/tests/property/test_engine_property.cpp" "tests/CMakeFiles/test_property.dir/property/test_engine_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_engine_property.cpp.o.d"
  "/root/repo/tests/property/test_search_property.cpp" "tests/CMakeFiles/test_property.dir/property/test_search_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_search_property.cpp.o.d"
  "/root/repo/tests/property/test_som_property.cpp" "tests/CMakeFiles/test_property.dir/property/test_som_property.cpp.o" "gcc" "tests/CMakeFiles/test_property.dir/property/test_som_property.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/blast/CMakeFiles/mrbio_blast.dir/DependInfo.cmake"
  "/root/repo/build/src/som/CMakeFiles/mrbio_som.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mrbio_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/mrbio_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/mrbio_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
