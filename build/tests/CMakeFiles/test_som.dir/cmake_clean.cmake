file(REMOVE_RECURSE
  "CMakeFiles/test_som.dir/som/test_som.cpp.o"
  "CMakeFiles/test_som.dir/som/test_som.cpp.o.d"
  "CMakeFiles/test_som.dir/som/test_topology.cpp.o"
  "CMakeFiles/test_som.dir/som/test_topology.cpp.o.d"
  "test_som"
  "test_som.pdb"
  "test_som[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_som.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
