# Empty dependencies file for test_som.
# This may be replaced when dependencies are built.
