# Empty dependencies file for test_mrmpi.
# This may be replaced when dependencies are built.
