file(REMOVE_RECURSE
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_compress.cpp.o"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_compress.cpp.o.d"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_keyvalue.cpp.o"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_keyvalue.cpp.o.d"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_locality.cpp.o"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_locality.cpp.o.d"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_mapreduce.cpp.o"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_mapreduce.cpp.o.d"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_spill.cpp.o"
  "CMakeFiles/test_mrmpi.dir/mrmpi/test_spill.cpp.o.d"
  "test_mrmpi"
  "test_mrmpi.pdb"
  "test_mrmpi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mrmpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
