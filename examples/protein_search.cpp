// Protein BLAST example: remote-homology detection with BLOSUM62
// neighbourhood seeding, mirroring the paper's env_nr-vs-UniRef100 search
// at desktop scale.
//
//   1. create a protein "family": one ancestor mutated to several depths,
//      buried in a database of unrelated proteins split into partitions,
//   2. search with the two-hit BLOSUM62 pipeline through the MR-MPI
//      driver,
//   3. compare neighbourhood seeding (T=11) with exact-match seeding (the
//      mode the paper notes the FPGA accelerator uses) to show why the
//      neighbourhood matters for remote homologs.
//
// Run:  ./protein_search [--ranks N]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/options.hpp"
#include "mrblast/mrblast.hpp"
#include "sim/engine.hpp"

using namespace mrbio;

namespace {

std::uint64_t run_search(const mrblast::RealRunConfig& base, int ranks,
                         int threshold, const std::string& outdir,
                         std::vector<std::string>* files_out) {
  mrblast::RealRunConfig config = base;
  config.options.threshold = threshold;
  config.output_dir = outdir;
  std::filesystem::remove_all(outdir);
  sim::EngineConfig ec;
  ec.nprocs = ranks;
  sim::Engine engine(ec);
  std::vector<std::string> files(static_cast<std::size_t>(ranks));
  std::uint64_t total = 0;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const auto result = mrblast::run_blast_mr(comm, config);
    files[static_cast<std::size_t>(p.rank())] = result.output_file;
    if (p.rank() == 0) total = result.total_hsps;
  });
  if (files_out != nullptr) *files_out = files;
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("protein_search: remote protein homology with BLOSUM62 neighbourhood seeding");
  opts.add("ranks", "6", "simulated MPI ranks");
  opts.add("workdir", "protein_work", "scratch directory");
  if (!opts.parse(argc, argv)) return 0;
  const int ranks = static_cast<int>(opts.integer("ranks"));
  const std::string workdir = opts.str("workdir");
  std::filesystem::create_directories(workdir);

  std::printf("[1/3] building a protein family and database...\n");
  Rng rng(7);
  const auto ancestor = blast::random_sequence(rng, "ancestor", 320, blast::SeqType::Protein);
  std::vector<blast::Sequence> db;
  for (const double divergence : {0.1, 0.25, 0.4, 0.55, 0.7}) {
    db.push_back(blast::mutate(rng, ancestor,
                               "homolog_d" + std::to_string(static_cast<int>(divergence * 100)),
                               divergence, blast::SeqType::Protein));
  }
  for (int i = 0; i < 30; ++i) {
    db.push_back(blast::random_sequence(rng, "unrelated" + std::to_string(i), 350,
                                        blast::SeqType::Protein));
  }
  const blast::DbInfo info =
      blast::build_db(db, workdir + "/prot_db", blast::SeqType::Protein, 2'500);
  std::printf("      %zu sequences in %zu partitions\n", db.size(), info.volume_paths.size());

  mrblast::RealRunConfig base;
  base.query_blocks = {{ancestor}};
  base.partition_paths = info.volume_paths;
  base.options = blast::make_protein_options();
  base.options.evalue_cutoff = 1e-3;
  base.options.filter_low_complexity = false;

  std::printf("[2/3] searching with BLOSUM62 neighbourhood words (T=11)...\n");
  std::vector<std::string> files;
  const auto hits_nb = run_search(base, ranks, 11, workdir + "/out_nb", &files);
  std::printf("      %llu HSPs:\n", static_cast<unsigned long long>(hits_nb));
  for (const auto& path : files) {
    if (path.empty()) continue;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) std::printf("      %s\n", line.c_str());
  }

  std::printf("[3/3] same search with exact-word seeding (threshold off)...\n");
  const auto hits_exact = run_search(base, ranks, 0, workdir + "/out_exact", nullptr);
  std::printf("      neighbourhood found %llu HSPs, exact-only found %llu\n",
              static_cast<unsigned long long>(hits_nb),
              static_cast<unsigned long long>(hits_exact));
  if (hits_nb > hits_exact) {
    std::printf(
        "The most diverged homologs were reachable only through scored\n"
        "neighbourhood words -- why the paper notes the FPGA accelerator's\n"
        "exact-seed default mainly helps less sensitive searches.\n");
  } else {
    std::printf(
        "On this run both seedings found the same homolog set (long queries\n"
        "still share some exact 3-mers); neighbourhood seeding matters as\n"
        "divergence grows and exact words become vanishingly rare.\n");
  }
  return 0;
}
