// RGB SOM demo (the paper's Fig. 7 visual test): train a map on random
// colors and watch it organize into smooth patches; writes the codebook as
// a PPM image you can open with any viewer, plus the U-matrix.
//
// Run:  ./rgb_som [--grid N] [--vectors N] [--epochs N]
#include <cstdio>

#include "common/image.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"
#include "sim/engine.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("rgb_som: train a SOM on random RGB vectors and render the codebook");
  opts.add("grid", "40", "SOM grid side");
  opts.add("vectors", "400", "number of random colors");
  opts.add("epochs", "25", "training epochs");
  opts.add("ranks", "4", "simulated MPI ranks");
  opts.add("out", "rgb_som", "output image prefix");
  if (!opts.parse(argc, argv)) return 0;

  const auto side = static_cast<std::size_t>(opts.integer("grid"));
  const auto n = static_cast<std::size_t>(opts.integer("vectors"));

  Rng rng(12345);
  Matrix colors(n, 3);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : colors.row(r)) v = static_cast<float>(rng.uniform());
  }

  som::Codebook initial(som::SomGrid{side, side}, 3);
  Rng init_rng(54321);
  initial.init_random(init_rng);

  // Before-training snapshot: random noise.
  write_ppm(opts.str("out") + "_before.ppm", som::codebook_rgb(initial).view(), side);

  mrsom::ParallelSomConfig config;
  config.params.epochs = static_cast<std::size_t>(opts.integer("epochs"));
  config.block_vectors = 32;
  config.on_epoch = [](std::size_t epoch, double sigma, double qerr) {
    if (epoch % 5 == 0) std::printf("epoch %2zu  sigma %6.2f  qerr %.5f\n", epoch, sigma, qerr);
  };

  sim::EngineConfig ec;
  ec.nprocs = static_cast<int>(opts.integer("ranks"));
  sim::Engine engine(ec);
  som::Codebook cb;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    som::Codebook trained = mrsom::train_som_mr(comm, colors.view(), initial, config);
    if (p.rank() == 0) cb = std::move(trained);
  });

  write_ppm(opts.str("out") + "_after.ppm", som::codebook_rgb(cb).view(), side);
  write_pgm(opts.str("out") + "_umatrix.pgm", som::u_matrix(cb).view());
  std::printf("wrote %s_before.ppm, %s_after.ppm, %s_umatrix.pgm\n",
              opts.str("out").c_str(), opts.str("out").c_str(), opts.str("out").c_str());
  std::printf("quantization error: %.5f   topographic error: %.3f\n",
              som::quantization_error(cb, colors.view()),
              som::topographic_error(cb, colors.view()));
  return 0;
}
