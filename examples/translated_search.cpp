// Translated search (blastx) example: find protein-coding regions on DNA
// reads by searching all six reading frames against a protein database --
// the step metagenomic pipelines run on raw reads -- and print classic
// BLAST-style pairwise alignments for the top hits.
//
// Run:  ./translated_search
#include <algorithm>
#include <cstdio>
#include <filesystem>

#include "blast/display.hpp"
#include "blast/translate.hpp"
#include "common/options.hpp"

using namespace mrbio;

namespace {

/// Back-translates a protein into one valid coding DNA sequence.
std::string back_translate(std::span<const std::uint8_t> prot) {
  static const char* bases = "ACGT";
  std::string dna;
  for (const std::uint8_t aa : prot) {
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        for (int c = 0; c < 4; ++c) {
          const std::string codon{bases[a], bases[b], bases[c]};
          const auto t = blast::translate(blast::encode_dna(codon), 0);
          if (t.size() == 1 && t[0] == aa) {
            dna += codon;
            goto next_residue;
          }
        }
      }
    }
  next_residue:;
  }
  return dna;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("translated_search: six-frame blastx with pairwise alignment display");
  opts.add("workdir", "blastx_work", "scratch directory");
  if (!opts.parse(argc, argv)) return 0;
  std::filesystem::create_directories(opts.str("workdir"));

  std::printf("[1/3] building a protein database...\n");
  Rng rng(2024);
  std::vector<blast::Sequence> proteins;
  proteins.push_back(blast::random_sequence(rng, "enzymeA", 220, blast::SeqType::Protein));
  proteins.push_back(blast::random_sequence(rng, "enzymeB", 180, blast::SeqType::Protein));
  for (int i = 0; i < 10; ++i) {
    proteins.push_back(blast::random_sequence(rng, "other" + std::to_string(i), 250,
                                              blast::SeqType::Protein));
  }
  const blast::DbInfo info = blast::build_db(
      proteins, opts.str("workdir") + "/protdb", blast::SeqType::Protein, 1ull << 30);
  auto volume =
      std::make_shared<blast::DbVolume>(blast::DbVolume::load(info.volume_paths[0]));

  std::printf("[2/3] generating DNA reads carrying coding fragments...\n");
  std::vector<blast::Sequence> reads;
  {
    // Read 1: plus-strand fragment of enzymeA (residues 50..140), with
    // junk flanks shifting it into frame +2.
    blast::Sequence r;
    r.id = "read1";
    r.data = blast::encode_dna("A" + back_translate(std::span(proteins[0].data)
                                                        .subspan(50, 90)) +
                               "CCGGTT");
    reads.push_back(std::move(r));
  }
  {
    // Read 2: reverse-complemented fragment of enzymeB.
    blast::Sequence r;
    r.id = "read2";
    r.data = blast::reverse_complement(blast::encode_dna(
        back_translate(std::span(proteins[1].data).subspan(20, 100))));
    reads.push_back(std::move(r));
  }
  reads.push_back(blast::random_sequence(rng, "read3_noise", 300, blast::SeqType::Dna));

  std::printf("[3/3] blastx: six frames per read against the protein DB...\n\n");
  blast::SearchOptions options = blast::make_protein_options();
  options.filter_low_complexity = false;
  options.evalue_cutoff = 1e-5;
  const auto results = blast::blastx_search(volume, reads, options);

  const blast::Scorer scorer = blast::Scorer::blosum62();
  for (const auto& result : results) {
    std::printf("Query: %s\n", result.query_id.c_str());
    if (result.hsps.empty()) {
      std::printf("  no hits (expected for the noise read)\n\n");
      continue;
    }
    const auto& top = result.hsps.front();
    std::printf("  best hit: %s  frame %+d  DNA %llu..%llu  E = %.2e\n",
                top.protein.subject_id.c_str(), top.frame,
                static_cast<unsigned long long>(top.q_dna_start),
                static_cast<unsigned long long>(top.q_dna_end), top.protein.evalue);

    // Render the protein-space alignment: rebuild the translated query the
    // hit was found in.
    const int frame_index = top.frame > 0 ? top.frame - 1 : 2 - top.frame;
    blast::Sequence frame_query;
    const auto& read = *std::find_if(reads.begin(), reads.end(), [&](const auto& q) {
      return q.id == result.query_id;
    });
    frame_query.id = result.query_id;
    frame_query.data = blast::translate(read.data, frame_index);
    const auto& subject = *std::find_if(proteins.begin(), proteins.end(), [&](const auto& s) {
      return s.id == top.protein.subject_id;
    });
    std::printf("%s\n\n%s\n",
                blast::render_hsp_header(top.protein, blast::SeqType::Protein).c_str(),
                blast::render_pairwise(frame_query, subject, top.protein, scorer).c_str());
  }
  return 0;
}
