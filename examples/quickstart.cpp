// Quickstart: the full MR-MPI BLAST pipeline end to end on a small
// synthetic dataset, entirely on a simulated cluster.
//
//   1. generate a few "genomes" and format them into partitioned DB
//      volumes (the formatdb step),
//   2. shred two genomes into overlapping read-like fragments (the
//      paper's query preparation) and split them into blocks,
//   3. run the MapReduce BLAST across 8 simulated MPI ranks,
//   4. show the per-rank result files and the top hits.
//
// Run:  ./quickstart [--ranks N] [--workdir DIR]
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/options.hpp"
#include "mrblast/mrblast.hpp"
#include "sim/engine.hpp"

using namespace mrbio;

int main(int argc, char** argv) {
  Options opts("quickstart: MR-MPI BLAST on a synthetic dataset over a simulated cluster");
  opts.add("ranks", "8", "simulated MPI ranks");
  opts.add("workdir", "quickstart_work", "scratch directory");
  if (!opts.parse(argc, argv)) return 0;
  const int ranks = static_cast<int>(opts.integer("ranks"));
  const std::string workdir = opts.str("workdir");
  std::filesystem::create_directories(workdir);

  // 1. Build the database: six genomes, partitioned volumes.
  std::printf("[1/4] building database partitions...\n");
  Rng rng(2011);
  std::vector<blast::Sequence> genomes;
  for (int g = 0; g < 6; ++g) {
    genomes.push_back(
        blast::random_sequence(rng, "genome" + std::to_string(g), 2'000, blast::SeqType::Dna));
  }
  const blast::DbInfo db =
      blast::build_db(genomes, workdir + "/db", blast::SeqType::Dna, 3'000);
  std::printf("      %zu partitions, %llu residues, %llu sequences\n",
              db.volume_paths.size(),
              static_cast<unsigned long long>(db.total_residues),
              static_cast<unsigned long long>(db.total_seqs));

  // 2. Shred reads (the paper's 400 bp / 200 bp overlap procedure) from
  //    two genomes, lightly mutated, plus some noise queries.
  std::printf("[2/4] shredding queries (400 bp fragments, 200 bp overlap)...\n");
  std::vector<blast::Sequence> queries;
  for (int g : {0, 3}) {
    for (const auto& frag : blast::shred({genomes[static_cast<std::size_t>(g)]}, 400, 200)) {
      queries.push_back(blast::mutate(rng, frag, frag.id, 0.02, blast::SeqType::Dna));
    }
  }
  queries.push_back(blast::random_sequence(rng, "unknown_read", 400, blast::SeqType::Dna));
  // Split into blocks of 8 queries (the pre-split FASTA files of Fig. 1).
  mrblast::RealRunConfig config;
  for (std::size_t i = 0; i < queries.size(); i += 8) {
    config.query_blocks.emplace_back(
        queries.begin() + static_cast<std::ptrdiff_t>(i),
        queries.begin() + static_cast<std::ptrdiff_t>(std::min(i + 8, queries.size())));
  }
  std::printf("      %zu queries in %zu blocks x %zu partitions = %zu work units\n",
              queries.size(), config.query_blocks.size(), db.volume_paths.size(),
              config.query_blocks.size() * db.volume_paths.size());

  // 3. Run the MapReduce BLAST on the simulated cluster.
  std::printf("[3/4] searching on %d simulated ranks (master-worker)...\n", ranks);
  config.partition_paths = db.volume_paths;
  config.options.evalue_cutoff = 1e-6;
  config.options.filter_low_complexity = false;
  config.output_dir = workdir + "/out";
  std::filesystem::remove_all(config.output_dir);

  sim::EngineConfig ec;
  ec.nprocs = ranks;
  sim::Engine engine(ec);
  std::vector<std::string> files(static_cast<std::size_t>(ranks));
  std::uint64_t total = 0;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const auto result = mrblast::run_blast_mr(comm, config);
    files[static_cast<std::size_t>(p.rank())] = result.output_file;
    if (p.rank() == 0) total = result.total_hsps;
  });
  std::printf("      %llu HSPs reported in %.3f virtual seconds\n",
              static_cast<unsigned long long>(total), engine.elapsed());

  // 4. Show the output.
  std::printf("[4/4] per-rank result files:\n");
  int shown = 0;
  for (const auto& path : files) {
    if (path.empty()) continue;
    std::ifstream in(path);
    std::string line;
    std::size_t lines = 0;
    while (std::getline(in, line)) ++lines;
    std::printf("      %s (%zu hits)\n", path.c_str(), lines);
    if (shown++ == 0) {
      std::ifstream again(path);
      int n = 0;
      while (std::getline(again, line) && n++ < 3) {
        std::printf("        %s\n", line.c_str());
      }
    }
  }
  std::printf("done. Every genome0/genome3 fragment should hit its source genome.\n");
  return 0;
}
