// Metagenomic binning with the parallel batch SOM -- the paper's
// motivating SOM application: "unsupervised clustering ... of metagenomic
// sequences in a multi-dimensional sequence composition space".
//
//   1. synthesize several "genomes" with distinct tetranucleotide
//      composition biases (as real microbial genomes have),
//   2. shred them into read-like fragments and compute 256-D
//      tetranucleotide frequency vectors,
//   3. train a batch SOM with the MR-MPI parallel implementation,
//   4. measure binning quality: fragments of the same genome should map to
//      coherent map regions (BMU purity), and write the U-matrix.
//
// Run:  ./metagenome_binning [--genomes N] [--ranks N] ...
#include <cstdio>
#include <map>

#include "blast/composition.hpp"
#include "blast/sequence.hpp"
#include "common/image.hpp"
#include "common/options.hpp"
#include "mrsom/mrsom.hpp"
#include "sim/engine.hpp"

using namespace mrbio;

namespace {

/// Generates a genome with a genome-specific composition bias: a random
/// dinucleotide transition matrix makes k-mer statistics distinctive.
blast::Sequence biased_genome(Rng& rng, const std::string& id, std::size_t len) {
  // Random first-order Markov chain over ACGT.
  double trans[4][4];
  for (auto& row : trans) {
    double sum = 0.0;
    for (double& v : row) {
      v = rng.uniform(0.05, 1.0);
      sum += v;
    }
    for (double& v : row) v /= sum;
  }
  blast::Sequence s;
  s.id = id;
  s.data.resize(len);
  std::uint8_t prev = static_cast<std::uint8_t>(rng.below(4));
  for (auto& c : s.data) {
    const double u = rng.uniform();
    double acc = 0.0;
    std::uint8_t next = 3;
    for (std::uint8_t b = 0; b < 4; ++b) {
      acc += trans[prev][b];
      if (u < acc) {
        next = b;
        break;
      }
    }
    c = next;
    prev = next;
  }
  return s;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts("metagenome_binning: parallel SOM over tetranucleotide composition vectors");
  opts.add("genomes", "5", "number of synthetic genomes");
  opts.add("genome-len", "60000", "genome length (bp)");
  opts.add("fragment", "1000", "fragment length (bp)");
  opts.add("grid", "12", "SOM grid side");
  opts.add("epochs", "12", "training epochs");
  opts.add("ranks", "8", "simulated MPI ranks");
  opts.add("umatrix", "binning_umatrix.pgm", "U-matrix output image");
  if (!opts.parse(argc, argv)) return 0;

  const auto n_genomes = static_cast<std::size_t>(opts.integer("genomes"));
  const auto genome_len = static_cast<std::size_t>(opts.integer("genome-len"));
  const auto frag_len = static_cast<std::size_t>(opts.integer("fragment"));
  const auto side = static_cast<std::size_t>(opts.integer("grid"));

  std::printf("[1/4] synthesizing %zu genomes with distinct composition biases...\n",
              n_genomes);
  Rng rng(42);
  std::vector<blast::Sequence> fragments;
  std::vector<std::size_t> labels;  // source genome of each fragment
  for (std::size_t g = 0; g < n_genomes; ++g) {
    const auto genome = biased_genome(rng, "genome" + std::to_string(g), genome_len);
    for (const auto& frag : blast::shred({genome}, frag_len, frag_len / 2)) {
      fragments.push_back(frag);
      labels.push_back(g);
    }
  }

  std::printf("[2/4] computing tetranucleotide vectors for %zu fragments...\n",
              fragments.size());
  Matrix data(fragments.size(), blast::kmer_dims(4));
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    const auto freqs = blast::tetranucleotide_frequencies(fragments[i].data);
    std::copy(freqs.begin(), freqs.end(), data.row(i).begin());
  }

  std::printf("[3/4] training %zux%zu SOM on %d simulated ranks...\n", side, side,
              static_cast<int>(opts.integer("ranks")));
  som::Codebook initial(som::SomGrid{side, side}, data.cols());
  initial.init_pca(data.view());
  mrsom::ParallelSomConfig config;
  config.params.epochs = static_cast<std::size_t>(opts.integer("epochs"));
  config.block_vectors = 16;
  config.on_epoch = [](std::size_t epoch, double sigma, double qerr) {
    std::printf("      epoch %zu  sigma %.2f  qerr %.5f\n", epoch, sigma, qerr);
  };

  sim::EngineConfig ec;
  ec.nprocs = static_cast<int>(opts.integer("ranks"));
  sim::Engine engine(ec);
  som::Codebook cb;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, config);
    if (p.rank() == 0) cb = std::move(trained);
  });

  std::printf("[4/4] evaluating the binning...\n");
  // BMU purity: for every map cell, the fraction of its fragments that
  // come from the cell's majority genome.
  std::map<std::size_t, std::map<std::size_t, std::size_t>> cell_counts;
  for (std::size_t i = 0; i < fragments.size(); ++i) {
    cell_counts[som::find_bmu(cb, data.row(i))][labels[i]]++;
  }
  std::size_t majority = 0;
  for (const auto& [cell, by_genome] : cell_counts) {
    std::size_t best = 0;
    for (const auto& [genome, count] : by_genome) best = std::max(best, count);
    majority += best;
  }
  const double purity = static_cast<double>(majority) / static_cast<double>(fragments.size());
  std::printf("      BMU purity: %.3f (1.0 = every map cell is single-genome)\n", purity);
  std::printf("      quantization error: %.5f  topographic error: %.3f\n",
              som::quantization_error(cb, data.view()),
              som::topographic_error(cb, data.view()));
  write_pgm(opts.str("umatrix"), som::u_matrix(cb).view());
  std::printf("      U-matrix written to %s (ridges separate genome bins)\n",
              opts.str("umatrix").c_str());
  return 0;
}
