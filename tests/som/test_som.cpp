// Tests for the serial SOM: BMU search, neighbourhood, batch equation,
// training convergence, metrics and visual-output helpers.
#include "som/som.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/error.hpp"

namespace mrbio::som {
namespace {

Matrix cluster_data(Rng& rng, std::size_t per_cluster,
                    const std::vector<std::vector<float>>& centers, float spread) {
  const std::size_t dim = centers.at(0).size();
  Matrix data(per_cluster * centers.size(), dim);
  std::size_t r = 0;
  for (const auto& center : centers) {
    for (std::size_t k = 0; k < per_cluster; ++k, ++r) {
      auto row = data.row(r);
      for (std::size_t i = 0; i < dim; ++i) {
        row[i] = center[i] + static_cast<float>(rng.normal(0.0, spread));
      }
    }
  }
  return data;
}

TEST(SomGrid, Indexing) {
  const SomGrid g{3, 4};
  EXPECT_EQ(g.cells(), 12u);
  EXPECT_EQ(g.row_of(7), 1u);
  EXPECT_EQ(g.col_of(7), 3u);
  EXPECT_DOUBLE_EQ(g.grid_dist2(0, 7), 1.0 + 9.0);
  EXPECT_DOUBLE_EQ(g.grid_dist2(5, 5), 0.0);
}

TEST(Codebook, ConstructionValidates) {
  EXPECT_THROW(Codebook(SomGrid{0, 5}, 3), InputError);
  EXPECT_THROW(Codebook(SomGrid{5, 5}, 0), InputError);
  const Codebook cb(SomGrid{5, 5}, 3);
  EXPECT_EQ(cb.dim(), 3u);
  EXPECT_EQ(cb.grid().cells(), 25u);
}

TEST(Codebook, RandomInitInRange) {
  Codebook cb(SomGrid{4, 4}, 8);
  Rng rng(1);
  cb.init_random(rng, -1.0f, 2.0f);
  for (std::size_t c = 0; c < 16; ++c) {
    for (const float w : cb.vector(c)) {
      EXPECT_GE(w, -1.0f);
      EXPECT_LT(w, 2.0f);
    }
  }
}

TEST(Codebook, PcaInitSpansDataPlane) {
  // Data along a line in 5-D: PCA init should align the grid's long axis
  // with that line, so corner vectors differ strongly along it.
  Rng rng(2);
  Matrix data(200, 5);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const float t = static_cast<float>(rng.uniform(-1.0, 1.0));
    auto row = data.row(r);
    row[0] = 10.0f * t;
    row[1] = -10.0f * t;
    for (std::size_t i = 2; i < 5; ++i) row[i] = static_cast<float>(rng.normal(0.0, 0.1));
  }
  Codebook cb(SomGrid{8, 8}, 5);
  cb.init_pca(data.view());
  const auto c00 = cb.vector(0);
  const auto c77 = cb.vector(63);
  // Opposite corners should differ along dimension 0 far more than along
  // the noise dimensions.
  EXPECT_GT(std::abs(c00[0] - c77[0]), 10.0f * std::abs(c00[3] - c77[3]));
}

TEST(Som, Dist2AndBmu) {
  Codebook cb(SomGrid{2, 2}, 2);
  const float vals[4][2] = {{0, 0}, {1, 0}, {0, 1}, {5, 5}};
  for (std::size_t c = 0; c < 4; ++c) {
    auto w = cb.vector(c);
    w[0] = vals[c][0];
    w[1] = vals[c][1];
  }
  const float x[2] = {4.5f, 4.7f};
  EXPECT_EQ(find_bmu(cb, x), 3u);
  const float y[2] = {0.9f, 0.1f};
  EXPECT_EQ(find_bmu(cb, y), 1u);
}

TEST(Som, BmuTieBreaksToLowestIndex) {
  Codebook cb(SomGrid{1, 3}, 1);
  cb.vector(0)[0] = 1.0f;
  cb.vector(1)[0] = 1.0f;
  cb.vector(2)[0] = 1.0f;
  const float x[1] = {1.0f};
  EXPECT_EQ(find_bmu(cb, x), 0u);
}

TEST(Som, Bmu2FindsRunnerUp) {
  Codebook cb(SomGrid{1, 3}, 1);
  cb.vector(0)[0] = 0.0f;
  cb.vector(1)[0] = 1.0f;
  cb.vector(2)[0] = 5.0f;
  const float x[1] = {0.4f};
  const auto [b1, b2] = find_bmu2(cb, x);
  EXPECT_EQ(b1, 0u);
  EXPECT_EQ(b2, 1u);
}

TEST(Som, NeighborhoodGaussianShape) {
  const SomGrid g{10, 10};
  EXPECT_DOUBLE_EQ(neighborhood(g, 55, 55, 2.0), 1.0);
  const double h1 = neighborhood(g, 55, 56, 2.0);
  const double h2 = neighborhood(g, 55, 57, 2.0);
  EXPECT_GT(h1, h2);
  EXPECT_NEAR(h1, std::exp(-1.0 / 8.0), 1e-12);
  EXPECT_NEAR(h2, std::exp(-4.0 / 8.0), 1e-12);
}

TEST(Som, SigmaScheduleDecaysToEnd) {
  SomParams p;
  p.epochs = 10;
  p.sigma_end = 1.0;
  const SomGrid g{50, 50};
  const double s0 = sigma_at(p, g, 0);
  const double s9 = sigma_at(p, g, 9);
  EXPECT_DOUBLE_EQ(s0, 25.0);  // max(rows, cols) / 2
  EXPECT_NEAR(s9, 1.0, 1e-9);
  for (std::size_t e = 1; e < 10; ++e) {
    EXPECT_LT(sigma_at(p, g, e), sigma_at(p, g, e - 1));
  }
}

TEST(BatchAccumulator, SingleVectorMovesBmuToInput) {
  Codebook cb(SomGrid{3, 3}, 2);
  Rng rng(3);
  cb.init_random(rng);
  const float x[2] = {0.5f, 0.5f};
  BatchAccumulator acc(cb.grid(), 2);
  acc.add(cb, x, 0.5);
  acc.apply(cb);
  // With one input every updated neuron's weights become exactly x.
  for (std::size_t c = 0; c < 9; ++c) {
    EXPECT_NEAR(cb.vector(c)[0], 0.5f, 1e-5);
    EXPECT_NEAR(cb.vector(c)[1], 0.5f, 1e-5);
  }
}

TEST(BatchAccumulator, ShardedMergeEqualsSerial) {
  // The core parallelization property (paper Fig. 2): accumulating shards
  // independently and merging must equal one serial accumulation.
  Rng rng(4);
  Matrix data = cluster_data(rng, 40, {{0, 0, 0}, {1, 1, 1}}, 0.2f);
  Codebook cb(SomGrid{4, 4}, 3);
  cb.init_random(rng);
  const double sigma = 1.5;

  BatchAccumulator serial(cb.grid(), 3);
  for (std::size_t r = 0; r < data.rows(); ++r) serial.add(cb, data.row(r), sigma);

  BatchAccumulator shard1(cb.grid(), 3);
  BatchAccumulator shard2(cb.grid(), 3);
  for (std::size_t r = 0; r < 40; ++r) shard1.add(cb, data.row(r), sigma);
  for (std::size_t r = 40; r < 80; ++r) shard2.add(cb, data.row(r), sigma);
  shard1.merge(shard2);

  for (std::size_t i = 0; i < serial.numerator().size(); ++i) {
    EXPECT_NEAR(serial.numerator()[i], shard1.numerator()[i], 1e-3);
  }
  for (std::size_t i = 0; i < serial.denominator().size(); ++i) {
    EXPECT_NEAR(serial.denominator()[i], shard1.denominator()[i], 1e-3);
  }
}

TEST(BatchAccumulator, ZeroDenominatorKeepsWeights) {
  Codebook cb(SomGrid{2, 2}, 2);
  cb.vector(3)[0] = 42.0f;
  const BatchAccumulator acc(cb.grid(), 2);  // nothing added
  acc.apply(cb);
  EXPECT_FLOAT_EQ(cb.vector(3)[0], 42.0f);
}

TEST(TrainBatch, ReducesQuantizationError) {
  Rng rng(5);
  Matrix data = cluster_data(rng, 60, {{0, 0, 0, 0}, {2, 2, 0, 0}, {0, 2, 2, 2}}, 0.15f);
  Codebook cb(SomGrid{6, 6}, 4);
  cb.init_random(rng);
  const double before = quantization_error(cb, data.view());
  SomParams p;
  p.epochs = 12;
  train_batch(cb, data.view(), p);
  const double after = quantization_error(cb, data.view());
  EXPECT_LT(after, before * 0.5);
  EXPECT_LT(after, 0.5);
}

TEST(TrainBatch, OrderIndependent) {
  // The paper: "unlike the online version, the batch algorithm is not
  // influenced by the order in which the input vectors are presented."
  Rng rng(6);
  Matrix data = cluster_data(rng, 30, {{0, 0}, {1, 1}}, 0.1f);
  Matrix reversed(data.rows(), data.cols());
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const auto src = data.row(data.rows() - 1 - r);
    std::copy(src.begin(), src.end(), reversed.row(r).begin());
  }
  // One epoch: the update must agree up to float summation noise. (Over
  // many epochs borderline BMU flips amplify rounding differences, so the
  // mathematical order-independence is only testable per epoch.)
  SomParams p;
  p.epochs = 1;
  Codebook cb1(SomGrid{4, 4}, 2);
  Rng seed_rng(7);
  cb1.init_random(seed_rng);
  Codebook cb2 = cb1;
  train_batch(cb1, data.view(), p);
  train_batch(cb2, reversed.view(), p);
  for (std::size_t c = 0; c < cb1.grid().cells(); ++c) {
    for (std::size_t i = 0; i < cb1.dim(); ++i) {
      EXPECT_NEAR(cb1.vector(c)[i], cb2.vector(c)[i], 1e-3);
    }
  }
  // And over several epochs the *quality* must still agree.
  SomParams p5;
  p5.epochs = 5;
  Codebook cb3 = cb1;
  Codebook cb4 = cb2;
  train_batch(cb3, data.view(), p5);
  train_batch(cb4, reversed.view(), p5);
  EXPECT_NEAR(quantization_error(cb3, data.view()), quantization_error(cb4, data.view()),
              0.02);
}

TEST(TrainBatch, EpochCallbackReportsProgress) {
  Rng rng(8);
  Matrix data = cluster_data(rng, 20, {{0, 0}}, 0.1f);
  Codebook cb(SomGrid{3, 3}, 2);
  cb.init_random(rng);
  std::vector<double> sigmas;
  std::vector<double> qerrs;
  SomParams p;
  p.epochs = 4;
  train_batch(cb, data.view(), p, [&](std::size_t, double sigma, double qerr) {
    sigmas.push_back(sigma);
    qerrs.push_back(qerr);
  });
  ASSERT_EQ(sigmas.size(), 4u);
  EXPECT_GT(sigmas.front(), sigmas.back());
  EXPECT_GT(qerrs.front(), qerrs.back());
}

TEST(TrainOnline, AlsoConverges) {
  Rng rng(9);
  Matrix data = cluster_data(rng, 50, {{0, 0, 0}, {2, 2, 2}}, 0.15f);
  Codebook cb(SomGrid{5, 5}, 3);
  cb.init_random(rng);
  SomParams p;
  p.epochs = 10;
  Rng train_rng(10);
  train_online(cb, data.view(), p, train_rng);
  EXPECT_LT(quantization_error(cb, data.view()), 0.6);
}

TEST(Som, TopographicErrorLowAfterTraining) {
  Rng rng(11);
  Matrix data = cluster_data(rng, 100, {{0, 0}, {1, 0}, {0, 1}, {1, 1}}, 0.2f);
  Codebook cb(SomGrid{8, 8}, 2);
  cb.init_pca(data.view());
  SomParams p;
  p.epochs = 15;
  train_batch(cb, data.view(), p);
  EXPECT_LT(topographic_error(cb, data.view()), 0.2);
}

TEST(Som, UMatrixShowsClusterBoundary) {
  // Two tight clusters at opposite corners: the U-matrix must have a ridge
  // (its max well above its min).
  Rng rng(12);
  Matrix data = cluster_data(rng, 100, {{0, 0, 0}, {4, 4, 4}}, 0.1f);
  Codebook cb(SomGrid{10, 10}, 3);
  cb.init_pca(data.view());
  SomParams p;
  p.epochs = 15;
  train_batch(cb, data.view(), p);
  const Matrix u = u_matrix(cb);
  float lo = u(0, 0);
  float hi = u(0, 0);
  for (std::size_t r = 0; r < u.rows(); ++r) {
    for (std::size_t c = 0; c < u.cols(); ++c) {
      lo = std::min(lo, u(r, c));
      hi = std::max(hi, u(r, c));
    }
  }
  EXPECT_GT(hi, 5.0f * std::max(lo, 1e-3f));
}

TEST(Som, CodebookRgbClampsAndShapes) {
  Codebook cb(SomGrid{2, 3}, 3);
  cb.vector(0)[0] = -0.5f;
  cb.vector(5)[2] = 1.5f;
  const Matrix img = codebook_rgb(cb);
  EXPECT_EQ(img.rows(), 2u);
  EXPECT_EQ(img.cols(), 9u);
  EXPECT_FLOAT_EQ(img(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(img(1, 2 * 3 + 2), 1.0f);
}

TEST(Som, CodebookRgbRequires3D) {
  const Codebook cb(SomGrid{2, 2}, 4);
  EXPECT_THROW(codebook_rgb(cb), InputError);
}

TEST(Som, MetricsRejectEmptyData) {
  const Codebook cb(SomGrid{2, 2}, 2);
  const MatrixView empty;
  EXPECT_THROW(quantization_error(cb, empty), InputError);
  EXPECT_THROW(topographic_error(cb, empty), InputError);
}

}  // namespace
}  // namespace mrbio::som
