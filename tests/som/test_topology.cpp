// Tests for the SOM grid topology options: hexagonal layout, toroidal
// wrap, the bubble kernel, and their interaction with training and
// persistence.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "som/som.hpp"
#include <unistd.h>

namespace mrbio::som {
namespace {

TEST(HexGrid, AdjacentCellsAtUnitDistance) {
  SomGrid g{4, 4, GridTopology::Hexagonal};
  // Row 0 (even, no shift) cell (0,0)=0; row 1 (odd, +0.5) cell (1,0)=4.
  EXPECT_NEAR(g.grid_dist2(0, 1), 1.0, 1e-12);   // same row neighbour
  EXPECT_NEAR(g.grid_dist2(0, 4), 1.0, 1e-12);   // down-right neighbour
  // Cell (1,0) to (0,1): dc = 1 - 0.5 = 0.5, dr = sqrt(3)/2 -> dist 1.
  EXPECT_NEAR(g.grid_dist2(4, 1), 1.0, 1e-12);
  // Straight down two rows: distance sqrt(3).
  EXPECT_NEAR(g.grid_dist2(0, 8), 3.0, 1e-12);
}

TEST(HexGrid, SixNeighbours) {
  SomGrid g{5, 5, GridTopology::Hexagonal};
  // Interior cell (2,2) = 12 must have exactly 6 lattice neighbours.
  int n = 0;
  for (std::size_t c = 0; c < g.cells(); ++c) n += g.adjacent(12, c) ? 1 : 0;
  EXPECT_EQ(n, 6);
}

TEST(RectGrid, FourNeighbours) {
  SomGrid g{5, 5};
  int n = 0;
  for (std::size_t c = 0; c < g.cells(); ++c) n += g.adjacent(12, c) ? 1 : 0;
  EXPECT_EQ(n, 4);
}

TEST(ToroidalGrid, WrapsBothAxes) {
  SomGrid g{6, 8};
  g.toroidal = true;
  // Opposite edges are neighbours.
  EXPECT_NEAR(g.grid_dist2(0, 7), 1.0, 1e-12);            // col 0 vs col 7
  EXPECT_NEAR(g.grid_dist2(0, 5 * 8), 1.0, 1e-12);        // row 0 vs row 5
  EXPECT_NEAR(g.grid_dist2(0, 5 * 8 + 7), 2.0, 1e-12);    // corner to corner
  // Every cell of a torus has 4 neighbours, including corners.
  int n = 0;
  for (std::size_t c = 0; c < g.cells(); ++c) n += g.adjacent(0, c) ? 1 : 0;
  EXPECT_EQ(n, 4);
}

TEST(ToroidalGrid, NonWrappedCornerHasTwoNeighbours) {
  SomGrid g{6, 8};
  int n = 0;
  for (std::size_t c = 0; c < g.cells(); ++c) n += g.adjacent(0, c) ? 1 : 0;
  EXPECT_EQ(n, 2);
}

TEST(ToroidalGrid, MaxDistanceIsHalfTheAxes) {
  SomGrid g{8, 8};
  g.toroidal = true;
  double mx = 0.0;
  for (std::size_t c = 0; c < g.cells(); ++c) mx = std::max(mx, g.grid_dist2(0, c));
  EXPECT_NEAR(mx, 16.0 + 16.0, 1e-9);  // (rows/2)^2 + (cols/2)^2
}

TEST(Kernel, BubbleIsIndicator) {
  SomGrid g{5, 5};
  EXPECT_DOUBLE_EQ(neighborhood(g, 12, 12, 1.5, Kernel::Bubble), 1.0);
  EXPECT_DOUBLE_EQ(neighborhood(g, 12, 13, 1.5, Kernel::Bubble), 1.0);   // dist 1
  EXPECT_DOUBLE_EQ(neighborhood(g, 12, 14, 1.5, Kernel::Bubble), 0.0);   // dist 2
  EXPECT_DOUBLE_EQ(neighborhood(g, 12, 0, 1.5, Kernel::Bubble), 0.0);
}

Matrix two_cluster_data(Rng& rng, std::size_t n, std::size_t dim) {
  Matrix data(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    const float base = (r % 2 == 0) ? 0.0f : 2.0f;
    for (float& v : data.row(r)) v = base + static_cast<float>(rng.normal(0.0, 0.15));
  }
  return data;
}

struct TopoCase {
  GridTopology topology;
  bool toroidal;
  Kernel kernel;
};

class TrainTopologyP : public ::testing::TestWithParam<TopoCase> {};

TEST_P(TrainTopologyP, TrainingConvergesUnderEveryTopology) {
  const TopoCase c = GetParam();
  Rng rng(80);
  const Matrix data = two_cluster_data(rng, 120, 4);
  SomGrid grid{6, 6, c.topology};
  grid.toroidal = c.toroidal;
  Codebook cb(grid, 4);
  cb.init_random(rng);
  SomParams params;
  params.epochs = 12;
  params.kernel = c.kernel;
  const double before = quantization_error(cb, data.view());
  train_batch(cb, data.view(), params);
  const double after = quantization_error(cb, data.view());
  EXPECT_LT(after, before * 0.6);
  EXPECT_LT(after, 0.6);
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, TrainTopologyP,
    ::testing::Values(TopoCase{GridTopology::Rectangular, false, Kernel::Gaussian},
                      TopoCase{GridTopology::Hexagonal, false, Kernel::Gaussian},
                      TopoCase{GridTopology::Rectangular, true, Kernel::Gaussian},
                      TopoCase{GridTopology::Hexagonal, true, Kernel::Gaussian},
                      TopoCase{GridTopology::Rectangular, false, Kernel::Bubble},
                      TopoCase{GridTopology::Hexagonal, false, Kernel::Bubble}));

TEST(Topology, UMatrixUsesHexNeighbours) {
  SomGrid g{4, 4, GridTopology::Hexagonal};
  Codebook cb(g, 2);
  Rng rng(81);
  cb.init_random(rng);
  const Matrix u = u_matrix(cb);
  EXPECT_EQ(u.rows(), 4u);
  EXPECT_EQ(u.cols(), 4u);
  // Values are positive averages of real distances.
  for (std::size_t r = 0; r < 4; ++r) {
    for (std::size_t c = 0; c < 4; ++c) EXPECT_GT(u(r, c), 0.0f);
  }
}

TEST(Topology, CodebookPersistsTopology) {
  const auto dir = std::filesystem::temp_directory_path() / ("mrbio_topo_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  SomGrid g{3, 5, GridTopology::Hexagonal};
  g.toroidal = true;
  Codebook cb(g, 2);
  Rng rng(82);
  cb.init_random(rng);
  const std::string path = (dir / "topo.cb").string();
  save_codebook(path, cb);
  const Codebook back = load_codebook(path);
  EXPECT_EQ(back.grid().topology, GridTopology::Hexagonal);
  EXPECT_TRUE(back.grid().toroidal);
  EXPECT_EQ(back.grid().rows, 3u);
  std::filesystem::remove_all(dir);
}

TEST(ComponentPlane, ExtractsOneDimension) {
  Codebook cb(SomGrid{2, 3}, 4);
  for (std::size_t c = 0; c < 6; ++c) {
    cb.vector(c)[2] = static_cast<float>(c) * 10.0f;
  }
  const Matrix plane = component_plane(cb, 2);
  EXPECT_EQ(plane.rows(), 2u);
  EXPECT_EQ(plane.cols(), 3u);
  EXPECT_FLOAT_EQ(plane(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(plane(1, 2), 50.0f);
  EXPECT_THROW(component_plane(cb, 4), InputError);
}

TEST(Topology, ToroidalTopographicErrorSeesWrappedNeighbours) {
  // Construct a codebook where an input's two best units sit on opposite
  // edges of the same row: adjacent on a torus, distant on a plane.
  SomGrid flat{1, 6};
  SomGrid torus{1, 6};
  torus.toroidal = true;
  Codebook cb_flat(flat, 1);
  Codebook cb_torus(torus, 1);
  for (std::size_t c = 0; c < 6; ++c) {
    cb_flat.vector(c)[0] = static_cast<float>(c == 0 ? 0.0 : (c == 5 ? 0.1 : 10.0));
    cb_torus.vector(c)[0] = cb_flat.vector(c)[0];
  }
  Matrix x(1, 1);
  x(0, 0) = 0.05f;
  EXPECT_GT(topographic_error(cb_flat, x.view()), 0.5);
  EXPECT_DOUBLE_EQ(topographic_error(cb_torus, x.view()), 0.0);
}

}  // namespace
}  // namespace mrbio::som
