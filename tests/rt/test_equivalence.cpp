// Backend equivalence: the same inputs must produce byte-identical
// results on the discrete-event simulator and the native multithreaded
// backend — BLAST hit files, SOM codebooks, and mrmpi collate/reduce
// pipelines. Timings differ (virtual vs wall-clock); results must not.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/sequence.hpp"
#include "common/rng.hpp"
#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "mrmpi/mapreduce.hpp"
#include "mrsom/mrsom.hpp"
#include "rt/backend.hpp"
#include <unistd.h>

namespace mrbio::rt {
namespace {

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Runs `body` on `nranks` ranks of the given backend.
void run_backend(Backend backend, int nranks, const std::function<void(mpi::Comm&)>& body) {
  LaunchConfig lc;
  lc.backend = backend;
  lc.nranks = nranks;
  launch(lc, [&](Rank& rank) {
    mpi::Comm comm(rank);
    body(comm);
  });
}

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

// ---------------------------------------------------------------------------
// mrmpi collate/reduce pipelines on the native backend

/// Word-count over synthetic documents; returns the final (word, count)
/// table gathered from all ranks.
std::map<std::string, std::uint64_t> word_count(Backend backend, int nranks) {
  const std::vector<std::string> words = {"map", "reduce", "blast", "som",
                                          "rank", "mpi"};
  std::map<std::string, std::uint64_t> table;
  std::mutex mu;
  run_backend(backend, nranks, [&](mpi::Comm& comm) {
    mrmpi::MapReduce mr(comm);
    mr.map(40, [&](std::uint64_t task, mrmpi::KeyValue& kv) {
      // Each task emits a deterministic slice of "document" words.
      for (std::uint64_t i = 0; i <= task % 7; ++i)
        kv.add(words[(task + i) % words.size()], "1");
    });
    mr.collate();
    mr.reduce([](const mrmpi::KmvGroup& group, mrmpi::KeyValue& kv) {
      kv.add(to_string(group.key), std::to_string(group.values.size()));
    });
    mr.gather();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      mr.kv().for_each([&](const mrmpi::KvPair& pair) {
        table[to_string(pair.key)] = std::stoull(to_string(pair.value));
      });
    }
  });
  return table;
}

TEST(BackendEquivalence, WordCountCollateReduce) {
  const auto sim = word_count(Backend::Sim, 4);
  const auto native = word_count(Backend::Native, 4);
  EXPECT_FALSE(sim.empty());
  EXPECT_EQ(sim, native);
}

TEST(BackendEquivalence, CompressThenCollateOnNative) {
  // The combiner-style pipeline (compress -> aggregate -> convert ->
  // reduce) exercises alltoallv and local grouping on real threads.
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    std::uint64_t total = 0;
    run_backend(backend, 3, [&](mpi::Comm& comm) {
      mrmpi::MapReduce mr(comm);
      mr.map(30, [](std::uint64_t task, mrmpi::KeyValue& kv) {
        kv.add("k" + std::to_string(task % 5), std::to_string(task));
      });
      mr.compress([](const mrmpi::KmvGroup& group, mrmpi::KeyValue& kv) {
        kv.add(to_string(group.key), std::to_string(group.values.size()));
      });
      const std::uint64_t unique = mr.collate();
      if (comm.rank() == 0) total = unique;
    });
    EXPECT_EQ(total, 5u) << backend_name(backend);
  }
}

// ---------------------------------------------------------------------------
// BLAST: per-rank hit files byte-identical across backends

class BlastEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = std::filesystem::temp_directory_path() / ("mrbio_rt_equiv_blast_" + std::to_string(::getpid()));
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);

    Rng rng(2011);
    std::vector<blast::Sequence> genomes;
    for (int g = 0; g < 4; ++g) {
      genomes.push_back(blast::random_sequence(rng, "genome" + std::to_string(g),
                                               1'500, blast::SeqType::Dna));
    }
    db_ = blast::build_db(genomes, (work_ / "db").string(), blast::SeqType::Dna, 2'000);

    std::vector<blast::Sequence> queries;
    for (const auto& frag : blast::shred({genomes[0], genomes[2]}, 300, 150)) {
      queries.push_back(blast::mutate(rng, frag, frag.id, 0.02, blast::SeqType::Dna));
    }
    for (std::size_t i = 0; i < queries.size(); i += 6) {
      blocks_.emplace_back(queries.begin() + static_cast<std::ptrdiff_t>(i),
                           queries.begin() +
                               static_cast<std::ptrdiff_t>(std::min(i + 6, queries.size())));
    }
  }
  void TearDown() override { std::filesystem::remove_all(work_); }

  /// Runs the full MR BLAST driver and returns the per-rank output files'
  /// contents, keyed by file name.
  std::map<std::string, std::string> run(Backend backend, int nranks) {
    mrblast::RealRunConfig config;
    config.query_blocks = blocks_;
    config.partition_paths = db_.volume_paths;
    config.options.evalue_cutoff = 1e-6;
    config.options.filter_low_complexity = false;
    config.output_dir = (work_ / (std::string("out_") + backend_name(backend))).string();
    std::filesystem::remove_all(config.output_dir);
    run_backend(backend, nranks,
                [&](mpi::Comm& comm) { (void)mrblast::run_blast_mr(comm, config); });
    std::map<std::string, std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(config.output_dir)) {
      files[e.path().filename().string()] = slurp(e.path());
    }
    return files;
  }

  std::filesystem::path work_;
  blast::DbInfo db_;
  std::vector<std::vector<blast::Sequence>> blocks_;
};

TEST_F(BlastEquivalence, HitFilesByteIdentical) {
  const auto sim = run(Backend::Sim, 4);
  const auto native = run(Backend::Native, 4);
  ASSERT_FALSE(sim.empty());
  ASSERT_EQ(sim.size(), native.size());
  bool any_hits = false;
  for (const auto& [name, content] : sim) {
    ASSERT_TRUE(native.count(name)) << name;
    EXPECT_EQ(content, native.at(name)) << name;
    any_hits = any_hits || !content.empty();
  }
  EXPECT_TRUE(any_hits);
}

// ---------------------------------------------------------------------------
// SOM: trained codebook byte-identical across backends

TEST(BackendEquivalence, SomCodebookByteIdentical) {
  Rng rng(7);
  Matrix data(120, 8);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data(r, c) = static_cast<float>(rng.uniform());

  som::Codebook initial(som::SomGrid{6, 6}, data.cols());
  initial.init_pca(data.view());

  mrsom::ParallelSomConfig config;
  config.params.epochs = 4;
  config.block_vectors = 10;
  // Chunk map style: deterministic block -> rank assignment, so the
  // floating-point accumulation order matches across backends.
  config.map_style = mrmpi::MapStyle::Chunk;

  std::vector<som::Codebook> results;
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    som::Codebook cb;
    run_backend(backend, 4, [&](mpi::Comm& comm) {
      som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, config);
      if (comm.rank() == 0) cb = std::move(trained);
    });
    results.push_back(std::move(cb));
  }
  ASSERT_EQ(results.size(), 2u);
  const Matrix& a = results[0].weights();
  const Matrix& b = results[1].weights();
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  EXPECT_EQ(std::memcmp(a.row(0).data(), b.row(0).data(),
                        a.rows() * a.cols() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace mrbio::rt
