// Shuffle-mode equivalence across runtimes: every shuffle configuration
// (flat, combiner, tree-staged, compressed, everything-on) must leave the
// post-collate() data byte-identical on the discrete-event simulator and
// the native multithreaded backend, and under injected faults with the
// fault-tolerant scheduler. Timings differ; bytes must not. Runs under
// TSan when the build enables MRBIO_SANITIZE.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "blast/sequence.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrgraph/mrgraph.hpp"
#include "mrmpi/mapreduce.hpp"
#include "rt/backend.hpp"

namespace mrbio::rt {
namespace {

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

std::vector<mrmpi::ShuffleConfig> shuffle_modes() {
  std::vector<mrmpi::ShuffleConfig> modes;
  modes.push_back({});  // flat
  mrmpi::ShuffleConfig combined;
  combined.combiner = true;
  modes.push_back(combined);
  mrmpi::ShuffleConfig tree;
  tree.exchange = mrmpi::ExchangeMode::Tree;
  tree.tree_radix = 2;
  modes.push_back(tree);
  mrmpi::ShuffleConfig everything;
  everything.combiner = true;
  everything.exchange = mrmpi::ExchangeMode::Tree;
  everything.tree_radix = 3;
  everything.compress = true;
  everything.overlap_spill = true;
  modes.push_back(everything);
  return modes;
}

void run_faulted(Backend backend, int nranks, const std::string& plan,
                 const std::function<void(mpi::Comm&)>& body) {
  std::unique_ptr<fault::Injector> injector;
  LaunchConfig lc;
  lc.backend = backend;
  lc.nranks = nranks;
  if (!plan.empty()) {
    injector = std::make_unique<fault::Injector>(fault::FaultPlan::parse(plan));
    lc.injector = injector.get();
  }
  launch(lc, [&](Rank& rank) {
    mpi::Comm comm(rank);
    body(comm);
  });
}

/// Deterministic Chunk-style pipeline; returns each rank's raw KMV dump
/// (group order, key bytes, value order, value bytes).
std::map<int, std::string> collate_dump(Backend backend, int nranks,
                                        const mrmpi::ShuffleConfig& shuffle) {
  mrmpi::MapReduceConfig cfg;
  cfg.map_style = mrmpi::MapStyle::Chunk;
  cfg.shuffle = shuffle;
  std::map<int, std::string> dumps;
  std::mutex mu;
  run_faulted(backend, nranks, "", [&](mpi::Comm& comm) {
    mrmpi::MapReduce mr(comm, cfg);
    mr.map(30, [](std::uint64_t task, mrmpi::KeyValue& kv) {
      Rng rng(7000 + task * 131);
      const int npairs = 10 + static_cast<int>(rng() % 20);
      for (int i = 0; i < npairs; ++i) {
        kv.add("w" + std::to_string(rng() % 13),
               "t" + std::to_string(task) + "." + std::to_string(i));
      }
    });
    mr.collate();
    std::string dump;
    for (std::size_t g = 0; g < mr.kmv().size(); ++g) {
      const mrmpi::KmvGroup group = mr.kmv().group(g);
      dump += to_string(group.key) + "=[";
      for (const auto& v : group.values) dump += to_string(v) + ",";
      dump += "];";
    }
    std::lock_guard<std::mutex> lock(mu);
    dumps[comm.rank()] = std::move(dump);
  });
  return dumps;
}

TEST(ShuffleEquivalence, CollateIdenticalAcrossBackendsAndModes) {
  const int nranks = 4;
  const auto baseline = collate_dump(Backend::Sim, nranks, {});
  ASSERT_EQ(baseline.size(), static_cast<std::size_t>(nranks));
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    const auto modes = shuffle_modes();
    for (std::size_t m = 0; m < modes.size(); ++m) {
      EXPECT_EQ(collate_dump(backend, nranks, modes[m]), baseline)
          << backend_name(backend) << " mode " << m;
    }
  }
}

/// Fault-tolerant master-worker pipeline; scheduling (and therefore raw
/// KMV order) is timing-dependent, so the comparison canonicalizes: every
/// key with its sorted value set, merged across ranks.
std::map<std::string, std::vector<std::string>> faulted_table(
    Backend backend, const std::string& plan, const mrmpi::ShuffleConfig& shuffle) {
  mrmpi::MapReduceConfig cfg;
  cfg.map_style = mrmpi::MapStyle::MasterWorker;
  cfg.ft.enabled = true;
  cfg.ft.task_timeout = 2.0;
  cfg.shuffle = shuffle;
  std::map<std::string, std::vector<std::string>> table;
  std::mutex mu;
  run_faulted(backend, 4, plan, [&](mpi::Comm& comm) {
    mrmpi::MapReduce mr(comm, cfg);
    mr.map(24, [](std::uint64_t task, mrmpi::KeyValue& kv) {
      for (int i = 0; i < 6; ++i) {
        kv.add("k" + std::to_string((task + static_cast<std::uint64_t>(i)) % 9),
               "t" + std::to_string(task) + "." + std::to_string(i));
      }
    });
    mr.collate();
    mr.reduce([&](const mrmpi::KmvGroup& group, mrmpi::KeyValue&) {
      std::vector<std::string> values;
      for (const auto& v : group.values) values.push_back(to_string(v));
      std::sort(values.begin(), values.end());
      std::lock_guard<std::mutex> lock(mu);
      table[to_string(group.key)] = std::move(values);
    });
  });
  return table;
}

TEST(ShuffleEquivalence, FaultedRunsMatchCleanRunsInEveryMode) {
  const std::string plan = "crash:rank=1,task=2; drop:src=2,dst=0,count=1";
  const auto baseline = faulted_table(Backend::Sim, "", {});
  ASSERT_EQ(baseline.size(), 9u);
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    for (const auto& mode : shuffle_modes()) {
      EXPECT_EQ(faulted_table(backend, plan, mode), baseline)
          << backend_name(backend);
    }
  }
}

TEST(ShuffleEquivalence, GraphChecksumIdenticalAcrossBackendsAndModes) {
  // The all-pairs workload end to end: same edges, same order-independent
  // checksum, every backend and shuffle mode.
  mrgraph::GraphConfig config;
  Rng rng(11);
  blast::Sequence ancestor;
  for (std::size_t i = 0; i < 24; ++i) {
    if (i % 6 == 0) {
      ancestor = blast::random_sequence(rng, "f" + std::to_string(i), 120,
                                        blast::SeqType::Dna);
    }
    config.sequences.push_back(blast::mutate(rng, ancestor, "s" + std::to_string(i),
                                             0.05, blast::SeqType::Dna));
  }
  config.block_size = 6;

  std::uint64_t baseline_checksum = 0;
  std::uint64_t baseline_edges = 0;
  bool first = true;
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    for (const auto& mode : shuffle_modes()) {
      mrgraph::GraphConfig run_config = config;
      run_config.shuffle = mode;
      mrgraph::GraphStats stats;
      std::mutex mu;
      LaunchConfig lc;
      lc.backend = backend;
      lc.nranks = 4;
      launch(lc, [&](Rank& rank) {
        mpi::Comm comm(rank);
        mrgraph::GraphStats local = mrgraph::build_graph_mr(comm, run_config);
        if (rank.rank() == 0) {
          std::lock_guard<std::mutex> lock(mu);
          stats = std::move(local);
        }
      });
      if (first) {
        baseline_checksum = stats.edge_checksum;
        baseline_edges = stats.edges;
        EXPECT_GT(stats.edges, 0u);
        first = false;
      } else {
        EXPECT_EQ(stats.edge_checksum, baseline_checksum) << backend_name(backend);
        EXPECT_EQ(stats.edges, baseline_edges) << backend_name(backend);
      }
      if (mode.combiner) EXPECT_GT(stats.shuffle_combined_bytes, 0u);
    }
  }
}

}  // namespace
}  // namespace mrbio::rt
