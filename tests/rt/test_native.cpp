// Tests for the native multithreaded backend: point-to-point semantics
// (FIFO channels, tags, wildcards), mpi::Comm collectives over real
// threads, failure propagation out of blocked receives, run statistics,
// and a wall-clock speedup check on latency-bound work.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "mpi/comm.hpp"
#include "rt/backend.hpp"
#include "rt/native.hpp"

namespace mrbio::rt {
namespace {

std::vector<std::byte> bytes_of(const std::string& s) {
  std::vector<std::byte> out(s.size());
  std::memcpy(out.data(), s.data(), s.size());
  return out;
}

std::string string_of(const Message& m) {
  return {reinterpret_cast<const char*>(m.payload.data()), m.payload.size()};
}

TEST(NativeBackend, BackendNamesRoundTrip) {
  EXPECT_EQ(backend_from_name("sim"), Backend::Sim);
  EXPECT_EQ(backend_from_name("native"), Backend::Native);
  EXPECT_STREQ(backend_name(Backend::Sim), "sim");
  EXPECT_STREQ(backend_name(Backend::Native), "native");
  EXPECT_THROW(backend_from_name("bogus"), InputError);
  EXPECT_GE(default_ranks(Backend::Sim), 1);
  EXPECT_GE(default_ranks(Backend::Native), 1);
}

TEST(NativeBackend, PingPongWithTags) {
  NativeEngine engine(NativeConfig{.nranks = 2});
  engine.run([](Rank& rank) {
    if (rank.rank() == 0) {
      rank.send(1, 7, bytes_of("ping"));
      const Message m = rank.recv(1, 8);
      EXPECT_EQ(string_of(m), "pong");
      EXPECT_EQ(m.source, 1);
      EXPECT_EQ(m.tag, 8);
    } else {
      const Message m = rank.recv(0, 7);
      EXPECT_EQ(string_of(m), "ping");
      rank.send(0, 8, bytes_of("pong"));
    }
  });
  EXPECT_EQ(engine.stats().messages, 2u);
  EXPECT_EQ(engine.stats().payload_bytes, 8u);
  EXPECT_GE(engine.elapsed(), 0.0);
}

TEST(NativeBackend, FifoOrderPerChannel) {
  const int n = 100;
  NativeEngine engine(NativeConfig{.nranks = 2});
  engine.run([n](Rank& rank) {
    if (rank.rank() == 0) {
      for (int i = 0; i < n; ++i) rank.send(1, 0, bytes_of(std::to_string(i)));
    } else {
      for (int i = 0; i < n; ++i) {
        const Message m = rank.recv(0, 0);
        EXPECT_EQ(string_of(m), std::to_string(i));
      }
    }
  });
}

TEST(NativeBackend, TagSelectionSkipsEarlierMessages) {
  NativeEngine engine(NativeConfig{.nranks = 2});
  engine.run([](Rank& rank) {
    if (rank.rank() == 0) {
      rank.send(1, 1, bytes_of("first"));
      rank.send(1, 2, bytes_of("second"));
    } else {
      // Ask for tag 2 first: the tag-1 message must stay queued.
      EXPECT_EQ(string_of(rank.recv(0, 2)), "second");
      EXPECT_EQ(string_of(rank.recv(0, 1)), "first");
    }
  });
}

TEST(NativeBackend, WildcardPreservesPerSourceOrder) {
  const int n = 50;
  NativeEngine engine(NativeConfig{.nranks = 3});
  engine.run([n](Rank& rank) {
    if (rank.rank() == 0) {
      std::map<int, int> next;
      for (int i = 0; i < 2 * n; ++i) {
        const Message m = rank.recv(kAnySource, kAnyTag);
        // Arrival order across sources is timing-dependent, but each
        // source's own stream must arrive in send order.
        EXPECT_EQ(string_of(m), std::to_string(next[m.source]++));
      }
      EXPECT_EQ(next[1], n);
      EXPECT_EQ(next[2], n);
    } else {
      for (int i = 0; i < n; ++i) rank.send(0, 0, bytes_of(std::to_string(i)));
    }
  });
}

TEST(NativeBackend, HasMessagePolling) {
  NativeEngine engine(NativeConfig{.nranks = 2});
  engine.run([](Rank& rank) {
    if (rank.rank() == 0) {
      rank.send(1, 3, bytes_of("x"));
    } else {
      while (!rank.has_message(0, 3)) std::this_thread::yield();
      EXPECT_FALSE(rank.has_message(0, 99));
      EXPECT_EQ(string_of(rank.recv(0, 3)), "x");
    }
  });
}

TEST(NativeBackend, ClockAdvancesAndComputeReturns) {
  NativeEngine engine(NativeConfig{.nranks = 1});
  engine.run([](Rank& rank) {
    const double t0 = rank.now();
    rank.compute(123.0);  // modeled seconds: a timed no-op on native
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    const double t1 = rank.now();
    EXPECT_GE(t1 - t0, 0.005);
    EXPECT_LT(t1 - t0, 10.0);  // compute() must not sleep modeled time
    EXPECT_EQ(rank.modeled_byte_time(), 0.0);
  });
}

TEST(NativeBackend, CollectivesOverComm) {
  NativeEngine engine(NativeConfig{.nranks = 4});
  engine.run([](Rank& rank) {
    mpi::Comm comm(rank);
    comm.barrier();

    std::vector<std::uint64_t> data = {comm.rank() == 0 ? 41u : 0u};
    comm.bcast(data, 0);
    EXPECT_EQ(data[0], 41u);

    const std::uint64_t total =
        comm.allreduce_scalar(static_cast<std::uint64_t>(comm.rank() + 1), mpi::ReduceOp::Sum);
    EXPECT_EQ(total, 10u);

    const auto gathered =
        comm.gather_value(static_cast<std::uint64_t>(comm.rank()), 0);
    if (comm.rank() == 0) {
      ASSERT_EQ(gathered.size(), 4u);
      for (std::size_t r = 0; r < gathered.size(); ++r)
        EXPECT_EQ(gathered[r], static_cast<std::uint64_t>(r));
    }

    // Phantom collectives are timed no-ops on the native backend.
    comm.bcast_phantom(1 << 20, 0);
    comm.allreduce_phantom(1 << 20);
    comm.barrier();
  });
}

TEST(NativeBackend, AlltoallvOverComm) {
  NativeEngine engine(NativeConfig{.nranks = 3});
  engine.run([](Rank& rank) {
    mpi::Comm comm(rank);
    std::vector<std::vector<std::byte>> sendbufs(3);
    for (int dst = 0; dst < 3; ++dst)
      sendbufs[static_cast<std::size_t>(dst)] =
          bytes_of(std::to_string(comm.rank()) + "->" + std::to_string(dst));
    const auto recvd = comm.alltoallv(std::move(sendbufs));
    ASSERT_EQ(recvd.size(), 3u);
    for (int src = 0; src < 3; ++src) {
      const auto& buf = recvd[static_cast<std::size_t>(src)];
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(buf.data()), buf.size()),
                std::to_string(src) + "->" + std::to_string(comm.rank()));
    }
  });
}

TEST(NativeBackend, ErrorPropagatesAndUnblocksPeers) {
  NativeEngine engine(NativeConfig{.nranks = 3});
  EXPECT_THROW(engine.run([](Rank& rank) {
    if (rank.rank() == 2) {
      throw InputError("rank 2 failed");
    }
    // Ranks 0 and 1 block on a message that never comes; the engine must
    // wake them when rank 2 dies instead of deadlocking.
    (void)rank.recv(2, 0);
    ADD_FAILURE() << "recv returned after peer failure";
  }),
               InputError);
}

TEST(NativeBackend, RecvTimeoutDiagnosesDeadlock) {
  NativeEngine engine(NativeConfig{.nranks = 1, .recv_timeout = 0.05});
  EXPECT_THROW(engine.run([](Rank& rank) { (void)rank.recv(0, 0); }), LogicError);
}

TEST(NativeBackend, LaunchDispatchesBothBackends) {
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    LaunchConfig lc;
    lc.backend = backend;
    lc.nranks = 2;
    std::atomic<int> visits{0};
    const LaunchResult res = launch(lc, [&](Rank& rank) {
      mpi::Comm comm(rank);
      comm.barrier();
      visits.fetch_add(1 + comm.rank());
    });
    EXPECT_EQ(visits.load(), 3);
    EXPECT_GE(res.elapsed, 0.0);
    EXPECT_EQ(res.final_times.size(), 2u);
    EXPECT_GT(res.messages, 0u);  // the barrier exchanges messages
  }
}

// Latency-bound work (sleeps standing in for I/O waits) must overlap
// across ranks: four 60 ms waits spread over four threads finish in
// roughly one wait, not four, even on a single core. Compute-bound
// speedup additionally needs a multi-core host, which CI may not have.
TEST(NativeBackend, ParallelSpeedupOnLatencyBoundWork) {
  const auto work = [](int tasks) {
    for (int t = 0; t < tasks; ++t)
      std::this_thread::sleep_for(std::chrono::milliseconds(60));
  };
  NativeEngine serial(NativeConfig{.nranks = 1});
  serial.run([&](Rank&) { work(4); });
  NativeEngine parallel(NativeConfig{.nranks = 4});
  parallel.run([&](Rank&) { work(1); });
  EXPECT_GT(serial.elapsed(), parallel.elapsed() * 1.5);
}

}  // namespace
}  // namespace mrbio::rt
