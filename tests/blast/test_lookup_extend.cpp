// Tests for the lookup tables and both extension stages.
#include <gtest/gtest.h>

#include <string>

#include "blast/extend.hpp"
#include "blast/lookup.hpp"
#include "common/error.hpp"

namespace mrbio::blast {
namespace {

std::uint32_t pack_word(std::string_view w) {
  std::uint32_t packed = 0;
  for (const std::uint8_t c : encode_dna(w)) packed = (packed << 2) | c;
  return packed;
}

TEST(NucLookup, FindsAllOccurrences) {
  const auto seq = encode_dna("ACGTACGTAA");
  NucLookup lut(seq, 4);
  const auto hits = lut.hits(pack_word("ACGT"));
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 4u);
  EXPECT_TRUE(lut.hits(pack_word("GGGG")).empty());
}

TEST(NucLookup, AmbiguityBreaksWords) {
  const auto seq = encode_dna("ACGTNACGT");
  NucLookup lut(seq, 4);
  const auto hits = lut.hits(pack_word("ACGT"));
  ASSERT_EQ(hits.size(), 2u);  // the word straddling N is not indexed
  EXPECT_EQ(hits[0], 0u);
  EXPECT_EQ(hits[1], 5u);
  EXPECT_TRUE(lut.hits(pack_word("GTNA") & 0xFF).empty());
}

TEST(NucLookup, SentinelBreaksWords) {
  auto seq = encode_dna("ACGT");
  seq.push_back(kSentinel);
  const auto more = encode_dna("ACGT");
  seq.insert(seq.end(), more.begin(), more.end());
  NucLookup lut(seq, 4);
  EXPECT_EQ(lut.hits(pack_word("ACGT")).size(), 2u);
  EXPECT_EQ(lut.total_positions(), 2u);
}

TEST(NucLookup, WordSizeBoundsEnforced) {
  const auto seq = encode_dna("ACGT");
  EXPECT_THROW(NucLookup(seq, 3), InputError);
  EXPECT_THROW(NucLookup(seq, 14), InputError);
}

TEST(NucLookup, CountsMatchBruteForce) {
  // Property: total indexed positions == number of clean windows.
  const auto seq = encode_dna("ACGTACGTNACGTTTTACGTA");
  const int w = 5;
  NucLookup lut(seq, w);
  std::size_t expected = 0;
  for (std::size_t i = 0; i + w <= seq.size(); ++i) {
    bool clean = true;
    for (int k = 0; k < w; ++k) clean &= seq[i + static_cast<std::size_t>(k)] < 4;
    expected += clean ? 1 : 0;
  }
  EXPECT_EQ(lut.total_positions(), expected);
}

TEST(ProtLookup, ExactModeIndexesOnlyOwnWords) {
  const auto seq = encode_protein("WWWAAA");
  const Scorer sc = Scorer::blosum62();
  ProtLookup lut(seq, /*threshold=*/0, sc);
  const auto www = encode_protein("WWW");
  const auto hits = lut.hits(ProtLookup::pack(www[0], www[1], www[2]));
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 0u);
  // In exact mode, a near-neighbour word like WWY finds nothing.
  const auto wwy = encode_protein("WWY");
  EXPECT_TRUE(lut.hits(ProtLookup::pack(wwy[0], wwy[1], wwy[2])).empty());
}

TEST(ProtLookup, NeighbourhoodContainsHighScoringWords) {
  const auto seq = encode_protein("WWW");
  const Scorer sc = Scorer::blosum62();
  ProtLookup lut(seq, /*threshold=*/11, sc);
  // WWW vs WWW scores 33 >= 11: own word present.
  const auto www = encode_protein("WWW");
  EXPECT_EQ(lut.hits(ProtLookup::pack(www[0], www[1], www[2])).size(), 1u);
  // WWY scores 11+11+2(W vs Y) = 24 >= 11: neighbour present.
  const auto wwy = encode_protein("WWY");
  EXPECT_EQ(lut.hits(ProtLookup::pack(wwy[0], wwy[1], wwy[2])).size(), 1u);
  // PPP vs WWW scores 3*(-4) < 11: absent.
  const auto ppp = encode_protein("PPP");
  EXPECT_TRUE(lut.hits(ProtLookup::pack(ppp[0], ppp[1], ppp[2])).empty());
}

TEST(ProtLookup, NeighbourhoodMatchesBruteForce) {
  // Property: for a single query word, the bucket set equals the set of all
  // 3-mers scoring >= T against it.
  const auto seq = encode_protein("LQR");
  const Scorer sc = Scorer::blosum62();
  const int threshold = 12;
  ProtLookup lut(seq, threshold, sc);
  std::size_t expected = 0;
  for (std::uint8_t a = 0; a < kProtAlphabet; ++a) {
    for (std::uint8_t b = 0; b < kProtAlphabet; ++b) {
      for (std::uint8_t c = 0; c < kProtAlphabet; ++c) {
        const int s = sc.score(seq[0], a) + sc.score(seq[1], b) + sc.score(seq[2], c);
        const bool in_table = !lut.hits(ProtLookup::pack(a, b, c)).empty();
        EXPECT_EQ(in_table, s >= threshold);
        expected += (s >= threshold) ? 1u : 0u;
      }
    }
  }
  EXPECT_EQ(lut.total_positions(), expected);
}

TEST(ProtLookup, AmbiguousResiduesNotIndexed) {
  auto seq = encode_protein("AXA");  // X in the middle: no valid word
  const Scorer sc = Scorer::blosum62();
  ProtLookup lut(seq, 11, sc);
  EXPECT_EQ(lut.total_positions(), 0u);
}

// ---- ungapped extension ----

TEST(ExtendUngapped, PerfectMatchExtendsFully) {
  const auto q = encode_dna("AAACGTACGTCCC");
  const auto s = q;
  const Scorer sc = Scorer::dna(1, -2);
  const auto seg = extend_ungapped(q, s, 3, 3, 4, sc, 10);
  EXPECT_EQ(seg.q_start, 0u);
  EXPECT_EQ(seg.q_end, q.size());
  EXPECT_EQ(seg.score, static_cast<int>(q.size()));
}

TEST(ExtendUngapped, StopsAtMismatchRun) {
  //            0123456789
  const auto q = encode_dna("ACGTACGTTTTTTTTT");
  const auto s = encode_dna("ACGTACGTGGGGGGGG");
  const Scorer sc = Scorer::dna(1, -3);
  const auto seg = extend_ungapped(q, s, 0, 0, 4, sc, 4);
  EXPECT_EQ(seg.q_start, 0u);
  EXPECT_EQ(seg.q_end, 8u);
  EXPECT_EQ(seg.score, 8);
}

TEST(ExtendUngapped, ExtendsThroughIsolatedMismatch) {
  const auto q = encode_dna("ACGTACGTAACGTACGT");
  auto s = q;
  s[8] = static_cast<std::uint8_t>((s[8] + 1) % 4);  // single mismatch mid-way
  const Scorer sc = Scorer::dna(1, -2);
  const auto seg = extend_ungapped(q, s, 0, 0, 4, sc, 10);
  EXPECT_EQ(seg.q_end, q.size());
  EXPECT_EQ(seg.score, static_cast<int>(q.size()) - 1 - 2);
}

TEST(ExtendUngapped, LeftExtensionWorks) {
  const auto q = encode_dna("CCCCACGT");
  const auto s = encode_dna("CCCCACGT");
  const Scorer sc = Scorer::dna(1, -2);
  const auto seg = extend_ungapped(q, s, 4, 4, 4, sc, 10);
  EXPECT_EQ(seg.q_start, 0u);
  EXPECT_EQ(seg.score, 8);
}

TEST(ExtendUngapped, SentinelHardStops) {
  auto q = encode_dna("ACGTACGT");
  q.push_back(kSentinel);
  const auto more = encode_dna("ACGTACGT");
  q.insert(q.end(), more.begin(), more.end());
  const auto s = encode_dna("ACGTACGTACGTACGTACGT");
  const Scorer sc = Scorer::dna(1, -2);
  // Seed within the first query entry; extension must not cross into the
  // second even though the subject continues matching.
  const auto seg = extend_ungapped(q, s, 0, 0, 4, sc, 1000);
  EXPECT_LE(seg.q_end, 8u);
}

TEST(ExtendUngapped, BestAnchorIsInsideSegment) {
  const auto q = encode_dna("ACGTACGTACGT");
  const auto s = q;
  const Scorer sc = Scorer::dna(1, -2);
  const auto seg = extend_ungapped(q, s, 4, 4, 4, sc, 10);
  EXPECT_GE(seg.q_best, seg.q_start);
  EXPECT_LT(seg.q_best, seg.q_end);
  EXPECT_EQ(seg.q_best - seg.q_start, seg.s_best - seg.s_start);
}

// ---- gapped extension ----

TEST(ExtendGapped, ExactSequencesAlignEndToEnd) {
  const auto q = encode_dna("ACGTACGTACGTACGTACGT");
  const auto s = q;
  const Scorer sc = Scorer::dna(1, -2, 2, 1);
  const auto aln = extend_gapped(q, s, 10, 10, sc, 20);
  EXPECT_EQ(aln.q_start, 0u);
  EXPECT_EQ(aln.q_end, q.size());
  EXPECT_EQ(aln.s_start, 0u);
  EXPECT_EQ(aln.s_end, s.size());
  EXPECT_EQ(aln.score, static_cast<int>(q.size()));
  EXPECT_EQ(aln.identities, q.size());
  EXPECT_EQ(aln.align_len, q.size());
  EXPECT_EQ(aln.gaps, 0u);
}

TEST(ExtendGapped, BridgesASingleDeletion) {
  // Subject is missing 2 bases from the middle of the query.
  const std::string left = "ACGGTCAGATCG";
  const std::string right = "TTCAGGACCTGA";
  const auto q = encode_dna(left + "GG" + right);
  const auto s = encode_dna(left + right);
  const Scorer sc = Scorer::dna(1, -3, 2, 1);  // gap of len 2 costs 2+2*1=4
  const auto aln = extend_gapped(q, s, 2, 2, sc, 16);
  EXPECT_EQ(aln.q_end, q.size());
  EXPECT_EQ(aln.s_end, s.size());
  EXPECT_EQ(aln.gaps, 2u);
  EXPECT_EQ(aln.identities, left.size() + right.size());
  EXPECT_EQ(aln.align_len, q.size());
  EXPECT_EQ(aln.score, static_cast<int>(left.size() + right.size()) - 2 - 2 * 1);
}

TEST(ExtendGapped, BridgesAnInsertionInSubject) {
  const std::string left = "ACGGTCAGATCG";
  const std::string right = "TTCAGGACCTGA";
  const auto q = encode_dna(left + right);
  const auto s = encode_dna(left + "AAA" + right);
  const Scorer sc = Scorer::dna(1, -3, 2, 1);
  const auto aln = extend_gapped(q, s, 2, 2, sc, 20);
  EXPECT_EQ(aln.q_end, q.size());
  EXPECT_EQ(aln.s_end, s.size());
  EXPECT_EQ(aln.gaps, 3u);
  EXPECT_EQ(aln.score, static_cast<int>(left.size() + right.size()) - 2 - 3);
}

TEST(ExtendGapped, XdropPreventsCrossingLongJunk) {
  // Two matching segments separated by 30 junk bases; with a small X-drop
  // the alignment must stay in the seeded segment.
  const std::string seg1 = "ACGGTCAGATCGAT";
  const auto q = encode_dna(seg1 + std::string(30, 'T') + seg1);
  const auto s = encode_dna(seg1 + std::string(30, 'G') + seg1);
  const Scorer sc = Scorer::dna(1, -3, 5, 2);
  const auto aln = extend_gapped(q, s, 2, 2, sc, 8);
  EXPECT_EQ(aln.q_start, 0u);
  EXPECT_EQ(aln.q_end, seg1.size());
  EXPECT_EQ(aln.score, static_cast<int>(seg1.size()));
}

TEST(ExtendGapped, ProteinAlignmentWithBlosum) {
  const auto q = encode_protein("MKVLAAGWQERTYHD");
  const auto s = encode_protein("MKVLAAGWQERTYHD");
  const Scorer sc = Scorer::blosum62();
  const auto aln = extend_gapped(q, s, 7, 7, sc, 30);
  EXPECT_EQ(aln.identities, q.size());
  int self_score = 0;
  for (const auto c : q) self_score += sc.score(c, c);
  EXPECT_EQ(aln.score, self_score);
}

TEST(ExtendGapped, SeedAtSequenceEdges) {
  const auto q = encode_dna("ACGTACGT");
  const auto s = q;
  const Scorer sc = Scorer::dna(1, -2, 2, 1);
  const auto a0 = extend_gapped(q, s, 0, 0, sc, 10);
  EXPECT_EQ(a0.score, 8);
  const auto a7 = extend_gapped(q, s, 7, 7, sc, 10);
  EXPECT_EQ(a7.score, 8);
}

TEST(ExtendGapped, EditOpsSpanCoordinates) {
  const auto q = encode_dna("ACGGTCAGATCGAATTCAGGACCTGA");
  const auto s = encode_dna("ACGGTCAGATCGTTCAGGACCTGA");
  const Scorer sc = Scorer::dna(1, -3, 2, 1);
  const auto aln = extend_gapped(q, s, 2, 2, sc, 16);
  std::size_t q_span = 0;
  std::size_t s_span = 0;
  for (const auto& op : aln.ops) {
    if (op.type != EditOp::Type::InsertS) q_span += op.len;
    if (op.type != EditOp::Type::InsertQ) s_span += op.len;
  }
  EXPECT_EQ(q_span, aln.q_end - aln.q_start);
  EXPECT_EQ(s_span, aln.s_end - aln.s_start);
}

}  // namespace
}  // namespace mrbio::blast
