// Tests for FASTA parsing/writing, shredding and synthetic generators.
#include "blast/sequence.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/error.hpp"
#include <unistd.h>

namespace mrbio::blast {
namespace {

TEST(Fasta, ParsesMultiRecord) {
  const auto seqs = parse_fasta(">s1 first seq\nACGT\nACGT\n>s2\nTTTT\n", SeqType::Dna);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].id, "s1");
  EXPECT_EQ(seqs[0].description, "first seq");
  EXPECT_EQ(seqs[0].length(), 8u);
  EXPECT_EQ(decode_dna(seqs[0].data), "ACGTACGT");
  EXPECT_EQ(seqs[1].id, "s2");
  EXPECT_TRUE(seqs[1].description.empty());
}

TEST(Fasta, HandlesCrlfAndBlankLines) {
  const auto seqs = parse_fasta(">a\r\nAC\r\n\r\nGT\r\n", SeqType::Dna);
  ASSERT_EQ(seqs.size(), 1u);
  EXPECT_EQ(decode_dna(seqs[0].data), "ACGT");
}

TEST(Fasta, EmptySequenceRecordAllowed) {
  const auto seqs = parse_fasta(">empty\n>full\nAC\n", SeqType::Dna);
  ASSERT_EQ(seqs.size(), 2u);
  EXPECT_EQ(seqs[0].length(), 0u);
  EXPECT_EQ(seqs[1].length(), 2u);
}

TEST(Fasta, ResidracesBeforeDeflineThrow) {
  EXPECT_THROW(parse_fasta("ACGT\n>a\nAC\n", SeqType::Dna), InputError);
}

TEST(Fasta, EmptyIdThrows) {
  EXPECT_THROW(parse_fasta("> desc only\nAC\n", SeqType::Dna), InputError);
}

TEST(Fasta, RoundTripThroughText) {
  Rng rng(3);
  std::vector<Sequence> seqs;
  seqs.push_back(random_sequence(rng, "long", 200, SeqType::Dna));
  seqs.push_back(random_sequence(rng, "short", 5, SeqType::Dna));
  seqs[0].description = "some description";
  const auto parsed = parse_fasta(to_fasta(seqs, SeqType::Dna), SeqType::Dna);
  ASSERT_EQ(parsed.size(), 2u);
  EXPECT_EQ(parsed[0].id, seqs[0].id);
  EXPECT_EQ(parsed[0].description, seqs[0].description);
  EXPECT_EQ(parsed[0].data, seqs[0].data);
  EXPECT_EQ(parsed[1].data, seqs[1].data);
}

TEST(Fasta, FileRoundTrip) {
  const auto dir = std::filesystem::temp_directory_path() / ("mrbio_fasta_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string path = (dir / "t.fa").string();
  Rng rng(4);
  const std::vector<Sequence> seqs{random_sequence(rng, "q1", 50, SeqType::Protein)};
  write_fasta_file(path, seqs, SeqType::Protein);
  const auto back = read_fasta_file(path, SeqType::Protein);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].data, seqs[0].data);
  std::filesystem::remove_all(dir);
}

TEST(Fasta, MissingFileThrows) {
  EXPECT_THROW(read_fasta_file("/nonexistent/x.fa", SeqType::Dna), InputError);
}

TEST(Shred, PaperParameters400By200) {
  Rng rng(5);
  const std::vector<Sequence> src{random_sequence(rng, "genome", 1000, SeqType::Dna)};
  const auto frags = shred(src, 400, 200);
  // starts at 0,200,400,600: [0,400) [200,600) [400,800) [600,1000)
  ASSERT_EQ(frags.size(), 4u);
  EXPECT_EQ(frags[0].id, "genome/0-400");
  EXPECT_EQ(frags[1].id, "genome/200-600");
  EXPECT_EQ(frags[3].id, "genome/600-1000");
  for (const auto& f : frags) EXPECT_EQ(f.length(), 400u);
  // Fragment contents match the parent.
  for (std::size_t i = 0; i < 400; ++i) {
    EXPECT_EQ(frags[1].data[i], src[0].data[200 + i]);
  }
}

TEST(Shred, ShortTailFragmentKept) {
  Rng rng(6);
  const std::vector<Sequence> src{random_sequence(rng, "g", 500, SeqType::Dna)};
  const auto frags = shred(src, 400, 200);
  // [0,400) [200,500)
  ASSERT_EQ(frags.size(), 2u);
  EXPECT_EQ(frags[1].length(), 300u);
}

TEST(Shred, MinLenDropsTinyTail) {
  Rng rng(7);
  const std::vector<Sequence> src{random_sequence(rng, "g", 410, SeqType::Dna)};
  const auto frags = shred(src, 400, 200, 50);
  ASSERT_EQ(frags.size(), 2u);  // [0,400) and [200,410): 210 >= 50 kept
  const auto frags2 = shred(src, 400, 10, 50);
  // starts 0, 390: second frag [390,410) = 20 < 50 dropped
  ASSERT_EQ(frags2.size(), 1u);
}

TEST(Shred, OverlapMustBeSmallerThanFragment) {
  EXPECT_THROW(shred({}, 200, 200), InputError);
}

TEST(Generators, RandomSequenceInAlphabet) {
  Rng rng(8);
  const auto dna = random_sequence(rng, "d", 1000, SeqType::Dna);
  for (auto c : dna.data) EXPECT_LT(c, kDnaAlphabet);
  const auto prot = random_sequence(rng, "p", 1000, SeqType::Protein);
  for (auto c : prot.data) EXPECT_LT(c, kProtAlphabet);
}

TEST(Generators, MutateRateZeroIsIdentity) {
  Rng rng(9);
  const auto src = random_sequence(rng, "s", 300, SeqType::Dna);
  const auto copy = mutate(rng, src, "c", 0.0, SeqType::Dna);
  EXPECT_EQ(copy.data, src.data);
}

TEST(Generators, MutateRateChangesRoughlyThatFraction) {
  Rng rng(10);
  const auto src = random_sequence(rng, "s", 10000, SeqType::Dna);
  const auto mut = mutate(rng, src, "m", 0.1, SeqType::Dna);
  std::size_t diffs = 0;
  for (std::size_t i = 0; i < src.length(); ++i) {
    if (src.data[i] != mut.data[i]) ++diffs;
  }
  EXPECT_GT(diffs, 800u);
  EXPECT_LT(diffs, 1200u);
}

}  // namespace
}  // namespace mrbio::blast
