// Tests for k-mer composition vectors.
#include "blast/composition.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "blast/sequence.hpp"
#include "common/error.hpp"

namespace mrbio::blast {
namespace {

TEST(Composition, DimsArePowersOfFour) {
  EXPECT_EQ(kmer_dims(1), 4u);
  EXPECT_EQ(kmer_dims(2), 16u);
  EXPECT_EQ(kmer_dims(4), 256u);
  EXPECT_THROW(kmer_dims(0), InputError);
  EXPECT_THROW(kmer_dims(9), InputError);
}

TEST(Composition, MononucleotideFrequencies) {
  const auto freqs = kmer_frequencies(encode_dna("AACG"), 1);
  ASSERT_EQ(freqs.size(), 4u);
  EXPECT_FLOAT_EQ(freqs[0], 0.5f);   // A
  EXPECT_FLOAT_EQ(freqs[1], 0.25f);  // C
  EXPECT_FLOAT_EQ(freqs[2], 0.25f);  // G
  EXPECT_FLOAT_EQ(freqs[3], 0.0f);   // T
}

TEST(Composition, SumsToOne) {
  Rng rng(60);
  const auto seq = random_sequence(rng, "s", 5'000, SeqType::Dna);
  for (int k : {1, 2, 4}) {
    const auto freqs = kmer_frequencies(seq.data, k);
    const double sum = std::accumulate(freqs.begin(), freqs.end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-4) << "k=" << k;
  }
}

TEST(Composition, AmbiguityBreaksWindows) {
  // "AANA": only windows of size 2 are "AA" (first) and nothing spanning N.
  const auto freqs = kmer_frequencies(encode_dna("AANA"), 2);
  EXPECT_FLOAT_EQ(freqs[0], 1.0f);  // AA is the only counted dimer
}

TEST(Composition, AllAmbiguousGivesZeros) {
  const auto freqs = kmer_frequencies(encode_dna("NNNNNN"), 4);
  for (const float f : freqs) EXPECT_FLOAT_EQ(f, 0.0f);
}

TEST(Composition, ShortSequenceGivesZeros) {
  const auto freqs = kmer_frequencies(encode_dna("ACG"), 4);
  for (const float f : freqs) EXPECT_FLOAT_EQ(f, 0.0f);
}

TEST(Composition, HomopolymerIsAPoint) {
  const auto freqs = tetranucleotide_frequencies(encode_dna(std::string(100, 'A')));
  EXPECT_FLOAT_EQ(freqs[0], 1.0f);  // AAAA
  for (std::size_t i = 1; i < freqs.size(); ++i) EXPECT_FLOAT_EQ(freqs[i], 0.0f);
}

TEST(Composition, DistinguishesCompositionBiases) {
  // GC-rich vs AT-rich random sequences are far apart in tetra space,
  // while two AT-rich samples are close: the property metagenomic binning
  // relies on.
  Rng rng(61);
  auto biased = [&](double gc, std::size_t len) {
    std::vector<std::uint8_t> seq(len);
    for (auto& c : seq) {
      const bool is_gc = rng.uniform() < gc;
      c = static_cast<std::uint8_t>(is_gc ? 1 + rng.below(2) : (rng.below(2) == 0 ? 0 : 3));
    }
    return seq;
  };
  auto l2 = [](const std::vector<float>& a, const std::vector<float>& b) {
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
      acc += (a[i] - b[i]) * (a[i] - b[i]);
    }
    return acc;
  };
  const auto gc1 = tetranucleotide_frequencies(biased(0.8, 20'000));
  const auto at1 = tetranucleotide_frequencies(biased(0.2, 20'000));
  const auto at2 = tetranucleotide_frequencies(biased(0.2, 20'000));
  EXPECT_GT(l2(gc1, at1), 20.0 * l2(at1, at2));
}

}  // namespace
}  // namespace mrbio::blast
