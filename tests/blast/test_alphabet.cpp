// Tests for alphabet encoding, complementation and 2-bit packing.
#include "blast/alphabet.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrbio::blast {
namespace {

TEST(Alphabet, DnaEncodeDecodeRoundTrip) {
  const auto codes = encode_dna("ACGTacgt");
  ASSERT_EQ(codes.size(), 8u);
  EXPECT_EQ(codes[0], 0);
  EXPECT_EQ(codes[1], 1);
  EXPECT_EQ(codes[2], 2);
  EXPECT_EQ(codes[3], 3);
  EXPECT_EQ(codes[4], 0);  // lowercase accepted
  EXPECT_EQ(decode_dna(codes), "ACGTACGT");
}

TEST(Alphabet, DnaAmbiguityCodes) {
  const auto codes = encode_dna("ANRYX-");
  EXPECT_EQ(codes[0], 0);
  for (std::size_t i = 1; i < codes.size(); ++i) EXPECT_EQ(codes[i], kDnaAmbig);
  EXPECT_EQ(decode_dna(codes), "ANNNNN");
}

TEST(Alphabet, RnaUracilMapsToT) {
  EXPECT_EQ(encode_dna("U")[0], 3);
}

TEST(Alphabet, ProteinEncodeDecodeRoundTrip) {
  const std::string all = "ACDEFGHIKLMNPQRSTVWY";
  const auto codes = encode_protein(all);
  for (std::size_t i = 0; i < codes.size(); ++i) {
    EXPECT_EQ(codes[i], i) << "residue " << all[i];
  }
  EXPECT_EQ(decode_protein(codes), all);
}

TEST(Alphabet, ProteinNonStandardToAmbig) {
  for (char c : {'B', 'Z', 'X', 'U', 'O', '*', 'J'}) {
    EXPECT_EQ(encode_protein(std::string(1, c))[0], kProtAmbig) << c;
  }
}

TEST(Alphabet, SentinelDistinctFromAllResidues) {
  EXPECT_GE(kSentinel, kProtAlphabet + 1);
  EXPECT_NE(kSentinel, kDnaAmbig);
  EXPECT_NE(kSentinel, kProtAmbig);
}

TEST(Alphabet, ReverseComplement) {
  const auto codes = encode_dna("AACGT");
  const auto rc = reverse_complement(codes);
  EXPECT_EQ(decode_dna(rc), "ACGTT");
}

TEST(Alphabet, ReverseComplementPreservesAmbiguity) {
  const auto codes = encode_dna("ANT");
  const auto rc = reverse_complement(codes);
  EXPECT_EQ(decode_dna(rc), "ANT");  // A->T, N->N, T->A, then reversed
}

TEST(Alphabet, ReverseComplementInvolution) {
  const auto codes = encode_dna("ACGTTGCAGTN");
  EXPECT_EQ(reverse_complement(reverse_complement(codes)), codes);
}

TEST(Alphabet, Pack2BitRoundTrip) {
  const auto codes = encode_dna("ACGTACGTACG");  // 11 bases, partial last byte
  const auto packed = pack_2bit(codes);
  EXPECT_EQ(packed.size(), 3u);
  EXPECT_EQ(unpack_2bit(packed, 11), codes);
}

TEST(Alphabet, Pack2BitAmbiguityPacksAsA) {
  const auto codes = encode_dna("NT");
  const auto packed = pack_2bit(codes);
  const auto unpacked = unpack_2bit(packed, 2);
  EXPECT_EQ(unpacked[0], 0);  // N became A; caller restores via exceptions
  EXPECT_EQ(unpacked[1], 3);
}

TEST(Alphabet, UnpackTooSmallBufferThrows) {
  EXPECT_THROW(unpack_2bit(std::vector<std::uint8_t>{0}, 5), InputError);
}

TEST(Alphabet, EmptySequences) {
  EXPECT_TRUE(encode_dna("").empty());
  EXPECT_TRUE(pack_2bit({}).empty());
  EXPECT_TRUE(unpack_2bit({}, 0).empty());
  EXPECT_TRUE(reverse_complement({}).empty());
}

}  // namespace
}  // namespace mrbio::blast
