// Tests for the low-complexity filters, the database format and HSP helpers.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "blast/dbformat.hpp"
#include "blast/filter.hpp"
#include "blast/hsp.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"

namespace mrbio::blast {
namespace {

TEST(Dust, MasksHomopolymerRun) {
  Rng rng(20);
  auto seq = random_sequence(rng, "s", 300, SeqType::Dna).data;
  std::fill(seq.begin() + 100, seq.begin() + 200, std::uint8_t{0});  // poly-A
  const auto ranges = dust_mask(seq);
  ASSERT_FALSE(ranges.empty());
  bool covers = false;
  for (const auto& r : ranges) {
    if (r.begin <= 120 && r.end >= 180) covers = true;
  }
  EXPECT_TRUE(covers);
}

TEST(Dust, LeavesRandomSequenceAlone) {
  Rng rng(21);
  const auto seq = random_sequence(rng, "s", 2000, SeqType::Dna).data;
  EXPECT_TRUE(dust_mask(seq).empty());
}

TEST(Dust, MasksDinucleotideRepeat) {
  std::vector<std::uint8_t> seq;
  for (int i = 0; i < 50; ++i) {
    seq.push_back(0);
    seq.push_back(3);  // ATATAT...
  }
  const auto ranges = dust_mask(seq);
  ASSERT_FALSE(ranges.empty());
  EXPECT_EQ(ranges[0].begin, 0u);
  EXPECT_EQ(ranges[0].end, seq.size());
}

TEST(Dust, ShortSequenceNoMask) {
  EXPECT_TRUE(dust_mask(encode_dna("AC")).empty());
}

TEST(Seg, MasksLowEntropyRun) {
  Rng rng(22);
  auto seq = random_sequence(rng, "p", 100, SeqType::Protein).data;
  std::fill(seq.begin() + 40, seq.begin() + 60, std::uint8_t{5});
  const auto ranges = seg_mask(seq);
  ASSERT_FALSE(ranges.empty());
  bool covers = false;
  for (const auto& r : ranges) {
    if (r.begin <= 45 && r.end >= 55) covers = true;
  }
  EXPECT_TRUE(covers);
}

TEST(Seg, LeavesDiverseSequenceAlone) {
  const auto seq = encode_protein("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY");
  EXPECT_TRUE(seg_mask(seq).empty());
}

TEST(Filter, ApplyMaskReplacesWithAmbig) {
  const auto seq = encode_dna("ACGTACGT");
  const std::vector<MaskRange> ranges{{2, 5}};
  const auto masked = apply_mask(seq, ranges, SeqType::Dna);
  EXPECT_EQ(masked[1], seq[1]);
  EXPECT_EQ(masked[2], kDnaAmbig);
  EXPECT_EQ(masked[4], kDnaAmbig);
  EXPECT_EQ(masked[5], seq[5]);
}

TEST(Filter, MergeRangesCoalesces) {
  const auto merged = merge_ranges({{5, 10}, {0, 3}, {8, 12}, {3, 5}});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].begin, 0u);
  EXPECT_EQ(merged[0].end, 12u);
}

TEST(Filter, MergeRangesKeepsDisjoint) {
  const auto merged = merge_ranges({{10, 20}, {0, 5}});
  ASSERT_EQ(merged.size(), 2u);
  EXPECT_EQ(merged[0].begin, 0u);
  EXPECT_EQ(merged[1].begin, 10u);
}

// ---- database format ----

class DbTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_db_" + std::string(
                              ::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string base() const { return (dir_ / "db").string(); }
  std::filesystem::path dir_;
};

TEST_F(DbTest, BuildAndLoadRoundTripDna) {
  Rng rng(23);
  std::vector<Sequence> seqs;
  for (int i = 0; i < 5; ++i) {
    seqs.push_back(random_sequence(rng, "seq" + std::to_string(i), 100 + i * 13,
                                   SeqType::Dna));
  }
  seqs[2].data[50] = kDnaAmbig;  // exercise the ambiguity exception list
  seqs[2].description = "with an N";
  const DbInfo info = build_db(seqs, base(), SeqType::Dna, 1'000'000);
  ASSERT_EQ(info.volume_paths.size(), 1u);
  EXPECT_EQ(info.total_seqs, 5u);

  const DbVolume vol = DbVolume::load(info.volume_paths[0]);
  ASSERT_EQ(vol.num_seqs(), 5u);
  for (std::size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(vol.seq(i).id, seqs[i].id);
    EXPECT_EQ(vol.seq(i).data, seqs[i].data) << "sequence " << i;
  }
  EXPECT_EQ(vol.seq(2).description, "with an N");
  EXPECT_EQ(vol.seq(2).data[50], kDnaAmbig);
}

TEST_F(DbTest, PartitionsAtTargetSize) {
  Rng rng(24);
  std::vector<Sequence> seqs;
  for (int i = 0; i < 10; ++i) {
    seqs.push_back(random_sequence(rng, "s" + std::to_string(i), 100, SeqType::Dna));
  }
  const DbInfo info = build_db(seqs, base(), SeqType::Dna, 250);
  // Each volume closes once it reaches 250 residues: 3 seqs x 100 -> 300.
  EXPECT_EQ(info.volume_paths.size(), 4u);
  std::uint64_t total = 0;
  std::uint64_t nseqs = 0;
  for (const auto& p : info.volume_paths) {
    const DbVolume v = DbVolume::load(p);
    total += v.residues();
    nseqs += v.num_seqs();
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(nseqs, 10u);
}

TEST_F(DbTest, AliasFileRoundTrip) {
  Rng rng(25);
  const std::vector<Sequence> seqs{random_sequence(rng, "a", 500, SeqType::Protein)};
  const DbInfo info = build_db(seqs, base(), SeqType::Protein, 100);
  const DbInfo read = read_db_info(base() + ".mal");
  EXPECT_EQ(read.type, SeqType::Protein);
  EXPECT_EQ(read.total_residues, 500u);
  EXPECT_EQ(read.total_seqs, 1u);
  EXPECT_EQ(read.volume_paths, info.volume_paths);
}

TEST_F(DbTest, ProteinRoundTrip) {
  Rng rng(26);
  const std::vector<Sequence> seqs{random_sequence(rng, "p1", 77, SeqType::Protein)};
  const DbInfo info = build_db(seqs, base(), SeqType::Protein, 1000);
  const DbVolume vol = DbVolume::load(info.volume_paths[0]);
  EXPECT_EQ(vol.seq(0).data, seqs[0].data);
  EXPECT_EQ(vol.type(), SeqType::Protein);
}

TEST_F(DbTest, CorruptFileRejected) {
  const std::string path = (dir_ / "junk.vol").string();
  std::ofstream(path) << "not a volume";
  EXPECT_THROW(DbVolume::load(path), InputError);
}

TEST_F(DbTest, EmptyIdRejected) {
  DbBuilder b(base(), SeqType::Dna, 100);
  Sequence s;
  EXPECT_THROW(b.add(s), InputError);
}

TEST_F(DbTest, FinishTwiceRejected) {
  DbBuilder b(base(), SeqType::Dna, 100);
  b.finish();
  EXPECT_THROW(b.finish(), LogicError);
}

// ---- HSP helpers ----

Hsp make_hsp(const std::string& sid, double ev, int score, std::uint64_t q0 = 0,
             std::uint64_t q1 = 10, std::uint64_t s0 = 0, std::uint64_t s1 = 10) {
  Hsp h;
  h.subject_id = sid;
  h.evalue = ev;
  h.raw_score = score;
  h.q_start = q0;
  h.q_end = q1;
  h.s_start = s0;
  h.s_end = s1;
  h.align_len = static_cast<std::uint32_t>(q1 - q0);
  h.identities = h.align_len;
  return h;
}

TEST(Hsp, SerializationRoundTrip) {
  Hsp h = make_hsp("subj", 1e-30, 200, 5, 105, 1000, 1100);
  h.minus_strand = true;
  h.bit_score = 98.7;
  h.gaps = 3;
  ByteWriter w;
  h.serialize(w);
  ByteReader r(w.bytes());
  const Hsp back = Hsp::deserialize(r);
  EXPECT_EQ(back.subject_id, "subj");
  EXPECT_EQ(back.q_start, 5u);
  EXPECT_EQ(back.s_end, 1100u);
  EXPECT_TRUE(back.minus_strand);
  EXPECT_DOUBLE_EQ(back.evalue, 1e-30);
  EXPECT_DOUBLE_EQ(back.bit_score, 98.7);
  EXPECT_EQ(back.gaps, 3u);
  EXPECT_TRUE(r.done());
}

TEST(Hsp, SortAndTruncateByEvalue) {
  std::vector<Hsp> hsps{make_hsp("a", 1e-5, 50), make_hsp("b", 1e-20, 90),
                        make_hsp("c", 1e-10, 70)};
  sort_and_truncate(hsps, 2);
  ASSERT_EQ(hsps.size(), 2u);
  EXPECT_EQ(hsps[0].subject_id, "b");
  EXPECT_EQ(hsps[1].subject_id, "c");
}

TEST(Hsp, SortZeroMaxKeepsAll) {
  std::vector<Hsp> hsps{make_hsp("a", 1.0, 1), make_hsp("b", 2.0, 1)};
  sort_and_truncate(hsps, 0);
  EXPECT_EQ(hsps.size(), 2u);
}

TEST(Hsp, TieBreakIsDeterministic) {
  std::vector<Hsp> hsps{make_hsp("b", 1e-5, 50), make_hsp("a", 1e-5, 50)};
  sort_and_truncate(hsps, 0);
  EXPECT_EQ(hsps[0].subject_id, "a");
}

TEST(Hsp, CullRemovesContained) {
  std::vector<Hsp> hsps{make_hsp("s", 1e-20, 100, 0, 100, 0, 100),
                        make_hsp("s", 1e-5, 40, 10, 50, 10, 50)};
  cull_contained(hsps);
  ASSERT_EQ(hsps.size(), 1u);
  EXPECT_EQ(hsps[0].raw_score, 100);
}

TEST(Hsp, CullKeepsDifferentSubjects) {
  std::vector<Hsp> hsps{make_hsp("s1", 1e-20, 100, 0, 100, 0, 100),
                        make_hsp("s2", 1e-5, 40, 10, 50, 10, 50)};
  cull_contained(hsps);
  EXPECT_EQ(hsps.size(), 2u);
}

TEST(Hsp, CullKeepsPartialOverlap) {
  std::vector<Hsp> hsps{make_hsp("s", 1e-20, 100, 0, 100, 0, 100),
                        make_hsp("s", 1e-5, 40, 50, 150, 50, 150)};
  cull_contained(hsps);
  EXPECT_EQ(hsps.size(), 2u);
}

TEST(Hsp, TabularFormatFields) {
  Hsp h = make_hsp("subj", 1e-9, 80, 0, 50, 100, 150);
  h.bit_score = 95.3;
  const std::string line = to_tabular("query1", h);
  EXPECT_NE(line.find("query1\tsubj\t100.00\t50\t0\t0\t1\t50\t101\t150"), std::string::npos);
}

TEST(Hsp, TabularMinusStrandSwapsSubjectCoords) {
  Hsp h = make_hsp("s", 1e-9, 80, 0, 50, 100, 150);
  h.minus_strand = true;
  const std::string line = to_tabular("q", h);
  EXPECT_NE(line.find("\t150\t101\t"), std::string::npos);
}

}  // namespace
}  // namespace mrbio::blast
