// Tests for the FASTA offset index and the tapered block schedule (the
// paper's Section V dynamic-chunking machinery).
#include "blast/fasta_index.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <numeric>

#include "common/error.hpp"

namespace mrbio::blast {
namespace {

class FastaIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_faidx_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
    Rng rng(99);
    for (int i = 0; i < 23; ++i) {
      seqs_.push_back(random_sequence(rng, "rec" + std::to_string(i),
                                      50 + 37 * (static_cast<std::size_t>(i) % 5),
                                      SeqType::Dna));
    }
    seqs_[4].description = "a description with spaces";
    path_ = (dir_ / "queries.fa").string();
    write_fasta_file(path_, seqs_, SeqType::Dna);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::filesystem::path dir_;
  std::string path_;
  std::vector<Sequence> seqs_;
};

TEST_F(FastaIndexTest, CountsAllRecords) {
  const FastaIndex idx(path_, SeqType::Dna);
  EXPECT_EQ(idx.num_records(), seqs_.size());
}

TEST_F(FastaIndexTest, OffsetsPointAtDeflines) {
  const FastaIndex idx(path_, SeqType::Dna);
  std::ifstream in(path_, std::ios::binary);
  for (std::size_t i = 0; i < idx.num_records(); ++i) {
    in.seekg(static_cast<std::streamoff>(idx.offset(i)));
    char c = 0;
    in.get(c);
    EXPECT_EQ(c, '>') << "record " << i;
  }
}

TEST_F(FastaIndexTest, ReadRangeMatchesOriginal) {
  const FastaIndex idx(path_, SeqType::Dna);
  const auto got = idx.read_range(5, 4);
  ASSERT_EQ(got.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(got[i].id, seqs_[5 + i].id);
    EXPECT_EQ(got[i].data, seqs_[5 + i].data);
  }
  EXPECT_EQ(got[0].description, "");
}

TEST_F(FastaIndexTest, ReadRangeKeepsDescriptions) {
  const FastaIndex idx(path_, SeqType::Dna);
  const auto got = idx.read_range(4, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].description, "a description with spaces");
}

TEST_F(FastaIndexTest, RangeClampsAtEnd) {
  const FastaIndex idx(path_, SeqType::Dna);
  const auto got = idx.read_range(20, 100);
  EXPECT_EQ(got.size(), 3u);
  EXPECT_TRUE(idx.read_range(23, 5).empty());
  EXPECT_TRUE(idx.read_range(0, 0).empty());
}

TEST_F(FastaIndexTest, FullScanEqualsWholeFile) {
  const FastaIndex idx(path_, SeqType::Dna);
  const auto all = idx.read_range(0, idx.num_records());
  ASSERT_EQ(all.size(), seqs_.size());
  for (std::size_t i = 0; i < all.size(); ++i) EXPECT_EQ(all[i].data, seqs_[i].data);
}

TEST_F(FastaIndexTest, MissingFileThrows) {
  EXPECT_THROW(FastaIndex((dir_ / "absent.fa").string(), SeqType::Dna), InputError);
}

TEST(TaperedBlocks, SumsToTotal) {
  for (const std::uint64_t total : {1'000ull, 80'000ull, 12'345ull}) {
    const auto blocks = tapered_block_sizes(total, 1'000, 125);
    EXPECT_EQ(std::accumulate(blocks.begin(), blocks.end(), std::uint64_t{0}), total);
  }
}

TEST(TaperedBlocks, ShrinksTowardTheEnd) {
  const auto blocks = tapered_block_sizes(80'000, 2'000, 125, 0.25);
  // Bulk prefix at the initial size.
  EXPECT_EQ(blocks.front(), 2'000u);
  // Strictly non-increasing, ending at or above min_block-sized pieces.
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    EXPECT_LE(blocks[i], blocks[i - 1]) << i;
  }
  EXPECT_LE(blocks.back(), 250u);
  // More blocks than the uniform split would produce.
  EXPECT_GT(blocks.size(), 40u);
}

TEST(TaperedBlocks, NoTaperIsUniform) {
  const auto blocks = tapered_block_sizes(10'000, 1'000, 1'000, 0.0);
  EXPECT_EQ(blocks.size(), 10u);
  for (const auto b : blocks) EXPECT_EQ(b, 1'000u);
}

TEST(TaperedBlocks, BadParamsRejected) {
  EXPECT_THROW(tapered_block_sizes(100, 0, 10), InputError);
  EXPECT_THROW(tapered_block_sizes(100, 10, 20), InputError);
  EXPECT_THROW(tapered_block_sizes(100, 10, 5, 1.0), InputError);
}

}  // namespace
}  // namespace mrbio::blast
