// End-to-end searcher tests: homology detection, strands, statistics
// overrides, reporting limits, and determinism.
#include "blast/search.hpp"

#include <gtest/gtest.h>

#include <filesystem>

#include "common/rng.hpp"
#include <unistd.h>

namespace mrbio::blast {
namespace {

/// Builds an in-memory volume from sequences via a temp-free path: we round
/// trip through DbBuilder files in a temp dir.
std::shared_ptr<const DbVolume> make_volume(const std::vector<Sequence>& seqs,
                                            SeqType type) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mrbio_search_test_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  const std::string base = (dir / ("db" + std::to_string(counter++))).string();
  const DbInfo info = build_db(seqs, base, type, 1ull << 40);
  auto vol = std::make_shared<DbVolume>(DbVolume::load(info.volume_paths.at(0)));
  return vol;
}

SearchOptions dna_options() {
  SearchOptions o;  // defaults are blastn-like
  o.filter_low_complexity = false;
  return o;
}

TEST(Search, FindsIdenticalSequence) {
  Rng rng(31);
  std::vector<Sequence> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(random_sequence(rng, "bg" + std::to_string(i), 500, SeqType::Dna));
  }
  db.push_back(random_sequence(rng, "target", 600, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);

  Sequence query;
  query.id = "q";
  query.data.assign(db.back().data.begin() + 100, db.back().data.begin() + 500);

  BlastSearcher searcher(vol, dna_options());
  const auto results = searcher.search({query});
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].hsps.empty());
  const Hsp& top = results[0].hsps.front();
  EXPECT_EQ(top.subject_id, "target");
  EXPECT_EQ(top.s_start, 100u);
  EXPECT_EQ(top.s_end, 500u);
  EXPECT_EQ(top.q_start, 0u);
  EXPECT_EQ(top.q_end, 400u);
  EXPECT_EQ(top.identities, 400u);
  EXPECT_LT(top.evalue, 1e-50);
  EXPECT_FALSE(top.minus_strand);
}

TEST(Search, FindsDivergedHomolog) {
  Rng rng(32);
  std::vector<Sequence> db;
  for (int i = 0; i < 5; ++i) {
    db.push_back(random_sequence(rng, "bg" + std::to_string(i), 800, SeqType::Dna));
  }
  const Sequence parent = random_sequence(rng, "parent", 500, SeqType::Dna);
  db.push_back(mutate(rng, parent, "homolog", 0.10, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);

  Sequence query = parent;
  query.id = "q";
  BlastSearcher searcher(vol, dna_options());
  const auto results = searcher.search({query});
  ASSERT_FALSE(results[0].hsps.empty());
  const Hsp& top = results[0].hsps.front();
  EXPECT_EQ(top.subject_id, "homolog");
  EXPECT_GT(top.identity_fraction(), 0.8);
  EXPECT_LT(top.identity_fraction(), 0.97);
}

TEST(Search, FindsReverseStrandHit) {
  Rng rng(33);
  std::vector<Sequence> db;
  db.push_back(random_sequence(rng, "bg", 600, SeqType::Dna));
  const Sequence target = random_sequence(rng, "fwd", 400, SeqType::Dna);
  db.push_back(target);
  const auto vol = make_volume(db, SeqType::Dna);

  Sequence query;
  query.id = "q_rc";
  query.data = reverse_complement(target.data);

  BlastSearcher searcher(vol, dna_options());
  const auto results = searcher.search({query});
  ASSERT_FALSE(results[0].hsps.empty());
  const Hsp& top = results[0].hsps.front();
  EXPECT_EQ(top.subject_id, "fwd");
  EXPECT_TRUE(top.minus_strand);
  EXPECT_EQ(top.q_start, 0u);
  EXPECT_EQ(top.q_end, 400u);
  EXPECT_EQ(top.identities, 400u);
}

TEST(Search, MinusStrandDisabled) {
  Rng rng(33);
  std::vector<Sequence> db;
  db.push_back(random_sequence(rng, "bg", 600, SeqType::Dna));
  const Sequence target = random_sequence(rng, "fwd", 400, SeqType::Dna);
  db.push_back(target);
  const auto vol = make_volume(db, SeqType::Dna);
  Sequence query;
  query.id = "q_rc";
  query.data = reverse_complement(target.data);
  SearchOptions opts = dna_options();
  opts.both_strands = false;
  // Tiny DB: chance word matches can clear a permissive E-value cutoff, so
  // demand the significance only the true reverse-strand hit would reach.
  opts.evalue_cutoff = 1e-6;
  BlastSearcher searcher(vol, opts);
  const auto results = searcher.search({query});
  EXPECT_TRUE(results[0].hsps.empty());
}

TEST(Search, RandomQueryFindsNothingSignificant) {
  Rng rng(34);
  std::vector<Sequence> db;
  for (int i = 0; i < 10; ++i) {
    db.push_back(random_sequence(rng, "bg" + std::to_string(i), 1000, SeqType::Dna));
  }
  const auto vol = make_volume(db, SeqType::Dna);
  Rng rng2(999);
  const Sequence query = random_sequence(rng2, "noise", 400, SeqType::Dna);
  SearchOptions opts = dna_options();
  opts.evalue_cutoff = 1e-6;
  BlastSearcher searcher(vol, opts);
  const auto results = searcher.search({query});
  EXPECT_TRUE(results[0].hsps.empty());
}

TEST(Search, MaxHitsTruncates) {
  Rng rng(35);
  const Sequence target = random_sequence(rng, "t", 300, SeqType::Dna);
  std::vector<Sequence> db;
  for (int i = 0; i < 8; ++i) {
    db.push_back(mutate(rng, target, "copy" + std::to_string(i), 0.02, SeqType::Dna));
  }
  const auto vol = make_volume(db, SeqType::Dna);
  Sequence query = target;
  query.id = "q";

  SearchOptions opts = dna_options();
  opts.max_hits_per_query = 3;
  BlastSearcher searcher(vol, opts);
  const auto results = searcher.search({query});
  EXPECT_EQ(results[0].hsps.size(), 3u);
  // Sorted by E-value ascending.
  for (std::size_t i = 1; i < results[0].hsps.size(); ++i) {
    EXPECT_LE(results[0].hsps[i - 1].evalue, results[0].hsps[i].evalue);
  }
}

TEST(Search, EffectiveDbLengthRaisesEvalue) {
  Rng rng(36);
  std::vector<Sequence> db;
  db.push_back(random_sequence(rng, "t", 400, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);
  Sequence query;
  query.id = "q";
  query.data.assign(db[0].data.begin(), db[0].data.begin() + 200);

  SearchOptions small = dna_options();
  BlastSearcher s1(vol, small);
  const double ev_small = s1.search({query})[0].hsps.front().evalue;

  SearchOptions big = dna_options();
  big.effective_db_length = 364'000'000'000ULL;  // the paper's 364 Gbp
  big.effective_db_seqs = 62'000'000;
  BlastSearcher s2(vol, big);
  const double ev_big = s2.search({query})[0].hsps.front().evalue;
  EXPECT_GT(ev_big, ev_small * 1e3);
}

TEST(Search, ExcludeSelfHitsDropsParentMatch) {
  Rng rng(37);
  std::vector<Sequence> db;
  db.push_back(random_sequence(rng, "refseq1", 800, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);

  // Shredded fragment of the DB sequence, named as the shredder names it.
  Sequence frag;
  frag.id = "refseq1/100-500";
  frag.data.assign(db[0].data.begin() + 100, db[0].data.begin() + 500);

  SearchOptions opts = dna_options();
  opts.exclude_self_hits = true;
  BlastSearcher searcher(vol, opts);
  EXPECT_TRUE(searcher.search({frag})[0].hsps.empty());

  opts.exclude_self_hits = false;
  BlastSearcher searcher2(vol, opts);
  EXPECT_FALSE(searcher2.search({frag})[0].hsps.empty());
}

TEST(Search, MultipleQueriesKeepOrder) {
  Rng rng(38);
  std::vector<Sequence> db;
  db.push_back(random_sequence(rng, "t1", 400, SeqType::Dna));
  db.push_back(random_sequence(rng, "t2", 400, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);

  Sequence q1;
  q1.id = "q1";
  q1.data.assign(db[0].data.begin(), db[0].data.begin() + 150);
  Sequence q2;
  q2.id = "q2";
  q2.data.assign(db[1].data.begin() + 200, db[1].data.begin() + 380);

  BlastSearcher searcher(vol, dna_options());
  const auto results = searcher.search({q1, q2});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].query_id, "q1");
  EXPECT_EQ(results[0].hsps.front().subject_id, "t1");
  EXPECT_EQ(results[1].query_id, "q2");
  EXPECT_EQ(results[1].hsps.front().subject_id, "t2");
}

TEST(Search, ProteinFindsRemoteHomolog) {
  Rng rng(39);
  std::vector<Sequence> db;
  for (int i = 0; i < 5; ++i) {
    db.push_back(random_sequence(rng, "bg" + std::to_string(i), 400, SeqType::Protein));
  }
  const Sequence parent = random_sequence(rng, "parent", 300, SeqType::Protein);
  db.push_back(mutate(rng, parent, "homolog", 0.3, SeqType::Protein));
  const auto vol = make_volume(db, SeqType::Protein);

  Sequence query = parent;
  query.id = "q";
  SearchOptions opts = make_protein_options();
  opts.filter_low_complexity = false;
  BlastSearcher searcher(vol, opts);
  const auto results = searcher.search({query});
  ASSERT_FALSE(results[0].hsps.empty());
  EXPECT_EQ(results[0].hsps.front().subject_id, "homolog");
  EXPECT_LT(results[0].hsps.front().evalue, 1e-10);
}

TEST(Search, ProteinExactSeedingFindsLessThanNeighbourhood) {
  // The paper notes the FPGA accelerator defaults to exact seed matches
  // only; neighbourhood seeding must find at least as many hits.
  Rng rng(40);
  std::vector<Sequence> db;
  const Sequence parent = random_sequence(rng, "parent", 250, SeqType::Protein);
  db.push_back(mutate(rng, parent, "homolog", 0.35, SeqType::Protein));
  const auto vol = make_volume(db, SeqType::Protein);

  Sequence query = parent;
  query.id = "q";
  SearchOptions nb = make_protein_options();
  nb.filter_low_complexity = false;
  SearchOptions exact = nb;
  exact.threshold = 0;

  BlastSearcher s_nb(vol, nb);
  BlastSearcher s_ex(vol, exact);
  const auto r_nb = s_nb.search({query});
  s_nb.last_stats();
  const auto r_ex = s_ex.search({query});
  EXPECT_GE(r_nb[0].hsps.size(), r_ex[0].hsps.size());
}

TEST(Search, LowComplexityFilterSuppressesRepeatSeeds) {
  // A poly-A query against a poly-A-containing subject explodes without
  // DUST; with DUST the repeat region generates no seeds.
  std::vector<Sequence> db;
  Sequence subj;
  subj.id = "repeat";
  subj.data.assign(500, 0);  // poly-A
  db.push_back(subj);
  const auto vol = make_volume(db, SeqType::Dna);

  Sequence query;
  query.id = "q";
  query.data.assign(300, 0);

  SearchOptions with_filter = dna_options();
  with_filter.filter_low_complexity = true;
  BlastSearcher s1(vol, with_filter);
  EXPECT_TRUE(s1.search({query})[0].hsps.empty());

  SearchOptions no_filter = dna_options();
  no_filter.filter_low_complexity = false;
  BlastSearcher s2(vol, no_filter);
  EXPECT_FALSE(s2.search({query})[0].hsps.empty());
}

TEST(Search, StatsCountersPopulated) {
  Rng rng(41);
  std::vector<Sequence> db{random_sequence(rng, "t", 500, SeqType::Dna)};
  const auto vol = make_volume(db, SeqType::Dna);
  Sequence query;
  query.id = "q";
  query.data.assign(db[0].data.begin(), db[0].data.begin() + 300);
  BlastSearcher searcher(vol, dna_options());
  searcher.search({query});
  const SearchStats& st = searcher.last_stats();
  EXPECT_GT(st.word_hits, 0u);
  EXPECT_GT(st.ungapped_extensions, 0u);
  EXPECT_GT(st.gapped_extensions, 0u);
  EXPECT_EQ(st.hsps_reported, 1u);
}

TEST(Search, DeterministicAcrossRuns) {
  Rng rng(42);
  std::vector<Sequence> db;
  const Sequence parent = random_sequence(rng, "p", 600, SeqType::Dna);
  db.push_back(mutate(rng, parent, "h1", 0.1, SeqType::Dna));
  db.push_back(mutate(rng, parent, "h2", 0.15, SeqType::Dna));
  const auto vol = make_volume(db, SeqType::Dna);
  Sequence query = parent;
  query.id = "q";

  BlastSearcher searcher(vol, dna_options());
  const auto r1 = searcher.search({query});
  const auto r2 = searcher.search({query});
  ASSERT_EQ(r1[0].hsps.size(), r2[0].hsps.size());
  for (std::size_t i = 0; i < r1[0].hsps.size(); ++i) {
    EXPECT_EQ(r1[0].hsps[i].subject_id, r2[0].hsps[i].subject_id);
    EXPECT_EQ(r1[0].hsps[i].raw_score, r2[0].hsps[i].raw_score);
    EXPECT_DOUBLE_EQ(r1[0].hsps[i].evalue, r2[0].hsps[i].evalue);
  }
}

TEST(Search, MismatchedDbTypeRejected) {
  Rng rng(43);
  const auto vol = make_volume({random_sequence(rng, "t", 100, SeqType::Dna)}, SeqType::Dna);
  EXPECT_THROW(BlastSearcher(vol, make_protein_options()), InputError);
}

TEST(Search, EmptyQueryBlockOk) {
  Rng rng(44);
  const auto vol = make_volume({random_sequence(rng, "t", 100, SeqType::Dna)}, SeqType::Dna);
  BlastSearcher searcher(vol, dna_options());
  EXPECT_TRUE(searcher.search({}).empty());
}

TEST(Search, QueryShorterThanWordFindsNothing) {
  Rng rng(45);
  const auto vol = make_volume({random_sequence(rng, "t", 200, SeqType::Dna)}, SeqType::Dna);
  Sequence tiny;
  tiny.id = "tiny";
  tiny.data.assign(vol->seq(0).data.begin(), vol->seq(0).data.begin() + 6);
  BlastSearcher searcher(vol, dna_options());  // word size 11 > 6
  EXPECT_TRUE(searcher.search({tiny})[0].hsps.empty());
}

}  // namespace
}  // namespace mrbio::blast
