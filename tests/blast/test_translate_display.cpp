// Tests for genetic-code translation, blastx search, and the pairwise
// alignment display.
#include <gtest/gtest.h>

#include <filesystem>

#include "blast/display.hpp"
#include "blast/translate.hpp"
#include "common/error.hpp"
#include <unistd.h>

namespace mrbio::blast {
namespace {

std::string translate_str(const std::string& dna, int frame) {
  return decode_protein(translate(encode_dna(dna), frame));
}

TEST(Translate, KnownCodons) {
  EXPECT_EQ(translate_str("ATG", 0), "M");
  EXPECT_EQ(translate_str("TGG", 0), "W");
  EXPECT_EQ(translate_str("AAA", 0), "K");
  EXPECT_EQ(translate_str("GGG", 0), "G");
  EXPECT_EQ(translate_str("TTT", 0), "F");
  EXPECT_EQ(translate_str("GCA", 0), "A");
  EXPECT_EQ(translate_str("CGC", 0), "R");
}

TEST(Translate, StopCodonsBecomeAmbig) {
  for (const char* stop : {"TAA", "TAG", "TGA"}) {
    const auto prot = translate(encode_dna(stop), 0);
    ASSERT_EQ(prot.size(), 1u);
    EXPECT_EQ(prot[0], kProtAmbig) << stop;
  }
}

TEST(Translate, MultiCodonOrf) {
  // ATG AAA TGG TAA -> M K W *
  EXPECT_EQ(translate_str("ATGAAATGGTAA", 0), "MKWX");
}

TEST(Translate, FramesShiftTheReadingWindow) {
  const std::string dna = "CATGAAATGG";
  EXPECT_EQ(translate_str(dna, 0), translate_str("CATGAAATG", 0));  // CAT GAA ATG
  EXPECT_EQ(translate_str(dna, 1), "MKW");                          // ATG AAA TGG
  EXPECT_EQ(translate_str(dna, 2), translate_str("TGAAATGG", 0));   // TGA AAT (GG dropped)
}

TEST(Translate, ReverseFramesUseReverseComplement) {
  // revcomp(CCATTTCATG) = CATGAAATGG; frame -1 = frames 3..5 on that.
  const std::string dna = "CCATTTCATG";
  EXPECT_EQ(translate_str(dna, 3), translate_str("CATGAAATGG", 0));
  EXPECT_EQ(translate_str(dna, 4), translate_str("CATGAAATGG", 1));
}

TEST(Translate, AmbiguousCodonsBecomeAmbig) {
  const auto prot = translate(encode_dna("ATNAAA"), 0);
  ASSERT_EQ(prot.size(), 2u);
  EXPECT_EQ(prot[0], kProtAmbig);
  EXPECT_EQ(decode_protein({&prot[1], 1}), "K");
}

TEST(Translate, ShortInputsGiveEmpty) {
  EXPECT_TRUE(translate(encode_dna("AT"), 0).empty());
  EXPECT_TRUE(translate(encode_dna("ATGC"), 2).empty());
}

TEST(Translate, FrameLabels) {
  EXPECT_EQ(frame_label(0), 1);
  EXPECT_EQ(frame_label(2), 3);
  EXPECT_EQ(frame_label(3), -1);
  EXPECT_EQ(frame_label(5), -3);
  EXPECT_THROW(frame_label(6), InputError);
}

class BlastxTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / ("mrbio_blastx_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    // A protein database containing the translation of a known ORF.
    Rng rng(70);
    protein_ = random_sequence(rng, "target_protein", 150, SeqType::Protein);
    std::vector<Sequence> db{protein_};
    for (int i = 0; i < 4; ++i) {
      db.push_back(random_sequence(rng, "bg" + std::to_string(i), 200, SeqType::Protein));
    }
    const DbInfo info = build_db(db, (dir_ / "pdb").string(), SeqType::Protein, 1ull << 30);
    volume_ = std::make_shared<DbVolume>(DbVolume::load(info.volume_paths[0]));
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  /// Back-translates protein codes to one valid DNA coding sequence.
  static std::string back_translate(std::span<const std::uint8_t> prot) {
    // Any codon per residue will do; search the code table via translate().
    static const char* bases = "ACGT";
    std::string dna;
    for (const std::uint8_t aa : prot) {
      bool found = false;
      for (int a = 0; a < 4 && !found; ++a) {
        for (int b = 0; b < 4 && !found; ++b) {
          for (int c = 0; c < 4 && !found; ++c) {
            const std::string codon{bases[a], bases[b], bases[c]};
            const auto t = translate(encode_dna(codon), 0);
            if (t.size() == 1 && t[0] == aa) {
              dna += codon;
              found = true;
            }
          }
        }
      }
      MRBIO_CHECK(found, "no codon for residue");
    }
    return dna;
  }

  std::filesystem::path dir_;
  Sequence protein_;
  std::shared_ptr<const DbVolume> volume_;
};

TEST_F(BlastxTest, FindsOrfOnPlusStrand) {
  // DNA query: junk + coding sequence of residues 20..120 + junk.
  const std::string cds =
      back_translate(std::span(protein_.data).subspan(20, 100));
  Sequence dna;
  dna.id = "read_plus";
  dna.data = encode_dna("ACGTACGTAC" + cds + "GTACGTA");

  SearchOptions opts = make_protein_options();
  opts.filter_low_complexity = false;
  opts.evalue_cutoff = 1e-6;
  const auto results = blastx_search(volume_, {dna}, opts);
  ASSERT_EQ(results.size(), 1u);
  ASSERT_FALSE(results[0].hsps.empty());
  const BlastxHsp& top = results[0].hsps.front();
  EXPECT_EQ(top.protein.subject_id, "target_protein");
  EXPECT_EQ(top.frame, 1 + 10 % 3);  // 10 junk bases -> frame +2
  // The local alignment covers the planted region and may extend a few
  // chance-matching residues beyond it.
  EXPECT_LE(top.protein.s_start, 20u);
  EXPECT_GE(top.protein.s_end, 120u);
  EXPECT_LE(top.q_dna_start, 10u);
  EXPECT_GE(top.q_dna_end, 10u + 300u);
  EXPECT_LE(top.q_dna_end, dna.length());
}

TEST_F(BlastxTest, FindsOrfOnMinusStrand) {
  const std::string cds =
      back_translate(std::span(protein_.data).subspan(30, 80));
  Sequence dna;
  dna.id = "read_minus";
  dna.data = reverse_complement(encode_dna(cds));

  SearchOptions opts = make_protein_options();
  opts.filter_low_complexity = false;
  opts.evalue_cutoff = 1e-6;
  const auto results = blastx_search(volume_, {dna}, opts);
  ASSERT_FALSE(results[0].hsps.empty());
  const BlastxHsp& top = results[0].hsps.front();
  EXPECT_EQ(top.protein.subject_id, "target_protein");
  EXPECT_LT(top.frame, 0);
  EXPECT_LE(top.q_dna_start, 3u);
  EXPECT_GE(top.q_dna_end, dna.length() - 3);
}

TEST_F(BlastxTest, RandomDnaFindsNothing) {
  Rng rng(71);
  const Sequence noise = random_sequence(rng, "noise", 300, SeqType::Dna);
  SearchOptions opts = make_protein_options();
  opts.filter_low_complexity = false;
  opts.evalue_cutoff = 1e-6;
  const auto results = blastx_search(volume_, {noise}, opts);
  EXPECT_TRUE(results[0].hsps.empty());
}

TEST_F(BlastxTest, DnaOptionsRejected) {
  EXPECT_THROW(blastx_search(volume_, {}, SearchOptions{}), InputError);
}

// ---- pairwise display ----

class DisplayTest : public ::testing::Test {
 protected:
  static Hsp search_one(const std::vector<Sequence>& db, const Sequence& query,
                        SeqType type, Sequence* subject_out) {
    static int counter = 0;
    const auto dir = std::filesystem::temp_directory_path() /
                     ("mrbio_display_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir);
    const DbInfo info = build_db(db, (dir / ("d" + std::to_string(counter++))).string(),
                                 type, 1ull << 30);
    auto vol = std::make_shared<DbVolume>(DbVolume::load(info.volume_paths[0]));
    SearchOptions opts = type == SeqType::Dna ? SearchOptions{} : make_protein_options();
    opts.filter_low_complexity = false;
    BlastSearcher searcher(vol, opts);
    const auto results = searcher.search({query});
    EXPECT_FALSE(results[0].hsps.empty());
    *subject_out = db[0];
    for (const auto& s : db) {
      if (s.id == results[0].hsps.front().subject_id) *subject_out = s;
    }
    return results[0].hsps.front();
  }
};

TEST_F(DisplayTest, PerfectDnaMatchShowsAllBars) {
  Rng rng(72);
  const Sequence target = random_sequence(rng, "t", 100, SeqType::Dna);
  Sequence query;
  query.id = "q";
  query.data = target.data;
  Sequence subject;
  const Hsp hsp = search_one({target}, query, SeqType::Dna, &subject);

  const std::string text =
      render_pairwise(query, subject, hsp, Scorer::dna(), /*width=*/50);
  EXPECT_NE(text.find("Query  1"), std::string::npos);
  EXPECT_NE(text.find("Sbjct  1"), std::string::npos);
  // 100 identities -> 100 '|' characters.
  std::size_t bars = 0;
  for (const char c : text) bars += (c == '|') ? 1 : 0;
  EXPECT_EQ(bars, 100u);
  EXPECT_EQ(text.find('-'), std::string::npos);
}

TEST_F(DisplayTest, GappedAlignmentShowsDashes) {
  Rng rng(73);
  const Sequence target = random_sequence(rng, "t", 120, SeqType::Dna);
  Sequence query;
  query.id = "q";
  query.data = target.data;
  // Delete 3 bases from the middle of the query.
  query.data.erase(query.data.begin() + 60, query.data.begin() + 63);
  Sequence subject;
  const Hsp hsp = search_one({target}, query, SeqType::Dna, &subject);
  ASSERT_GT(hsp.gaps, 0u);

  const std::string text = render_pairwise(query, subject, hsp, Scorer::dna());
  EXPECT_NE(text.find('-'), std::string::npos);
}

TEST_F(DisplayTest, MinusStrandCoordinatesRunBackwards) {
  Rng rng(74);
  const Sequence target = random_sequence(rng, "t", 80, SeqType::Dna);
  Sequence query;
  query.id = "q";
  query.data = reverse_complement(target.data);
  Sequence subject;
  const Hsp hsp = search_one({target}, query, SeqType::Dna, &subject);
  ASSERT_TRUE(hsp.minus_strand);

  const std::string text = render_pairwise(query, subject, hsp, Scorer::dna(), 200);
  // First query label is the high coordinate (80), i.e. reversed.
  EXPECT_NE(text.find("Query  80"), std::string::npos);
}

TEST_F(DisplayTest, ProteinMatchLineUsesLettersAndPlus) {
  Rng rng(75);
  const Sequence target = random_sequence(rng, "t", 90, SeqType::Protein);
  Sequence query;
  query.id = "q";
  query.data = target.data;
  Rng mrng(76);
  query = mutate(mrng, query, "q", 0.2, SeqType::Protein);
  Sequence subject;
  const Hsp hsp = search_one({target}, query, SeqType::Protein, &subject);

  const std::string text =
      render_pairwise(query, subject, hsp, Scorer::blosum62(), 200);
  // Identity columns echo the residue letter; there are many of them.
  const std::string header = render_hsp_header(hsp, SeqType::Protein);
  EXPECT_NE(header.find("Identities ="), std::string::npos);
  EXPECT_EQ(header.find("Strand"), std::string::npos);  // protein: no strand line
  EXPECT_NE(text.find("Query  1"), std::string::npos);
}

TEST_F(DisplayTest, HeaderFormatsScores) {
  Hsp h;
  h.bit_score = 98.7;
  h.raw_score = 200;
  h.evalue = 1e-30;
  h.identities = 95;
  h.align_len = 100;
  h.gaps = 2;
  h.minus_strand = true;
  const std::string header = render_hsp_header(h, SeqType::Dna);
  EXPECT_NE(header.find("Score = 98.7 bits (200)"), std::string::npos);
  EXPECT_NE(header.find("Identities = 95/100 (95%)"), std::string::npos);
  EXPECT_NE(header.find("Strand = Plus/Minus"), std::string::npos);
}

}  // namespace
}  // namespace mrbio::blast
