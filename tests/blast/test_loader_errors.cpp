// Loader robustness: malformed FASTA and DB inputs must fail with
// InputError messages that name the file (and, for FASTA, the line; for
// DB volumes, the byte offset and record) — never crash or silently
// return wrong data. Static fuzz fixtures live in tests/blast/data/.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "blast/dbformat.hpp"
#include "blast/fasta_index.hpp"
#include "blast/sequence.hpp"
#include "common/error.hpp"
#include <unistd.h>

namespace mrbio::blast {
namespace {

std::string fixture(const std::string& name) {
  return std::string(MRBIO_BLAST_DATA_DIR) + "/" + name;
}

// Runs `fn`, requires it to throw InputError, and returns the message.
template <typename Fn>
std::string input_error_of(Fn&& fn) {
  try {
    fn();
  } catch (const InputError& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "threw non-InputError: " << e.what();
    return {};
  }
  ADD_FAILURE() << "did not throw";
  return {};
}

class TempDir {
 public:
  TempDir() {
    static int counter = 0;
    path_ = std::filesystem::temp_directory_path() /
            ("mrbio_loader_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++));
    std::filesystem::remove_all(path_);
    std::filesystem::create_directories(path_);
  }
  ~TempDir() { std::filesystem::remove_all(path_); }
  std::string file(const std::string& name) const { return (path_ / name).string(); }

 private:
  std::filesystem::path path_;
};

TEST(LoaderErrors, ParseFastaEmptyIdNamesOriginAndLine) {
  const std::string msg =
      input_error_of([] { parse_fasta("> no id here\nACGT\n", SeqType::Dna); });
  EXPECT_NE(msg.find("<memory>:1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("empty id"), std::string::npos) << msg;
}

TEST(LoaderErrors, ParseFastaResiduesBeforeDeflineNamesLine) {
  const std::string msg =
      input_error_of([] { parse_fasta("\nACGT\n", SeqType::Dna); });
  EXPECT_NE(msg.find("<memory>:2"), std::string::npos) << msg;
  EXPECT_NE(msg.find("before any '>'"), std::string::npos) << msg;
}

TEST(LoaderErrors, ReadFastaFileMissingNamesPath) {
  const std::string msg = input_error_of(
      [] { read_fasta_file("/nonexistent/q.fa", SeqType::Dna); });
  EXPECT_NE(msg.find("/nonexistent/q.fa"), std::string::npos) << msg;
}

TEST(LoaderErrors, ReadFastaFileEmptyIsZeroRecords) {
  EXPECT_TRUE(read_fasta_file(fixture("empty.fa"), SeqType::Dna).empty());
}

TEST(LoaderErrors, ReadFastaFileBinaryGarbageNamesPathAndLine) {
  const std::string msg = input_error_of(
      [] { read_fasta_file(fixture("notfasta.bin"), SeqType::Dna); });
  EXPECT_NE(msg.find("notfasta.bin:1"), std::string::npos) << msg;
  EXPECT_NE(msg.find("not a FASTA file?"), std::string::npos) << msg;
}

TEST(LoaderErrors, ReadFastaFileEmptyIdNamesPathAndLine) {
  const std::string msg = input_error_of(
      [] { read_fasta_file(fixture("empty_id.fa"), SeqType::Dna); });
  EXPECT_NE(msg.find("empty_id.fa:3"), std::string::npos) << msg;
}

TEST(LoaderErrors, ResiduesFirstFixtureRejectedByParserAndIndex) {
  EXPECT_THROW(read_fasta_file(fixture("residues_first.fa"), SeqType::Dna),
               InputError);
  EXPECT_THROW(FastaIndex(fixture("residues_first.fa"), SeqType::Dna), InputError);
}

TEST(LoaderErrors, FastaIndexEmptyFileHasZeroRecords) {
  const FastaIndex idx(fixture("empty.fa"), SeqType::Dna);
  EXPECT_EQ(idx.num_records(), 0u);
  EXPECT_TRUE(idx.read_range(0, 10).empty());
}

TEST(LoaderErrors, FastaIndexMissingFileNamesPath) {
  const std::string msg = input_error_of(
      [] { FastaIndex("/nonexistent/q.fa", SeqType::Dna); });
  EXPECT_NE(msg.find("/nonexistent/q.fa"), std::string::npos) << msg;
}

TEST(LoaderErrors, FastaIndexCrlfNoTrailingNewline) {
  // CRLF line endings and a final record with no trailing newline: the
  // index must place offsets on the original bytes and read_range must
  // tolerate the one-byte-short final chunk.
  const FastaIndex idx(fixture("crlf_no_trailing_newline.fa"), SeqType::Dna);
  ASSERT_EQ(idx.num_records(), 2u);
  const auto all = idx.read_range(0, 2);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].id, "r1");
  EXPECT_EQ(all[0].length(), 6u);
  EXPECT_EQ(all[1].id, "r2");
  EXPECT_EQ(all[1].length(), 4u);
  // Random access to just the last record crosses the short-read path.
  const auto tail = idx.read_range(1, 1);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].id, "r2");
  EXPECT_EQ(tail[0].length(), 4u);
}

TEST(LoaderErrors, DbVolumeLoadGarbageIsNotAVolume) {
  const std::string msg = input_error_of(
      [] { DbVolume::load(fixture("notfasta.bin")); });
  EXPECT_NE(msg.find("not a mrbio DB volume"), std::string::npos) << msg;
  EXPECT_NE(msg.find("notfasta.bin"), std::string::npos) << msg;
}

TEST(LoaderErrors, DbVolumeLoadEmptyFileIsNotAVolume) {
  EXPECT_THROW(DbVolume::load(fixture("empty.fa")), InputError);
}

TEST(LoaderErrors, DbVolumeTruncationNamesPathOffsetAndRecord) {
  TempDir tmp;
  std::vector<Sequence> seqs;
  for (int i = 0; i < 4; ++i) {
    Sequence s;
    s.id = "s" + std::to_string(i);
    s.data.assign(100, static_cast<std::uint8_t>(i % 4));
    seqs.push_back(std::move(s));
  }
  const DbInfo info = build_db(seqs, tmp.file("db"), SeqType::Dna, 1'000'000);
  ASSERT_EQ(info.volume_paths.size(), 1u);
  const std::string vol = info.volume_paths[0];
  ASSERT_NO_THROW(DbVolume::load(vol));

  const auto full = std::filesystem::file_size(vol);
  std::filesystem::resize_file(vol, full - 60);
  const std::string msg = input_error_of([&] { DbVolume::load(vol); });
  EXPECT_NE(msg.find("corrupt DB volume"), std::string::npos) << msg;
  EXPECT_NE(msg.find(vol), std::string::npos) << msg;
  EXPECT_NE(msg.find("byte offset"), std::string::npos) << msg;
  EXPECT_NE(msg.find("record"), std::string::npos) << msg;
}

TEST(LoaderErrors, DbVolumeImplausibleCountRejectedWithoutAllocating) {
  TempDir tmp;
  Sequence s;
  s.id = "x";
  s.data.assign(16, 1);
  const DbInfo info = build_db({s}, tmp.file("db"), SeqType::Dna, 1'000'000);
  const std::string vol = info.volume_paths[0];
  // Overwrite the sequence-count field (bytes [9, 17): magic u64 + type
  // u8) with an absurd value; load must reject it up front instead of
  // reserving petabytes.
  std::fstream f(vol, std::ios::in | std::ios::out | std::ios::binary);
  f.seekp(9);
  const std::uint64_t huge = ~0ULL;
  f.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  f.close();
  const std::string msg = input_error_of([&] { DbVolume::load(vol); });
  EXPECT_NE(msg.find("implausible sequence count"), std::string::npos) << msg;
}

TEST(LoaderErrors, ReadDbInfoGarbageAndTruncationNamePath) {
  const std::string msg = input_error_of(
      [] { read_db_info(fixture("notfasta.bin")); });
  EXPECT_NE(msg.find("not a mrbio DB alias"), std::string::npos) << msg;

  TempDir tmp;
  Sequence s;
  s.id = "x";
  s.data.assign(16, 1);
  build_db({s}, tmp.file("db"), SeqType::Dna, 1'000'000);
  const std::string alias = tmp.file("db.mal");
  ASSERT_NO_THROW(read_db_info(alias));
  std::filesystem::resize_file(alias, std::filesystem::file_size(alias) - 5);
  const std::string msg2 = input_error_of([&] { read_db_info(alias); });
  EXPECT_NE(msg2.find(alias), std::string::npos) << msg2;
  EXPECT_NE(msg2.find("byte offset"), std::string::npos) << msg2;
}

}  // namespace
}  // namespace mrbio::blast
