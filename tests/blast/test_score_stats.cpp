// Tests for scoring systems and Karlin-Altschul statistics. The statistics
// tests pin computed parameters against NCBI's published tables, which is
// the strongest external validation available for this module.
#include <gtest/gtest.h>

#include <cmath>

#include "blast/score.hpp"
#include "blast/stats.hpp"
#include "common/error.hpp"

namespace mrbio::blast {
namespace {

TEST(Scorer, DnaMatchMismatch) {
  const Scorer s = Scorer::dna(2, -3);
  const auto a = encode_dna("A")[0];
  const auto c = encode_dna("C")[0];
  EXPECT_EQ(s.score(a, a), 2);
  EXPECT_EQ(s.score(a, c), -3);
  EXPECT_EQ(s.score(c, c), 2);
  EXPECT_EQ(s.max_score(), 2);
}

TEST(Scorer, DnaAmbiguityScoresAsMismatch) {
  const Scorer s = Scorer::dna(1, -2);
  EXPECT_EQ(s.score(kDnaAmbig, 0), -2);
  EXPECT_EQ(s.score(0, kDnaAmbig), -2);
  EXPECT_EQ(s.score(kDnaAmbig, kDnaAmbig), -2);
}

TEST(Scorer, SentinelStopsEverything) {
  const Scorer dna = Scorer::dna();
  const Scorer prot = Scorer::blosum62();
  EXPECT_EQ(dna.score(kSentinel, 0), kSentinelScore);
  EXPECT_EQ(dna.score(0, kSentinel), kSentinelScore);
  EXPECT_EQ(prot.score(kSentinel, 5), kSentinelScore);
  EXPECT_EQ(prot.score(kSentinel, kSentinel), kSentinelScore);
}

TEST(Scorer, Blosum62KnownEntries) {
  const auto code = [](char c) { return encode_protein(std::string(1, c))[0]; };
  // Spot checks against the published matrix.
  EXPECT_EQ(blosum62_score(code('W'), code('W')), 11);
  EXPECT_EQ(blosum62_score(code('A'), code('A')), 4);
  EXPECT_EQ(blosum62_score(code('W'), code('C')), -2);
  EXPECT_EQ(blosum62_score(code('E'), code('D')), 2);
  EXPECT_EQ(blosum62_score(code('L'), code('I')), 2);
  EXPECT_EQ(blosum62_score(code('P'), code('F')), -4);
  EXPECT_EQ(blosum62_score(code('R'), code('K')), 2);
}

TEST(Scorer, Blosum62IsSymmetric) {
  for (std::uint8_t a = 0; a < kProtAlphabet; ++a) {
    for (std::uint8_t b = 0; b < kProtAlphabet; ++b) {
      EXPECT_EQ(blosum62_score(a, b), blosum62_score(b, a));
    }
  }
}

TEST(Scorer, Blosum62XConvention) {
  const Scorer s = Scorer::blosum62();
  EXPECT_EQ(s.score(kProtAmbig, 3), -1);
  EXPECT_EQ(s.score(3, kProtAmbig), -1);
}

TEST(Scorer, InvalidParametersRejected) {
  EXPECT_THROW(Scorer::dna(0, -2), InputError);
  EXPECT_THROW(Scorer::dna(1, 2), InputError);
  EXPECT_THROW(Scorer::dna(1, -2, 5, 0), InputError);
  EXPECT_THROW(Scorer::blosum62(11, 0), InputError);
}

// ---- Karlin-Altschul ----

TEST(KarlinStats, Blastn1m1HasClosedForm) {
  // Uniform background, +1/-1: lambda = ln 3 exactly.
  const auto p = karlin_ungapped(Scorer::dna(1, -1));
  EXPECT_NEAR(p.lambda, std::log(3.0), 1e-6);
}

TEST(KarlinStats, Blastn2m3MatchesNcbiTable) {
  // NCBI published: lambda 0.634, K 0.408, H 0.912.
  const auto p = karlin_ungapped(Scorer::dna(2, -3));
  EXPECT_NEAR(p.lambda, 0.634, 0.002);
  EXPECT_NEAR(p.K, 0.408, 0.004);
  EXPECT_NEAR(p.H, 0.912, 0.002);
}

TEST(KarlinStats, Blastn1m2MatchesNcbiTable) {
  // NCBI published ungapped: lambda 1.33, K 0.621.
  const auto p = karlin_ungapped(Scorer::dna(1, -2));
  EXPECT_NEAR(p.lambda, 1.33, 0.005);
  EXPECT_NEAR(p.K, 0.621, 0.005);
}

TEST(KarlinStats, Blosum62UngappedMatchesNcbiTable) {
  // NCBI published: lambda 0.3176, K 0.134, H 0.4012.
  const auto p = karlin_ungapped(Scorer::blosum62());
  EXPECT_NEAR(p.lambda, 0.3176, 0.002);
  EXPECT_NEAR(p.K, 0.134, 0.002);
  EXPECT_NEAR(p.H, 0.4012, 0.005);
}

TEST(KarlinStats, GappedBlosum62UsesPublishedTable) {
  const auto p = karlin_gapped(Scorer::blosum62(11, 1));
  EXPECT_DOUBLE_EQ(p.lambda, 0.267);
  EXPECT_DOUBLE_EQ(p.K, 0.041);
}

TEST(KarlinStats, GappedDnaFallsBackToUngapped) {
  const auto gapped = karlin_gapped(Scorer::dna(2, -3));
  const auto ungapped = karlin_ungapped(Scorer::dna(2, -3));
  EXPECT_DOUBLE_EQ(gapped.lambda, ungapped.lambda);
  EXPECT_DOUBLE_EQ(gapped.K, ungapped.K);
}

TEST(KarlinStats, BitScoreAndEvalueConsistency) {
  const auto p = karlin_ungapped(Scorer::dna(1, -2));
  const double bits = bit_score(30, p);
  EXPECT_GT(bits, 0.0);
  // E = m n 2^-bits must equal the direct formula.
  const double e1 = evalue(30, 1000.0, 1e6, p);
  const double e2 = 1000.0 * 1e6 * std::pow(2.0, -bits);
  EXPECT_NEAR(e1 / e2, 1.0, 1e-9);
}

TEST(KarlinStats, EvalueDecreasesWithScore) {
  const auto p = karlin_ungapped(Scorer::blosum62());
  EXPECT_GT(evalue(20, 100, 1e6, p), evalue(40, 100, 1e6, p));
}

TEST(KarlinStats, EvalueScalesLinearlyWithSearchSpace) {
  const auto p = karlin_ungapped(Scorer::dna(2, -3));
  const double e1 = evalue(50, 100, 1e6, p);
  const double e2 = evalue(50, 100, 2e6, p);
  EXPECT_NEAR(e2 / e1, 2.0, 1e-9);
}

TEST(KarlinStats, CutoffScoreInvertsEvalue) {
  const auto p = karlin_ungapped(Scorer::dna(2, -3));
  const int s = cutoff_score(1e-5, 400.0, 3.64e11, p);
  EXPECT_LE(evalue(s, 400.0, 3.64e11, p), 1e-5);
  EXPECT_GT(evalue(s - 1, 400.0, 3.64e11, p), 1e-5);
}

TEST(KarlinStats, LengthAdjustmentReasonable) {
  const auto p = karlin_ungapped(Scorer::blosum62());
  // A 300-residue query against a UniRef-scale database loses some tens of
  // residues of effective length.
  const auto ell = length_adjustment(p, 300, 4'000'000'000ULL, 10'000'000);
  EXPECT_GT(ell, 20u);
  EXPECT_LT(ell, 200u);
  const auto space = effective_search_space(p, 300, 4'000'000'000ULL, 10'000'000);
  EXPECT_LT(space.m_eff, 300.0);
  EXPECT_GT(space.m_eff, 100.0);
}

TEST(KarlinStats, LengthAdjustmentNeverExceedsQuery) {
  const auto p = karlin_ungapped(Scorer::dna(2, -3));
  const auto space = effective_search_space(p, 20, 1'000'000'000ULL, 1000);
  EXPECT_GE(space.m_eff, 1.0);
  EXPECT_GE(space.n_eff, 1.0);
}

TEST(KarlinStats, PositiveExpectationRejected) {
  // match +2 / mismatch -0.?? not possible; use +2/-1 with uniform DNA:
  // E[s] = 0.25*2 + 0.75*(-1) = -0.25 < 0, fine. Make it positive: +4/-1.
  // E[s] = 0.25*4 - 0.75 = +0.25.
  EXPECT_THROW(karlin_ungapped(Scorer::dna(4, -1)), InputError);
}

}  // namespace
}  // namespace mrbio::blast
