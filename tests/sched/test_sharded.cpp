// Sharded-ledger specifics of the fault-tolerant steal scheduler: ledger
// failover when a shard owner — including rank 0 — crashes permanently
// mid-map, exactly-once output across ledger_ranks shapes and heartbeat
// eviction, and checkpoint integration (a full run journals every commit
// per shard; corrupting exactly one shard's journal re-executes only that
// shard's task range on resume).
#include <gtest/gtest.h>

#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "ckpt/ckpt.hpp"
#include "common/error.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"
#include "sched/internal.hpp"
#include "sched/sched.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

struct ShardedRun {
  std::multiset<std::uint64_t> emitted;   ///< tasks present in the final kv
  std::multiset<std::uint64_t> executed;  ///< every map-fn invocation
  std::map<int, std::uint64_t> emitted_by_rank;
  std::vector<std::uint64_t> failed;
  MapReduceStats stats;  ///< summed across all ranks
};

/// Runs `ntasks` self-emitting tasks on `n` ranks under the sharded steal
/// ledger (steal + ft.enabled), with full control of the FtConfig and an
/// optional checkpointer.
ShardedRun run_sharded(int n, std::uint64_t ntasks, const std::string& plan,
                       const sched::FtConfig& ft,
                       ckpt::Checkpointer* checkpointer = nullptr,
                       double task_cost = 0.01) {
  fault::Injector injector(fault::FaultPlan::parse(plan));
  injector.plan().validate(n, /*checkpointing=*/checkpointer != nullptr,
                           /*master_failover=*/true);
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  if (!plan.empty()) ec.injector = &injector;
  sim::Engine engine(ec);

  MapReduceConfig cfg;
  cfg.scheduler = sched::Policy::Steal;
  cfg.ft = ft;
  cfg.ft.enabled = true;
  cfg.checkpointer = checkpointer;

  ShardedRun out;
  std::mutex mu;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    mr.map(ntasks, [&](std::uint64_t t, KeyValue& kv) {
      {
        std::lock_guard<std::mutex> lock(mu);
        out.executed.insert(t);
      }
      if (task_cost > 0.0) comm.compute(task_cost);
      kv.add("task", std::to_string(t));
    });
    std::lock_guard<std::mutex> lock(mu);
    mr.kv().for_each([&](const KvPair& pair) {
      const std::string v(reinterpret_cast<const char*>(pair.value.data()),
                          pair.value.size());
      out.emitted.insert(std::stoull(v));
      out.emitted_by_rank[comm.rank()]++;
    });
    const MapReduceStats& s = mr.stats();
    out.stats.tasks_retried += s.tasks_retried;
    out.stats.worker_deaths += s.worker_deaths;
    out.stats.tasks_failed += s.tasks_failed;
    const std::vector<std::uint64_t> f = mr.failed_tasks();
    out.failed.insert(out.failed.end(), f.begin(), f.end());
  });
  return out;
}

void expect_exactly_once(const ShardedRun& run, std::uint64_t ntasks) {
  EXPECT_EQ(run.emitted.size(), ntasks);
  for (std::uint64_t t = 0; t < ntasks; ++t) {
    EXPECT_EQ(run.emitted.count(t), 1u) << "task " << t;
  }
  EXPECT_TRUE(run.failed.empty());
}

// ---------------------------------------------------------------------------
// Ledger failover

TEST(Sharded, Rank0PermanentCrashFailsOverToSuccessor) {
  // Rank 0 owns the first ledger shard; its permanent death mid-map must
  // hand the shard to a deterministic successor that replays the commits
  // and keeps granting — every task still lands exactly once.
  sched::FtConfig ft;
  const ShardedRun run =
      run_sharded(4, 24, "crash:rank=0,t=0.05,mode=permanent", ft);
  expect_exactly_once(run, 24);
  EXPECT_GE(run.stats.worker_deaths, 1u);
  EXPECT_EQ(run.emitted_by_rank.count(0), 0u) << "a dead rank kept its kv";
}

TEST(Sharded, EveryRankCrashTargetFailsOver) {
  // No rank is special: the ledger protocol survives the permanent loss
  // of any single rank, not just the traditional master.
  for (int victim = 0; victim < 4; ++victim) {
    sched::FtConfig ft;
    const ShardedRun run = run_sharded(
        4, 24, "crash:rank=" + std::to_string(victim) + ",t=0.03,mode=permanent",
        ft);
    expect_exactly_once(run, 24);
    EXPECT_GE(run.stats.worker_deaths, 1u) << "victim " << victim;
  }
}

TEST(Sharded, LedgerRanksShapesSurviveACrash) {
  // ledger_ranks sweeps the custody spectrum: 1 = single coordinator,
  // P = fully decentralized, values between split custody. All shapes
  // must deliver exactly-once under the same mid-map crash.
  for (const int shards : {1, 2, 3, 0 /* = every rank */}) {
    sched::FtConfig ft;
    ft.ledger_ranks = shards;
    const ShardedRun run =
        run_sharded(4, 22, "crash:rank=2,t=0.05,mode=permanent", ft);
    expect_exactly_once(run, 22);
    EXPECT_GE(run.stats.worker_deaths, 1u) << "ledger_ranks " << shards;
  }
}

TEST(Sharded, HeartbeatEvictionKeepsExactlyOnce) {
  // With the phi-accrual detector on, a permanently dead rank is evicted
  // on suspicion (ahead of its task deadlines); eviction must never break
  // exactly-once or strand the dead rank's seeded range.
  sched::FtConfig ft;
  ft.heartbeat = fault::HeartbeatConfig::parse("interval=0.05,phi=4,samples=3");
  const ShardedRun run =
      run_sharded(4, 24, "crash:rank=1,t=0.06,mode=permanent", ft);
  expect_exactly_once(run, 24);
  EXPECT_GE(run.stats.worker_deaths, 1u);
}

TEST(Sharded, AdaptiveTimeoutRecoversACrash) {
  // task_timeout <= 0 selects the adaptive deadline (4 x observed p99);
  // recovery must still work when no explicit timeout was configured.
  sched::FtConfig ft;
  ft.task_timeout = 0.0;
  const ShardedRun run =
      run_sharded(4, 24, "crash:rank=3,t=0.05,mode=permanent", ft);
  expect_exactly_once(run, 24);
  EXPECT_GE(run.stats.worker_deaths, 1u);
}

// ---------------------------------------------------------------------------
// Shard journals under checkpointing

class ShardedCkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_sharded_" + std::to_string(::getpid()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(ShardedCkptTest, CorruptingOneShardJournalReexecutesOnlyItsRange) {
  constexpr int kRanks = 4;
  constexpr std::uint64_t kTasks = 32;
  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;

  // Full fault-free run: every commit lands in its owner's shard journal.
  {
    ckpt::Checkpointer cp(cc, nullptr);
    cp.open("sharded corrupt");
    sched::FtConfig ft;
    const ShardedRun full = run_sharded(kRanks, kTasks, "", ft, &cp);
    expect_exactly_once(full, kTasks);
    EXPECT_EQ(full.executed.size(), kTasks);
  }
  for (int s = 0; s < kRanks; ++s) {
    ASSERT_TRUE(std::filesystem::exists(
        path("ckpt") + "/shard." + std::to_string(s) + ".c0.log"))
        << "shard " << s;
  }

  // Flip one byte near the front of shard 1's journal: the CRC framing
  // must reject the log, and only shard 1's task range may re-run.
  const std::string victim = path("ckpt") + "/shard.1.c0.log";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(8);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(8);
    f.write(&b, 1);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("sharded corrupt");
  ASSERT_TRUE(cp.resuming());
  sched::FtConfig ft;
  const ShardedRun resumed = run_sharded(kRanks, kTasks, "", ft, &cp);
  expect_exactly_once(resumed, kTasks);

  // Degradation is contained: shard 1 lost (some of) its commits and its
  // tasks re-ran; every other shard's range was restored, not re-executed.
  const auto lo = sched::chunk_lo(kTasks, 1, kRanks);
  const auto hi = sched::chunk_hi(kTasks, 1, kRanks);
  EXPECT_FALSE(resumed.executed.empty())
      << "corruption went unnoticed: nothing re-ran";
  for (const std::uint64_t t : resumed.executed) {
    EXPECT_GE(t, lo) << "task outside the corrupted shard re-ran";
    EXPECT_LT(t, hi) << "task outside the corrupted shard re-ran";
    EXPECT_EQ(sched::shard_of(t, kTasks, kRanks), 1);
  }
}

TEST_F(ShardedCkptTest, Rank0CrashWithCheckpointStillCompletes) {
  // The acceptance shape: rank 0 dies permanently mid-map while the run
  // checkpoints; the shard successor replays rank 0's durable journal and
  // the job completes with every task exactly once.
  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("sharded rank0");
  sched::FtConfig ft;
  const ShardedRun run =
      run_sharded(4, 24, "crash:rank=0,t=0.05,mode=permanent", ft, &cp);
  expect_exactly_once(run, 24);
  EXPECT_GE(run.stats.worker_deaths, 1u);
}

}  // namespace
}  // namespace mrbio::mrmpi
