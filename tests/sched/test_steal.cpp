// The decentralized work-stealing scheduler: exactly-once execution and
// token termination across rank counts and edge cases (zero tasks, fewer
// tasks than ranks, a single task), byte-identical pipeline output against
// the static and master-worker schedulers, load rebalancing off static
// stragglers, and — with the ledger backstop enabled — recovery from
// crashes and lossy protocol traffic, deterministic under a fixed plan.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/error.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"
#include "rt/backend.hpp"
#include "sched/sched.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

struct StealRun {
  std::multiset<std::uint64_t> emitted;   ///< tasks present in the final kv
  std::multiset<std::uint64_t> executed;  ///< every map-fn invocation
  std::map<int, std::uint64_t> emitted_by_rank;
  std::vector<std::uint64_t> failed;  ///< rank 0's failed-task report
  MapReduceStats stats;               ///< summed across all ranks
  double elapsed = 0.0;
};

/// Runs `ntasks` self-emitting map tasks on `n` simulated ranks with the
/// given scheduler, optionally under a fault plan (which enables the
/// ledger backstop via cfg.ft).
StealRun run_sched(int n, std::uint64_t ntasks, sched::Policy policy,
                   const std::string& plan = "", bool ft = false,
                   double task_cost = 0.01,
                   const std::function<double(std::uint64_t)>& cost_fn = nullptr) {
  fault::Injector injector(fault::FaultPlan::parse(plan));
  injector.plan().validate(n);
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  if (!plan.empty()) ec.injector = &injector;
  sim::Engine engine(ec);

  MapReduceConfig cfg;
  cfg.scheduler = policy;
  cfg.ft.enabled = ft;

  StealRun out;
  std::mutex mu;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    mr.map(ntasks, [&](std::uint64_t t, KeyValue& kv) {
      {
        std::lock_guard<std::mutex> lock(mu);
        out.executed.insert(t);
      }
      const double c = cost_fn ? cost_fn(t) : task_cost;
      if (c > 0.0) comm.compute(c);
      kv.add("task", std::to_string(t));
    });
    std::lock_guard<std::mutex> lock(mu);
    mr.kv().for_each([&](const KvPair& pair) {
      const std::string v(reinterpret_cast<const char*>(pair.value.data()),
                          pair.value.size());
      out.emitted.insert(std::stoull(v));
      out.emitted_by_rank[comm.rank()]++;
    });
    // Steal counters live on the rank that stole; ledger counters are
    // sharded — deaths on the rank that crashed, retries/failures on the
    // owner of the task's shard — so every ledger stat is summed too.
    const MapReduceStats& s = mr.stats();
    out.stats.steals_attempted += s.steals_attempted;
    out.stats.steals_succeeded += s.steals_succeeded;
    out.stats.tasks_stolen += s.tasks_stolen;
    out.stats.tasks_retried += s.tasks_retried;
    out.stats.worker_deaths += s.worker_deaths;
    out.stats.tasks_failed += s.tasks_failed;
    const std::vector<std::uint64_t> f = mr.failed_tasks();
    out.failed.insert(out.failed.end(), f.begin(), f.end());
  });
  out.elapsed = engine.elapsed();
  return out;
}

void expect_exactly_once(const StealRun& run, std::uint64_t ntasks) {
  EXPECT_EQ(run.emitted.size(), ntasks);
  for (std::uint64_t t = 0; t < ntasks; ++t) {
    EXPECT_EQ(run.emitted.count(t), 1u) << "task " << t;
  }
  EXPECT_TRUE(run.failed.empty());
}

// ---------------------------------------------------------------------------
// Policy plumbing

TEST(StealPolicy, ParseAndNameRoundTrip) {
  for (const sched::Policy p :
       {sched::Policy::Auto, sched::Policy::Chunk, sched::Policy::Stride,
        sched::Policy::Master, sched::Policy::MasterFt, sched::Policy::Steal}) {
    EXPECT_EQ(sched::parse_policy(sched::policy_name(p)), p);
  }
  EXPECT_THROW(sched::parse_policy("round-robin"), InputError);
  EXPECT_TRUE(sched::is_remote(sched::Policy::Steal));
  EXPECT_FALSE(sched::is_remote(sched::Policy::Chunk));
}

// ---------------------------------------------------------------------------
// Exactly-once and termination edges (plain and fault-tolerant variants)

class StealExactlyOnceP : public ::testing::TestWithParam<std::tuple<bool, int>> {};

TEST_P(StealExactlyOnceP, EveryTaskRunsExactlyOnce) {
  const auto [ft, nprocs] = GetParam();
  const StealRun run = run_sched(nprocs, 37, sched::Policy::Steal, "", ft);
  expect_exactly_once(run, 37);
  EXPECT_EQ(run.executed, run.emitted);
}

INSTANTIATE_TEST_SUITE_P(FtAndSizes, StealExactlyOnceP,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Values(1, 2, 5, 16)));

TEST(Steal, ZeroTasksTerminates) {
  // The token probe must still converge with nothing to do, and under the
  // ledger every worker's first ask must be answered with a stop token.
  for (const bool ft : {false, true}) {
    const StealRun run = run_sched(4, 0, sched::Policy::Steal, "", ft);
    EXPECT_TRUE(run.emitted.empty()) << "ft=" << ft;
    EXPECT_TRUE(run.executed.empty()) << "ft=" << ft;
    EXPECT_TRUE(run.failed.empty()) << "ft=" << ft;
  }
}

TEST(Steal, FewerTasksThanRanks) {
  // ntasks < ranks: most deques seed empty; those ranks must go straight
  // to (futile) stealing and still terminate promptly.
  for (const bool ft : {false, true}) {
    const StealRun run = run_sched(8, 3, sched::Policy::Steal, "", ft);
    expect_exactly_once(run, 3);
  }
}

TEST(Steal, SingleTaskManyRanks) {
  for (const bool ft : {false, true}) {
    const StealRun run = run_sched(8, 1, sched::Policy::Steal, "", ft);
    expect_exactly_once(run, 1);
  }
}

TEST(Steal, EveryRankRunsTasksUnderFt) {
  // The sharded ledger has no dedicated master: every rank owns a slice
  // of the ledger *and* works its seeded chunk, so rank 0 emits too.
  const StealRun run = run_sched(4, 20, sched::Policy::Steal, "", /*ft=*/true);
  expect_exactly_once(run, 20);
  for (int r = 0; r < 4; ++r) {
    EXPECT_GT(run.emitted_by_rank.count(r) != 0u ? run.emitted_by_rank.at(r) : 0u, 0u)
        << "rank " << r;
  }
}

TEST(Steal, ConsecutiveMapsAreEpochIsolated) {
  // Two steal maps back to back on the same MapReduce: any straggler
  // steal traffic from the first map must be dropped by epoch, not
  // double-run or wedge the second map's termination probe.
  for (const bool ft : {false, true}) {
    MapReduceConfig cfg;
    cfg.scheduler = sched::Policy::Steal;
    cfg.ft.enabled = ft;
    sim::EngineConfig ec;
    ec.nprocs = 5;
    ec.stack_bytes = 512 * 1024;
    sim::Engine engine(ec);
    std::mutex mu;
    std::multiset<std::uint64_t> first, second;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      MapReduce mr(comm, cfg);
      mr.map(23, [&](std::uint64_t t, KeyValue&) {
        std::lock_guard<std::mutex> lock(mu);
        first.insert(t);
      });
      mr.map(31, [&](std::uint64_t t, KeyValue&) {
        std::lock_guard<std::mutex> lock(mu);
        second.insert(t);
      });
    });
    EXPECT_EQ(first.size(), 23u) << "ft=" << ft;
    EXPECT_EQ(second.size(), 31u) << "ft=" << ft;
    for (std::uint64_t t = 0; t < 31; ++t) {
      if (t < 23) EXPECT_EQ(first.count(t), 1u) << t;
      EXPECT_EQ(second.count(t), 1u) << t;
    }
  }
}

// ---------------------------------------------------------------------------
// Load balancing

TEST(Steal, RebalancesAStaticallyImbalancedPartition) {
  // The first chunk holds all the expensive tasks. Static chunks eat the
  // full 8 s serially on rank 0; thieves must drain that chunk in
  // parallel between rank 0's tasks.
  const auto cost = [](std::uint64_t t) { return t < 16 ? 0.5 : 0.01; };
  const StealRun chunk =
      run_sched(4, 64, sched::Policy::Chunk, "", false, 0.0, cost);
  const StealRun steal =
      run_sched(4, 64, sched::Policy::Steal, "", false, 0.0, cost);
  expect_exactly_once(chunk, 64);
  expect_exactly_once(steal, 64);
  EXPECT_GE(chunk.elapsed, 8.0);
  EXPECT_LT(steal.elapsed, 6.0);
  EXPECT_GT(steal.stats.steals_succeeded, 0u);
  EXPECT_GT(steal.stats.tasks_stolen, 0u);
  EXPECT_GE(steal.stats.steals_attempted, steal.stats.steals_succeeded);
}

TEST(Steal, RemainingTasksAreStolenFromASlowedVictim) {
  // slow: shapes timing only, so it runs on the plain (no-ledger) steal
  // path. Rank 1's first task takes 10 virtual seconds; its second must
  // be stolen and run elsewhere instead of waiting behind it.
  const StealRun run = run_sched(4, 8, sched::Policy::Steal,
                                 "slow:rank=1,factor=50", false, 0.2);
  expect_exactly_once(run, 8);
  EXPECT_GE(run.elapsed, 10.0);   // the slowed task itself
  EXPECT_LT(run.elapsed, 15.0);   // but not the slowed task + its sibling
  EXPECT_GE(run.stats.tasks_stolen, 1u);
}

// ---------------------------------------------------------------------------
// Cross-scheduler byte identity

TEST(Steal, PipelineOutputMatchesOtherSchedulersByte4Byte) {
  // The full map/collate/reduce/gather/sort pipeline must produce the
  // same final pair sequence on rank 0 no matter which scheduler ran the
  // map. Word counts have unique keys after reduce, so sort_keys makes
  // the gathered kv fully deterministic.
  const std::vector<std::string> docs = {"a b a", "b c d", "a e", "c c b",
                                         "e d c", "b", "a a a e", "d"};
  const auto run_pipeline = [&](sched::Policy policy, bool ft) {
    MapReduceConfig cfg;
    cfg.scheduler = policy;
    cfg.ft.enabled = ft;
    std::vector<std::pair<std::string, std::string>> pairs;
    std::mutex mu;
    sim::EngineConfig ec;
    ec.nprocs = 4;
    ec.stack_bytes = 512 * 1024;
    sim::Engine engine(ec);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      MapReduce mr(comm, cfg);
      mr.map(docs.size(), [&](std::uint64_t t, KeyValue& kv) {
        std::string word;
        for (char c : docs[t] + " ") {
          if (c == ' ') {
            if (!word.empty()) kv.add(word, "1");
            word.clear();
          } else {
            word.push_back(c);
          }
        }
      });
      mr.collate();
      mr.reduce([&](const KmvGroup& g, KeyValue& out) {
        out.add(to_string(g.key), std::to_string(g.values.size()));
      });
      mr.gather();
      mr.sort_keys();
      if (comm.rank() == 0) {
        std::lock_guard<std::mutex> lock(mu);
        for (std::size_t i = 0; i < mr.kv().size(); ++i) {
          const KvPair pr = mr.kv().pair(i);
          pairs.emplace_back(to_string(pr.key), to_string(pr.value));
        }
      }
    });
    return pairs;
  };

  const auto chunk = run_pipeline(sched::Policy::Chunk, false);
  ASSERT_FALSE(chunk.empty());
  EXPECT_EQ(run_pipeline(sched::Policy::Master, false), chunk);
  EXPECT_EQ(run_pipeline(sched::Policy::MasterFt, true), chunk);
  EXPECT_EQ(run_pipeline(sched::Policy::Steal, false), chunk);
  EXPECT_EQ(run_pipeline(sched::Policy::Steal, true), chunk);
}

// ---------------------------------------------------------------------------
// Sim / native backend equivalence

std::map<std::string, std::uint64_t> word_count(rt::Backend backend, bool ft) {
  const std::vector<std::string> words = {"map", "reduce", "blast", "som",
                                          "rank", "mpi"};
  std::map<std::string, std::uint64_t> table;
  std::mutex mu;
  rt::LaunchConfig lc;
  lc.backend = backend;
  lc.nranks = 4;
  rt::launch(lc, [&](rt::Rank& rank) {
    mpi::Comm comm(rank);
    MapReduceConfig cfg;
    cfg.scheduler = sched::Policy::Steal;
    cfg.ft.enabled = ft;
    MapReduce mr(comm, cfg);
    mr.map(40, [&](std::uint64_t task, KeyValue& kv) {
      for (std::uint64_t i = 0; i <= task % 7; ++i)
        kv.add(words[(task + i) % words.size()], "1");
    });
    mr.collate();
    mr.reduce([](const KmvGroup& group, KeyValue& kv) {
      kv.add(to_string(group.key), std::to_string(group.values.size()));
    });
    mr.gather();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      mr.kv().for_each([&](const KvPair& pair) {
        table[to_string(pair.key)] = std::stoull(to_string(pair.value));
      });
    }
  });
  return table;
}

TEST(StealBackendEquivalence, WordCountMatchesAcrossBackends) {
  // Real threads race the steals, so the task -> rank placement varies;
  // the reduced table must not.
  for (const bool ft : {false, true}) {
    const auto sim = word_count(rt::Backend::Sim, ft);
    const auto native = word_count(rt::Backend::Native, ft);
    EXPECT_FALSE(sim.empty()) << "ft=" << ft;
    EXPECT_EQ(sim, native) << "ft=" << ft;
  }
}

// ---------------------------------------------------------------------------
// Fault recovery (ledger-backed steal)

TEST(StealRecovery, CrashedWorkersClaimsAreRegranted) {
  // Worker 2 dies after starting its second task: the unexecuted claims
  // in its deque are still Pending in the ledger and must be re-granted
  // to the survivors, with first-commit-wins keeping the output
  // exactly-once.
  const StealRun run =
      run_sched(4, 12, sched::Policy::Steal, "crash:rank=2,task=1", true);
  expect_exactly_once(run, 12);
  EXPECT_EQ(run.stats.worker_deaths, 1u);
}

TEST(StealRecovery, CrashWhileHoldingTheOnlyTask) {
  const StealRun run =
      run_sched(2, 1, sched::Policy::Steal, "crash:rank=1,task=0", true);
  expect_exactly_once(run, 1);
  EXPECT_EQ(run.stats.worker_deaths, 1u);
}

TEST(StealRecovery, PermanentCrashStrandedClaimsMoveToSurvivor) {
  const StealRun run = run_sched(3, 8, sched::Policy::Steal,
                                 "crash:rank=1,task=1,mode=permanent", true);
  expect_exactly_once(run, 8);
  EXPECT_EQ(run.emitted_by_rank.count(1), 0u);
  EXPECT_GT(run.emitted_by_rank.at(2), 0u);
}

TEST(StealRecovery, LossyProtocolTrafficIsAbsorbed) {
  // Drops and duplicates on both the ledger channel (1 <-> 0) and the
  // worker-to-worker steal channel (2 <-> 3): seq-numbered resends and
  // the victim's cached-replay path must recover all of them.
  const StealRun run = run_sched(4, 14, sched::Policy::Steal,
                                 "drop:src=1,dst=0,count=2; dup:src=0,dst=1,count=1; "
                                 "drop:src=2,dst=3,count=1; dup:src=3,dst=2,count=1",
                                 true);
  expect_exactly_once(run, 14);
}

TEST(StealRecovery, ThiefGivesUpOnASlowedVictim) {
  // Rank 1 is 100x slow, so steal requests to it time out max_resends
  // times; the thief must abandon the victim and fall back to the
  // ledger instead of hanging, and the run still finishes exactly-once.
  const StealRun run = run_sched(4, 9, sched::Policy::Steal,
                                 "slow:rank=1,factor=100", true, 0.05);
  expect_exactly_once(run, 9);
}

TEST(StealRecovery, ZeroTasksWithAnInjectorTerminates) {
  const StealRun run =
      run_sched(4, 0, sched::Policy::Steal, "crash:rank=3@t=1000", true);
  EXPECT_TRUE(run.emitted.empty());
  EXPECT_TRUE(run.executed.empty());
  EXPECT_TRUE(run.failed.empty());
}

TEST(StealRecovery, DeterministicUnderAFixedPlan) {
  const std::string plan =
      "crash:rank=2,task=1; drop:src=1,dst=0,count=1; slow:rank=3,factor=3";
  const StealRun a = run_sched(4, 15, sched::Policy::Steal, plan, true);
  const StealRun b = run_sched(4, 15, sched::Policy::Steal, plan, true);
  expect_exactly_once(a, 15);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.emitted_by_rank, b.emitted_by_rank);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
}

TEST(StealRecovery, CrashWithoutLedgerFailsTheRun) {
  // Plain steal has no recovery path: an uncaught CrashSignal must abort
  // the run rather than hang the termination probe.
  fault::Injector injector(fault::FaultPlan::parse("crash:rank=1,task=0"));
  sim::EngineConfig ec;
  ec.nprocs = 3;
  ec.stack_bytes = 512 * 1024;
  ec.injector = &injector;
  sim::Engine engine(ec);
  MapReduceConfig cfg;
  cfg.scheduler = sched::Policy::Steal;
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 MapReduce mr(comm, cfg);
                 mr.map(6, [&](std::uint64_t, KeyValue&) { comm.compute(0.01); });
               }),
               Error);
}

}  // namespace
}  // namespace mrbio::mrmpi
