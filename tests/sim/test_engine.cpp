// Unit tests for the discrete-event engine: timing model, message matching,
// determinism, wildcard order, FIFO channels, deadlock and error handling.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <vector>

#include "common/error.hpp"
#include "common/serialize.hpp"

namespace mrbio::sim {
namespace {

std::vector<std::byte> bytes_of(int v) {
  ByteWriter w;
  w.put(v);
  return w.take();
}

int int_of(const Message& m) {
  ByteReader r(m.payload);
  return r.get<int>();
}

EngineConfig config(int n) {
  EngineConfig c;
  c.nprocs = n;
  return c;
}

TEST(Engine, SingleProcessComputeAdvancesClock) {
  Engine e(config(1));
  double observed = -1.0;
  e.run([&](Process& p) {
    EXPECT_EQ(p.rank(), 0);
    EXPECT_EQ(p.size(), 1);
    EXPECT_DOUBLE_EQ(p.now(), 0.0);
    p.compute(1.5);
    p.compute(0.25);
    observed = p.now();
  });
  EXPECT_DOUBLE_EQ(observed, 1.75);
  EXPECT_DOUBLE_EQ(e.elapsed(), 1.75);
  EXPECT_DOUBLE_EQ(e.stats().total_compute, 1.75);
}

TEST(Engine, PingPongTiming) {
  EngineConfig c = config(2);
  c.net.latency = 1.0;
  c.net.byte_time = 0.0;
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.0;
  Engine e(c);
  double recv_time = -1.0;
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.compute(5.0);
      p.send(1, 7, bytes_of(42));
    } else {
      Message m = p.recv(0, 7);
      EXPECT_EQ(int_of(m), 42);
      EXPECT_EQ(m.source, 0);
      EXPECT_EQ(m.tag, 7);
      EXPECT_DOUBLE_EQ(m.sent, 5.0);
      EXPECT_DOUBLE_EQ(m.arrival, 6.0);
      recv_time = p.now();
    }
  });
  // Receiver posted at t=0; message arrived at t=6.
  EXPECT_DOUBLE_EQ(recv_time, 6.0);
  EXPECT_EQ(e.stats().messages, 1u);
}

TEST(Engine, ByteTimeScalesWithNominalSize) {
  EngineConfig c = config(2);
  c.net.latency = 0.5;
  c.net.byte_time = 0.01;
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.0;
  Engine e(c);
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 0, {}, /*nominal_bytes=*/1000);
    } else {
      Message m = p.recv();
      EXPECT_DOUBLE_EQ(m.arrival, 0.5 + 10.0);
      EXPECT_EQ(m.nominal_bytes, 1000u);
      EXPECT_TRUE(m.payload.empty());
    }
  });
  EXPECT_EQ(e.stats().nominal_bytes, 1000u);
  EXPECT_EQ(e.stats().payload_bytes, 0u);
}

TEST(Engine, RecvCompletesAtMaxOfPostAndArrival) {
  EngineConfig c = config(2);
  c.net.latency = 1.0;
  c.net.byte_time = 0.0;
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.25;
  Engine e(c);
  double late_recv = -1.0;
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 0, bytes_of(1));  // arrives at t=1
    } else {
      p.compute(10.0);  // post recv long after arrival
      p.recv();
      late_recv = p.now();
    }
  });
  EXPECT_DOUBLE_EQ(late_recv, 10.25);
}

TEST(Engine, WildcardRecvMatchesEarliestArrival) {
  EngineConfig c = config(3);
  c.net.latency = 1.0;
  c.net.byte_time = 0.0;
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.0;
  Engine e(c);
  std::vector<int> order;
  e.run([&](Process& p) {
    if (p.rank() == 1) {
      p.compute(3.0);
      p.send(0, 0, bytes_of(1));  // arrives t=4
    } else if (p.rank() == 2) {
      p.compute(1.0);
      p.send(0, 0, bytes_of(2));  // arrives t=2
    } else {
      order.push_back(int_of(p.recv()));
      order.push_back(int_of(p.recv()));
    }
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 2);  // earlier arrival first
  EXPECT_EQ(order[1], 1);
}

TEST(Engine, WildcardTieBreaksBySenderRank) {
  EngineConfig c = config(3);
  c.net.latency = 1.0;
  c.net.byte_time = 0.0;
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.0;
  Engine e(c);
  std::vector<int> sources;
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      Message a = p.recv();
      Message b = p.recv();
      sources.push_back(a.source);
      sources.push_back(b.source);
    } else {
      p.send(0, 0, bytes_of(p.rank()));  // both arrive at t=1
    }
  });
  ASSERT_EQ(sources.size(), 2u);
  // Identical arrival times: global send sequence breaks the tie, and rank 1
  // issues its send before rank 2 under the (time, rank) scheduler order.
  EXPECT_EQ(sources[0], 1);
  EXPECT_EQ(sources[1], 2);
}

TEST(Engine, TagFilteringLeavesOtherMessagesQueued) {
  Engine e(config(2));
  int got_b = -1;
  int got_a = -1;
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 10, bytes_of(100));
      p.send(1, 20, bytes_of(200));
    } else {
      got_b = int_of(p.recv(0, 20));  // skip over tag 10
      got_a = int_of(p.recv(0, 10));
    }
  });
  EXPECT_EQ(got_b, 200);
  EXPECT_EQ(got_a, 100);
}

TEST(Engine, FifoChannelPreventsOvertaking) {
  EngineConfig c = config(2);
  c.net.latency = 0.0;
  c.net.byte_time = 1.0;  // 1 s per byte: big messages are slow
  c.net.send_overhead = 0.0;
  c.net.recv_overhead = 0.0;
  Engine e(c);
  std::vector<int> order;
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 0, std::vector<std::byte>(100), 100);  // arrives t=100
      p.send(1, 0, std::vector<std::byte>(1), 1);      // would arrive t=1 unchecked
    } else {
      Message a = p.recv();
      Message b = p.recv();
      order.push_back(static_cast<int>(a.payload.size()));
      order.push_back(static_cast<int>(b.payload.size()));
      EXPECT_GE(b.arrival, a.arrival);
    }
  });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 100);  // FIFO: first sent, first received
  EXPECT_EQ(order[1], 1);
}

TEST(Engine, SelfSendWorks) {
  Engine e(config(1));
  int got = -1;
  e.run([&](Process& p) {
    p.send(0, 5, bytes_of(77));
    got = int_of(p.recv(0, 5));
  });
  EXPECT_EQ(got, 77);
}

TEST(Engine, HasMessageProbesWithoutConsuming) {
  EngineConfig c = config(2);
  c.net.latency = 1.0;
  Engine e(c);
  e.run([&](Process& p) {
    if (p.rank() == 0) {
      p.send(1, 3, bytes_of(9));
    } else {
      EXPECT_FALSE(p.has_message());  // nothing can have arrived at t=0
      p.compute(5.0);
      EXPECT_TRUE(p.has_message(0, 3));
      EXPECT_TRUE(p.has_message());
      EXPECT_FALSE(p.has_message(0, 99));
      EXPECT_EQ(int_of(p.recv(0, 3)), 9);
      EXPECT_FALSE(p.has_message());
    }
  });
}

TEST(Engine, DeadlockIsDetected) {
  Engine e(config(2));
  EXPECT_THROW(e.run([](Process& p) { p.recv(); }), LogicError);
}

TEST(Engine, ExceptionInRankPropagates) {
  Engine e(config(4));
  EXPECT_THROW(e.run([](Process& p) {
                 if (p.rank() == 2) throw InputError("rank 2 failed");
                 // Other ranks block; the abort machinery must unwind them.
                 if (p.rank() != 2) p.recv();
               }),
               InputError);
}

TEST(Engine, RunTwiceIsRejected) {
  Engine e(config(1));
  e.run([](Process&) {});
  EXPECT_THROW(e.run([](Process&) {}), LogicError);
}

TEST(Engine, ManyRanksBarrierStyleExchangeIsDeterministic) {
  // All ranks send to rank 0; repeat in a second engine and compare traces.
  auto run_once = [](int n) {
    EngineConfig c = config(n);
    c.net.latency = 1e-6;
    c.net.byte_time = 1e-9;
    Engine e(c);
    std::vector<int> sources;
    e.run([&](Process& p) {
      if (p.rank() == 0) {
        for (int i = 1; i < p.size(); ++i) sources.push_back(p.recv().source);
      } else {
        p.compute(1e-6 * p.rank());
        p.send(0, 0, bytes_of(p.rank()));
      }
    });
    return std::pair{sources, e.elapsed()};
  };
  auto [s1, t1] = run_once(64);
  auto [s2, t2] = run_once(64);
  EXPECT_EQ(s1, s2);
  EXPECT_DOUBLE_EQ(t1, t2);
  ASSERT_EQ(s1.size(), 63u);
}

TEST(Engine, FinalTimesPerRankAreRecorded) {
  Engine e(config(3));
  e.run([](Process& p) { p.compute(static_cast<double>(p.rank())); });
  ASSERT_EQ(e.final_times().size(), 3u);
  EXPECT_DOUBLE_EQ(e.final_times()[0], 0.0);
  EXPECT_DOUBLE_EQ(e.final_times()[1], 1.0);
  EXPECT_DOUBLE_EQ(e.final_times()[2], 2.0);
  EXPECT_DOUBLE_EQ(e.elapsed(), 2.0);
}

TEST(Engine, NegativeComputeRejected) {
  Engine e(config(1));
  EXPECT_THROW(e.run([](Process& p) { p.compute(-1.0); }), InputError);
}

TEST(Engine, SendToInvalidRankRejected) {
  Engine e(config(2));
  EXPECT_THROW(e.run([](Process& p) {
                 if (p.rank() == 0) p.send(5, 0, {});
                 else p.recv();
               }),
               InputError);
}

TEST(Engine, LargeRankCountSmokeTest) {
  EngineConfig c = config(512);
  c.stack_bytes = 256 * 1024;
  Engine e(c);
  std::atomic<int> count{0};
  e.run([&](Process& p) {
    p.compute(1e-6);
    count.fetch_add(1, std::memory_order_relaxed);
    if (p.rank() > 0) {
      p.send(0, 1, {});
    } else {
      for (int i = 1; i < p.size(); ++i) p.recv(Process::kAnySource, 1);
    }
  });
  EXPECT_EQ(count.load(), 512);
}

}  // namespace
}  // namespace mrbio::sim
