// Integration tests of the MR-MPI batch SOM: the parallel codebook must
// match serial batch training, and the simulated driver must show the
// paper's near-linear scaling.
#include "mrsom/mrsom.hpp"

#include <gtest/gtest.h>

#include "sim/engine.hpp"

namespace mrbio::mrsom {
namespace {

Matrix random_data(Rng& rng, std::size_t n, std::size_t dim) {
  Matrix data(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    for (float& v : data.row(r)) v = static_cast<float>(rng.uniform());
  }
  return data;
}

som::Codebook train_parallel(int nprocs, const MatrixView& data,
                             const som::Codebook& initial, ParallelSomConfig config) {
  sim::EngineConfig ec;
  ec.nprocs = nprocs;
  sim::Engine engine(ec);
  som::Codebook result;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    som::Codebook cb = train_som_mr(comm, data, initial, config);
    if (p.rank() == 0) result = std::move(cb);
  });
  return result;
}

TEST(MrSom, ParallelMatchesSerialBatch) {
  Rng rng(50);
  const Matrix data = random_data(rng, 240, 8);
  som::Codebook initial(som::SomGrid{6, 6}, 8);
  Rng init_rng(51);
  initial.init_random(init_rng);

  som::SomParams params;
  params.epochs = 5;

  som::Codebook serial = initial;
  som::train_batch(serial, data.view(), params);

  ParallelSomConfig config;
  config.params = params;
  config.block_vectors = 40;
  const som::Codebook parallel = train_parallel(4, data.view(), initial, config);

  for (std::size_t c = 0; c < serial.grid().cells(); ++c) {
    for (std::size_t i = 0; i < serial.dim(); ++i) {
      EXPECT_NEAR(serial.vector(c)[i], parallel.vector(c)[i], 5e-3)
          << "cell " << c << " dim " << i;
    }
  }
}

TEST(MrSom, EveryRankEndsWithSameCodebook) {
  Rng rng(52);
  const Matrix data = random_data(rng, 120, 4);
  som::Codebook initial(som::SomGrid{4, 4}, 4);
  Rng init_rng(53);
  initial.init_random(init_rng);
  ParallelSomConfig config;
  config.params.epochs = 3;
  config.block_vectors = 20;

  sim::EngineConfig ec;
  ec.nprocs = 3;
  sim::Engine engine(ec);
  std::vector<som::Codebook> codebooks(3);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    codebooks[static_cast<std::size_t>(p.rank())] =
        train_som_mr(comm, data.view(), initial, config);
  });
  for (int r = 1; r < 3; ++r) {
    for (std::size_t i = 0; i < codebooks[0].weights().size(); ++i) {
      EXPECT_FLOAT_EQ(codebooks[0].weights().data()[i],
                      codebooks[static_cast<std::size_t>(r)].weights().data()[i]);
    }
  }
}

TEST(MrSom, BlockSizeDoesNotChangeResult) {
  // Fig. 6 caption: "Work units of 80 vectors each produced the identical
  // timings" -- and the math is identical regardless of block size.
  Rng rng(54);
  const Matrix data = random_data(rng, 160, 6);
  som::Codebook initial(som::SomGrid{5, 5}, 6);
  Rng init_rng(55);
  initial.init_random(init_rng);
  ParallelSomConfig c40;
  c40.params.epochs = 3;
  c40.block_vectors = 40;
  ParallelSomConfig c80 = c40;
  c80.block_vectors = 80;

  const som::Codebook cb40 = train_parallel(4, data.view(), initial, c40);
  const som::Codebook cb80 = train_parallel(4, data.view(), initial, c80);
  for (std::size_t i = 0; i < cb40.weights().size(); ++i) {
    EXPECT_NEAR(cb40.weights().data()[i], cb80.weights().data()[i], 2e-3);
  }
}

TEST(MrSom, SingleRankMatchesSerialExactly) {
  Rng rng(56);
  const Matrix data = random_data(rng, 100, 5);
  som::Codebook initial(som::SomGrid{4, 4}, 5);
  Rng init_rng(57);
  initial.init_random(init_rng);
  som::SomParams params;
  params.epochs = 4;

  som::Codebook serial = initial;
  som::train_batch(serial, data.view(), params);

  ParallelSomConfig config;
  config.params = params;
  config.block_vectors = 30;
  const som::Codebook parallel = train_parallel(1, data.view(), initial, config);
  for (std::size_t i = 0; i < serial.weights().size(); ++i) {
    EXPECT_NEAR(serial.weights().data()[i], parallel.weights().data()[i], 1e-4);
  }
}

TEST(MrSom, EpochCallbackFiresOnMaster) {
  Rng rng(58);
  // Clustered data so training genuinely reduces quantization error.
  Matrix data = random_data(rng, 80, 3);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const float offset = (r % 2 == 0) ? 0.0f : 3.0f;
    for (float& v : data.row(r)) v = v * 0.2f + offset;
  }
  som::Codebook initial(som::SomGrid{3, 3}, 3);
  Rng init_rng(59);
  initial.init_random(init_rng);
  ParallelSomConfig config;
  config.params.epochs = 4;
  config.block_vectors = 10;
  std::vector<double> qerrs;
  config.on_epoch = [&](std::size_t, double, double qerr) { qerrs.push_back(qerr); };
  train_parallel(3, data.view(), initial, config);
  ASSERT_EQ(qerrs.size(), 4u);
  EXPECT_LT(qerrs.back(), qerrs.front());
}

// ---- simulated driver ----

double sim_elapsed(int cores, const SimSomConfig& config) {
  sim::EngineConfig ec;
  ec.nprocs = cores;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    run_som_sim(comm, config);
  });
  return engine.elapsed();
}

SimSomConfig small_sim() {
  SimSomConfig c;
  c.num_vectors = 4'096;
  c.dim = 64;
  c.grid = som::SomGrid{20, 20};
  c.epochs = 3;
  c.block_vectors = 32;
  return c;
}

TEST(MrSomSim, NearLinearScaling) {
  const SimSomConfig c = small_sim();
  const double t4 = sim_elapsed(4, c);
  const double t16 = sim_elapsed(16, c);
  // 3 workers -> 15 workers: ideal speedup 5x; demand at least 4x.
  EXPECT_LT(t16, t4 / 4.0);
}

TEST(MrSomSim, BlockSizeBarelyMattersForTiming) {
  // Fig. 6: 40- and 80-vector work units produced identical timings.
  // Enough blocks per worker that end-of-stage idling is amortized, as at
  // the paper's scale (2048 blocks over the core counts of Fig. 6).
  SimSomConfig c40 = small_sim();
  c40.num_vectors = 16'384;
  c40.block_vectors = 40;
  SimSomConfig c80 = c40;
  c80.block_vectors = 80;
  const double t40 = sim_elapsed(8, c40);
  const double t80 = sim_elapsed(8, c80);
  EXPECT_NEAR(t40, t80, 0.05 * t40);
}

TEST(MrSomSim, Deterministic) {
  const SimSomConfig c = small_sim();
  EXPECT_DOUBLE_EQ(sim_elapsed(8, c), sim_elapsed(8, c));
}

TEST(MrSomSim, EpochCountScalesTime) {
  SimSomConfig c1 = small_sim();
  c1.epochs = 2;
  SimSomConfig c2 = small_sim();
  c2.epochs = 4;
  const double t1 = sim_elapsed(4, c1);
  const double t2 = sim_elapsed(4, c2);
  EXPECT_NEAR(t2, 2.0 * t1, 0.1 * t2);
}

}  // namespace
}  // namespace mrbio::mrsom
