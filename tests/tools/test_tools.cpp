// End-to-end tests of the command-line tools, run as subprocesses: the
// full paper pipeline (shred -> formatdb -> mrblast_search) and the SOM
// trainer on both input modes. Tool binary paths are injected by CMake.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>

#include "blast/sequence.hpp"
#include "common/mmap_file.hpp"
#include "som/som.hpp"

#ifndef MRBIO_TOOL_DIR
#error "MRBIO_TOOL_DIR must be defined by the build"
#endif

namespace mrbio {
namespace {

namespace fs = std::filesystem;

class ToolsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mrbio_tools_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string tool(const std::string& name) const {
    return std::string(MRBIO_TOOL_DIR) + "/" + name;
  }

  int run(const std::string& cmd) const {
    const std::string full = cmd + " > " + (dir_ / "stdout.txt").string() + " 2> " +
                             (dir_ / "stderr.txt").string();
    return std::system(full.c_str());
  }

  std::string stdout_text() const { return slurp(dir_ / "stdout.txt"); }
  std::string stderr_text() const { return slurp(dir_ / "stderr.txt"); }

  static std::string slurp(const fs::path& p) {
    std::ifstream in(p, std::ios::binary);
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  fs::path dir_;
};

TEST_F(ToolsTest, HelpExitsCleanly) {
  for (const char* name : {"mrformatdb", "mrblast_search", "mrsom_train", "shred_fasta"}) {
    EXPECT_EQ(run(tool(name) + " --help"), 0) << name;
  }
}

TEST_F(ToolsTest, MissingArgumentsFailWithError) {
  EXPECT_NE(run(tool("mrformatdb")), 0);
  EXPECT_NE(run(tool("mrblast_search")), 0);
  EXPECT_NE(run(tool("shred_fasta")), 0);
  EXPECT_NE(run(tool("mrsom_train")), 0);
}

TEST_F(ToolsTest, FullBlastPipeline) {
  // 1. Make genomes.
  Rng rng(11);
  std::vector<blast::Sequence> genomes;
  for (int g = 0; g < 4; ++g) {
    genomes.push_back(
        blast::random_sequence(rng, "genome" + std::to_string(g), 1'500, blast::SeqType::Dna));
  }
  blast::write_fasta_file(path("genomes.fa"), genomes, blast::SeqType::Dna);

  // 2. shred_fasta: genomes -> read-like queries.
  ASSERT_EQ(run(tool("shred_fasta") + " --in " + path("genomes.fa") + " --out " +
                path("reads.fa") + " --length 400 --overlap 200"),
            0);
  const auto reads = blast::read_fasta_file(path("reads.fa"), blast::SeqType::Dna);
  EXPECT_GT(reads.size(), 20u);

  // 3. mrformatdb: genomes -> partitioned DB.
  ASSERT_EQ(run(tool("mrformatdb") + " --in " + path("genomes.fa") + " --out " +
                path("db") + " --volume-residues 2000"),
            0);
  EXPECT_TRUE(fs::exists(path("db.mal")));
  EXPECT_TRUE(fs::exists(path("db.000.vol")));
  EXPECT_TRUE(fs::exists(path("db.001.vol")));

  // 4. mrblast_search with self-hit exclusion off: every read hits its
  //    parent genome.
  ASSERT_EQ(run(tool("mrblast_search") + " --query " + path("reads.fa") + " --db " +
                path("db.mal") + " --out " + path("hits") +
                " --ranks 5 --block 7 --evalue 1e-6 --no-filter --locality --tapered"),
            0);
  std::size_t hit_lines = 0;
  std::size_t parent_hits = 0;
  for (const auto& entry : fs::directory_iterator(path("hits"))) {
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      ++hit_lines;
      // "genomeX/a-b\tgenomeX\t..." -- query prefix matches subject.
      const auto tab1 = line.find('\t');
      const auto tab2 = line.find('\t', tab1 + 1);
      const std::string qid = line.substr(0, tab1);
      const std::string sid = line.substr(tab1 + 1, tab2 - tab1 - 1);
      if (qid.rfind(sid + "/", 0) == 0) ++parent_hits;
    }
  }
  EXPECT_GE(hit_lines, reads.size());
  EXPECT_GE(parent_hits, reads.size());

  // 5. Same search with --exclude-self: the parent hits vanish.
  ASSERT_EQ(run(tool("mrblast_search") + " --query " + path("reads.fa") + " --db " +
                path("db.mal") + " --out " + path("hits2") +
                " --ranks 5 --block 7 --evalue 1e-6 --no-filter --exclude-self"),
            0);
  std::size_t self_hits = 0;
  // Every read's only match is its parent, so excluding self hits may
  // leave nothing to write at all -- the output directory is then never
  // created, which is itself the expected outcome.
  if (!fs::exists(path("hits2"))) return;
  for (const auto& entry : fs::directory_iterator(path("hits2"))) {
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      const auto tab1 = line.find('\t');
      const auto tab2 = line.find('\t', tab1 + 1);
      if (line.substr(0, tab1).rfind(line.substr(tab1 + 1, tab2 - tab1 - 1) + "/", 0) == 0) {
        ++self_hits;
      }
    }
  }
  EXPECT_EQ(self_hits, 0u);
}

TEST_F(ToolsTest, SimdFlagSelectsLevelWithIdenticalHits) {
  Rng rng(23);
  std::vector<blast::Sequence> genomes;
  for (int g = 0; g < 2; ++g) {
    genomes.push_back(
        blast::random_sequence(rng, "genome" + std::to_string(g), 900, blast::SeqType::Dna));
  }
  blast::write_fasta_file(path("genomes.fa"), genomes, blast::SeqType::Dna);
  ASSERT_EQ(run(tool("shred_fasta") + " --in " + path("genomes.fa") + " --out " +
                path("reads.fa") + " --length 200 --overlap 100"),
            0);
  ASSERT_EQ(run(tool("mrformatdb") + " --in " + path("genomes.fa") + " --out " +
                path("db") + " --volume-residues 2000"),
            0);

  auto hits_of = [&](const std::string& out) {
    std::map<std::string, std::string> files;
    for (const auto& entry : fs::directory_iterator(path(out))) {
      files[entry.path().filename().string()] = slurp(entry.path());
    }
    return files;
  };
  const std::string base_cmd = tool("mrblast_search") + " --query " + path("reads.fa") +
                               " --db " + path("db.mal") +
                               " --ranks 3 --block 5 --evalue 1e-6 --no-filter";

  // Every level (and the env-var spelling) produces byte-identical hits.
  ASSERT_EQ(run(base_cmd + " --out " + path("hits_scalar") + " --simd scalar"), 0);
  const auto want = hits_of("hits_scalar");
  ASSERT_FALSE(want.empty());
  ASSERT_EQ(run(base_cmd + " --out " + path("hits_auto") + " --simd auto"), 0);
  EXPECT_EQ(hits_of("hits_auto"), want);
  ASSERT_EQ(run("MRBIO_SIMD=scalar " + base_cmd + " --out " + path("hits_env")), 0);
  EXPECT_EQ(hits_of("hits_env"), want);

  // Unknown levels are rejected up front.
  EXPECT_NE(run(base_cmd + " --out " + path("hits_bad") + " --simd avx512"), 0);
  EXPECT_NE(run(tool("mrsom_train") + " --simd turbo"), 0);
  EXPECT_NE(run(tool("mrgraph_build") + " --simd turbo"), 0);
}

TEST_F(ToolsTest, ProteinPipeline) {
  Rng rng(15);
  std::vector<blast::Sequence> db;
  const auto ancestor = blast::random_sequence(rng, "fam", 250, blast::SeqType::Protein);
  db.push_back(blast::mutate(rng, ancestor, "fam_homolog", 0.2, blast::SeqType::Protein));
  for (int i = 0; i < 8; ++i) {
    db.push_back(blast::random_sequence(rng, "bg" + std::to_string(i), 300,
                                        blast::SeqType::Protein));
  }
  blast::write_fasta_file(path("prots.fa"), db, blast::SeqType::Protein);
  blast::write_fasta_file(path("query.fa"), {ancestor}, blast::SeqType::Protein);

  ASSERT_EQ(run(tool("mrformatdb") + " --in " + path("prots.fa") + " --out " +
                path("pdb") + " --type prot --volume-residues 1000"),
            0);
  ASSERT_EQ(run(tool("mrblast_search") + " --query " + path("query.fa") + " --db " +
                path("pdb.mal") + " --type prot --out " + path("phits") +
                " --ranks 4 --block 1 --evalue 1e-8 --no-filter"),
            0);
  bool found = false;
  for (const auto& entry : fs::directory_iterator(path("phits"))) {
    std::ifstream in(entry.path());
    std::string line;
    while (std::getline(in, line)) {
      if (line.find("fam_homolog") != std::string::npos) found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(ToolsTest, TypeMismatchRejected) {
  Rng rng(16);
  blast::write_fasta_file(path("d.fa"), {blast::random_sequence(rng, "x", 100,
                                                                blast::SeqType::Dna)},
                          blast::SeqType::Dna);
  ASSERT_EQ(run(tool("mrformatdb") + " --in " + path("d.fa") + " --out " + path("ndb")), 0);
  // Searching a nucleotide DB with --type prot must fail cleanly.
  EXPECT_NE(run(tool("mrblast_search") + " --query " + path("d.fa") + " --db " +
                path("ndb.mal") + " --type prot --out " + path("xx")),
            0);
}

TEST_F(ToolsTest, SomTrainerOnRawMatrix) {
  // Two clusters in 8-D, written as the raw float matrix the paper's SOM
  // memory-maps.
  Rng rng(12);
  Matrix data(120, 8);
  for (std::size_t r = 0; r < data.rows(); ++r) {
    const float base = (r % 2 == 0) ? 0.0f : 4.0f;
    for (float& v : data.row(r)) v = base + static_cast<float>(rng.normal(0.0, 0.2));
  }
  write_raw_matrix(path("data.raw"), data.view());

  ASSERT_EQ(run(tool("mrsom_train") + " --matrix " + path("data.raw") +
                " --dim 8 --rows 6 --cols 6 --epochs 8 --ranks 4 --out " + path("som")),
            0);
  ASSERT_TRUE(fs::exists(path("som.cb")));
  ASSERT_TRUE(fs::exists(path("som_umatrix.pgm")));

  const som::Codebook cb = som::load_codebook(path("som.cb"));
  EXPECT_EQ(cb.grid().rows, 6u);
  EXPECT_EQ(cb.dim(), 8u);
  EXPECT_LT(som::quantization_error(cb, data.view()), 1.0);
}

TEST_F(ToolsTest, SomTrainerOnFastaTetra) {
  Rng rng(13);
  std::vector<blast::Sequence> frags;
  for (int i = 0; i < 60; ++i) {
    frags.push_back(blast::random_sequence(rng, "f" + std::to_string(i), 800,
                                           blast::SeqType::Dna));
  }
  blast::write_fasta_file(path("frags.fa"), frags, blast::SeqType::Dna);
  ASSERT_EQ(run(tool("mrsom_train") + " --fasta " + path("frags.fa") +
                " --tetra --rows 5 --cols 5 --epochs 5 --ranks 3 --init random --out " +
                path("tsom")),
            0);
  const som::Codebook cb = som::load_codebook(path("tsom.cb"));
  EXPECT_EQ(cb.dim(), 256u);
}

TEST_F(ToolsTest, CodebookRoundTrip) {
  som::Codebook cb(som::SomGrid{3, 4}, 5);
  Rng rng(14);
  cb.init_random(rng);
  som::save_codebook(path("x.cb"), cb);
  const som::Codebook back = som::load_codebook(path("x.cb"));
  EXPECT_EQ(back.grid().rows, 3u);
  EXPECT_EQ(back.grid().cols, 4u);
  EXPECT_EQ(back.dim(), 5u);
  for (std::size_t i = 0; i < cb.weights().size(); ++i) {
    EXPECT_FLOAT_EQ(back.weights().data()[i], cb.weights().data()[i]);
  }
}

TEST_F(ToolsTest, CorruptCodebookRejected) {
  std::ofstream(path("junk.cb")) << "not a codebook";
  EXPECT_THROW(som::load_codebook(path("junk.cb")), InputError);
}

// ISSUE 7 satellites: --timeseries-out / --metrics-out without --report,
// and the timeseries + phase-skew sections of --report-json.
TEST_F(ToolsTest, ObservabilityOutputsOnGraphDriver) {
  // --metrics-out and --timeseries-out alone (no --report): raw registry
  // dump and a JSONL stream of sampled channels.
  ASSERT_EQ(run(tool("mrgraph_build") + " --nseq 32 --family 8 --ranks 4" +
                " --compute-cell 1e-7 --metrics-out " + path("metrics.json") +
                " --timeseries-out " + path("ts.jsonl")),
            0);
  const std::string metrics = slurp(path("metrics.json"));
  EXPECT_NE(metrics.find("\"counters\""), std::string::npos);
  EXPECT_NE(metrics.find("mrmpi.map_tasks"), std::string::npos);
  const std::string ts = slurp(path("ts.jsonl"));
  EXPECT_NE(ts.find("\"channel\":\"busy_seconds\""), std::string::npos);
  EXPECT_NE(ts.find("\"channel\":\"mrmpi.tasks_done\""), std::string::npos);

  // --report-json embeds the same data plus the new skew analysis.
  ASSERT_EQ(run(tool("mrgraph_build") + " --nseq 32 --family 8 --ranks 4" +
                " --compute-cell 1e-7 --report-json " + path("report.json")),
            0);
  const std::string report = slurp(path("report.json"));
  EXPECT_NE(report.find("\"phase_skew\":"), std::string::npos);
  EXPECT_NE(report.find("\"stragglers\":"), std::string::npos);
  EXPECT_NE(report.find("\"timeseries\":"), std::string::npos);
  EXPECT_NE(report.find("\"metrics\":"), std::string::npos);
}

// ISSUE 7 acceptance: a slow: fault plan must surface the injected rank in
// the stragglers section with a compute-bound dominant attribution (the
// slow rank spends its extra time in stretched compute charges).
TEST_F(ToolsTest, SlowFaultRankNamedInStragglers) {
  ASSERT_EQ(run(tool("mrgraph_build") + " --nseq 48 --family 8 --ranks 4" +
                " --compute-cell 1e-7 --faults \"slow:rank=2,factor=8\"" +
                " --report-json " + path("report.json")),
            0);
  const std::string report = slurp(path("report.json"));
  const auto at = report.find("\"stragglers\":[{\"rank\":2,");
  ASSERT_NE(at, std::string::npos) << report;
  const std::string entry = report.substr(at, report.find(']', at) - at);
  EXPECT_NE(entry.find("\"dominant\":\"compute\""), std::string::npos) << entry;
}

// ISSUE 10 satellite: crash/kill fault plans are legal on mrgraph_build now
// that commits are sharded — a mid-map crash (even of rank 0, the
// traditional master) must still yield a byte-identical similarity graph.
TEST_F(ToolsTest, GraphMidMapCrashYieldsByteIdenticalEdges) {
  // --block 4 on 32 sequences gives 36 block-pair tasks whose start-time
  // polls span the map window, so a t=0.2 crash lands mid-map.
  const std::string base = tool("mrgraph_build") +
                           " --nseq 32 --family 8 --block 4 --ranks 4" +
                           " --scheduler steal --compute-cell 1e-7";
  ASSERT_EQ(run(base + " --out-dir " + path("edges_clean")), 0);

  ASSERT_EQ(run(base + " --out-dir " + path("edges_crash") +
                " --faults \"crash:rank=2,t=0.2\""),
            0);
  // Rank 0's crash exercises ledger-shard failover rather than plain
  // task retry; it is only accepted under the sharded steal scheduler.
  ASSERT_EQ(run(base + " --out-dir " + path("edges_master_crash") +
                " --faults \"crash:rank=0,t=0.2,mode=permanent\"" +
                " --checkpoint-dir " + path("graph_ckpt")),
            0);

  for (int r = 0; r < 4; ++r) {
    const std::string name = "edges." + std::to_string(r) + ".tsv";
    const std::string clean = slurp(path("edges_clean") + "/" + name);
    ASSERT_FALSE(clean.empty()) << name;
    EXPECT_EQ(slurp(path("edges_crash") + "/" + name), clean) << name;
    EXPECT_EQ(slurp(path("edges_master_crash") + "/" + name), clean) << name;
  }

  // Without a failover-capable scheduler the same plans are rejected
  // up front instead of failing mid-run.
  EXPECT_NE(run(tool("mrgraph_build") + " --nseq 32 --family 8 --ranks 4" +
                " --faults \"crash:rank=1,t=0.2\""),
            0);
}

// ISSUE 7 satellite: installing the structured event-log sink must leave
// the plain-text stderr stream byte-identical. The empty checkpoint dir
// with --resume deterministically emits one Warn line to compare.
TEST_F(ToolsTest, LogJsonKeepsStderrByteIdentical) {
  Rng rng(21);
  std::vector<blast::Sequence> frags;
  for (int i = 0; i < 30; ++i) {
    frags.push_back(blast::random_sequence(rng, "f" + std::to_string(i), 600,
                                           blast::SeqType::Dna));
  }
  blast::write_fasta_file(path("frags.fa"), frags, blast::SeqType::Dna);
  const std::string train = tool("mrsom_train") + " --fasta " + path("frags.fa") +
                            " --tetra --rows 4 --cols 4 --epochs 2 --ranks 3" +
                            " --checkpoint-dir " + path("ckpt") + " --resume" +
                            " --out " + path("som");

  ASSERT_EQ(run(train), 0);  // cleanup_on_success leaves ckpt/ absent again
  const std::string plain_stderr = stderr_text();
  ASSERT_NE(plain_stderr.find("no checkpoint found"), std::string::npos);

  ASSERT_EQ(run(train + " --log-json " + path("events.jsonl")), 0);
  EXPECT_EQ(stderr_text(), plain_stderr);  // byte-identical with the sink on

  const std::string events = slurp(path("events.jsonl"));
  EXPECT_NE(events.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(events.find("no checkpoint found"), std::string::npos);
}

// ISSUE 7 acceptance: the bench matrix round-trips through compare against
// itself, and a perturbed metric beyond tolerance makes compare fail.
TEST_F(ToolsTest, BenchRoundTripAndPerturbedCompareFails) {
  ASSERT_EQ(run(tool("mrbio_bench") + " run --suite smoke --out " + path("bench.json")),
            0);
  ASSERT_EQ(run(tool("mrbio_bench") + " compare --baseline " + path("bench.json") +
                " --candidate " + path("bench.json")),
            0);
  EXPECT_NE(stdout_text().find("all metrics within tolerance"), std::string::npos);

  // Push the first makespan far outside its 5% tolerance.
  std::string perturbed = slurp(path("bench.json"));
  const auto key = perturbed.find("\"makespan\":");
  ASSERT_NE(key, std::string::npos);
  const auto value_at = key + std::string("\"makespan\":").size();
  perturbed.replace(value_at, perturbed.find(',', value_at) - value_at, "1e9");
  std::ofstream(path("perturbed.json")) << perturbed;
  EXPECT_NE(run(tool("mrbio_bench") + " compare --baseline " + path("bench.json") +
                " --candidate " + path("perturbed.json")),
            0);
  EXPECT_NE(stdout_text().find("REGRESSION"), std::string::npos);
}

}  // namespace
}  // namespace mrbio
