// Property tests for the simulation engine under randomized traffic:
// timing invariants, FIFO channels, conservation of messages and full
// determinism of the virtual-time trace.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <vector>

#include "common/rng.hpp"
#include "common/serialize.hpp"
#include "sim/engine.hpp"

namespace mrbio::sim {
namespace {

struct TrafficCase {
  std::uint64_t seed;
  int nprocs;
  int messages_per_rank;
};

struct Record {
  int src;
  int dst;
  double sent;
  double arrival;
  std::uint64_t payload;
};

/// Every rank sends `k` messages around a ring with random sizes and
/// random compute gaps, then receives the `k` messages addressed to it.
/// Returns all receive records.
std::vector<Record> run_traffic(const TrafficCase& c) {
  EngineConfig config;
  config.nprocs = c.nprocs;
  config.stack_bytes = 256 * 1024;
  Engine engine(config);
  std::mutex mu;
  std::vector<Record> records;
  engine.run([&](Process& p) {
    Rng rng(c.seed ^ static_cast<std::uint64_t>(p.rank()) * 7919);
    const int dst = (p.rank() + 1) % p.size();
    for (int m = 0; m < c.messages_per_rank; ++m) {
      p.compute(rng.uniform(0.0, 0.01));
      ByteWriter w;
      const std::uint64_t marker =
          static_cast<std::uint64_t>(p.rank()) * 1'000'000 + static_cast<std::uint64_t>(m);
      w.put(marker);
      const auto extra = rng.below(2'000);
      std::vector<std::byte> payload = w.take();
      payload.resize(payload.size() + extra);
      p.send(dst, 1, std::move(payload));
    }
    const int src = (p.rank() - 1 + p.size()) % p.size();
    for (int m = 0; m < c.messages_per_rank; ++m) {
      const Message msg = p.recv(src, 1);
      ByteReader r(msg.payload);
      Record rec{msg.source, p.rank(), msg.sent, msg.arrival, r.get<std::uint64_t>()};
      std::lock_guard<std::mutex> lock(mu);
      records.push_back(rec);
    }
  });
  return records;
}

class TrafficP : public ::testing::TestWithParam<TrafficCase> {};

TEST_P(TrafficP, AllMessagesDeliveredExactlyOnce) {
  const TrafficCase c = GetParam();
  const auto records = run_traffic(c);
  ASSERT_EQ(records.size(),
            static_cast<std::size_t>(c.nprocs) * static_cast<std::size_t>(c.messages_per_rank));
  std::map<std::uint64_t, int> seen;
  for (const Record& r : records) seen[r.payload]++;
  for (const auto& [marker, count] : seen) {
    EXPECT_EQ(count, 1) << "marker " << marker;
  }
}

TEST_P(TrafficP, ArrivalRespectsLatencyAndMonotonicity) {
  const TrafficCase c = GetParam();
  const auto records = run_traffic(c);
  const NetworkModel net;  // engine ran with defaults
  for (const Record& r : records) {
    EXPECT_GE(r.arrival, r.sent + net.latency - 1e-15);
  }
}

TEST_P(TrafficP, FifoPerChannelInMarkerOrder) {
  const TrafficCase c = GetParam();
  const auto records = run_traffic(c);
  // Receives from one src must observe markers in send order.
  std::map<std::pair<int, int>, std::uint64_t> last;
  for (const Record& r : records) {
    const auto key = std::make_pair(r.src, r.dst);
    const auto it = last.find(key);
    if (it != last.end()) {
      EXPECT_LT(it->second, r.payload) << "channel " << r.src << "->" << r.dst;
    }
    last[key] = r.payload;
  }
}

TEST_P(TrafficP, TraceIsBitIdenticalAcrossRuns) {
  const TrafficCase c = GetParam();
  const auto a = run_traffic(c);
  const auto b = run_traffic(c);
  ASSERT_EQ(a.size(), b.size());
  // Sort by (dst, marker) since cross-rank record interleaving in the
  // collection vector depends on lock acquisition, not on the simulation.
  auto key = [](const Record& r) { return std::make_tuple(r.dst, r.payload); };
  auto sa = a;
  auto sb = b;
  std::sort(sa.begin(), sa.end(),
            [&](const Record& x, const Record& y) { return key(x) < key(y); });
  std::sort(sb.begin(), sb.end(),
            [&](const Record& x, const Record& y) { return key(x) < key(y); });
  for (std::size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].src, sb[i].src);
    EXPECT_DOUBLE_EQ(sa[i].sent, sb[i].sent);
    EXPECT_DOUBLE_EQ(sa[i].arrival, sb[i].arrival);
  }
}

INSTANTIATE_TEST_SUITE_P(Traffic, TrafficP,
                         ::testing::Values(TrafficCase{1, 2, 50}, TrafficCase{2, 5, 30},
                                           TrafficCase{3, 16, 20}, TrafficCase{4, 64, 5},
                                           TrafficCase{5, 3, 200}));

class CollectiveStressP : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveStressP, RepeatedMixedCollectivesStayConsistent) {
  const int p = GetParam();
  EngineConfig config;
  config.nprocs = p;
  config.stack_bytes = 256 * 1024;
  Engine engine(config);
  engine.run([&](Process& proc) {
    mrbio::Rng rng(900 + static_cast<std::uint64_t>(proc.rank()));
    // Collectives interleaved with point-to-point noise must not corrupt
    // each other thanks to tag separation and FIFO channels.
    for (int iter = 0; iter < 10; ++iter) {
      proc.compute(rng.uniform(0.0, 0.001));
      if (proc.rank() > 0) proc.send(0, 5, {});
      // Simple sum over ranks implemented manually via ring reduction.
      // (Uses plain sends to stress the same machinery as Comm.)
      std::uint64_t acc = static_cast<std::uint64_t>(proc.rank());
      if (proc.rank() != 0) {
        ByteWriter w;
        w.put(acc);
        proc.send(0, 6, w.take());
      } else {
        // Receive per explicit source: the FIFO channel guarantee keeps
        // iterations separated (a wildcard here would mix fast senders'
        // next-iteration messages into this sum -- a real MPI pitfall).
        for (int s = 1; s < proc.size(); ++s) {
          const Message m = proc.recv(s, 6);
          ByteReader r(m.payload);
          acc += r.get<std::uint64_t>();
        }
        EXPECT_EQ(acc, static_cast<std::uint64_t>(proc.size()) *
                           static_cast<std::uint64_t>(proc.size() - 1) / 2);
      }
    }
    if (proc.rank() == 0) {
      for (int iter = 0; iter < 10; ++iter) {
        for (int s = 1; s < proc.size(); ++s) proc.recv(Process::kAnySource, 5);
      }
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveStressP, ::testing::Values(2, 4, 9, 32));

}  // namespace
}  // namespace mrbio::sim
