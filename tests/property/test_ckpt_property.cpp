// Property: for ANY kill time and any paging pressure, killing a
// checkpointed BLAST run and resuming it yields hit files byte-identical
// to a fault-free run of the same configuration. Sweeps kill times across
// the run and a tiny out-of-core memory budget so spill files, paging,
// and the commit ledger all interleave with the kill.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/sequence.hpp"
#include "ckpt/ckpt.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "rt/backend.hpp"
#include <unistd.h>

namespace mrbio {
namespace {

constexpr int kRanks = 4;

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::vector<std::string> rank_outputs(const std::string& out_dir) {
  std::vector<std::string> bytes(kRanks);
  for (int r = 0; r < kRanks; ++r) {
    const std::string p = out_dir + "/hits." + std::to_string(r) + ".tsv";
    bytes[static_cast<std::size_t>(r)] =
        std::filesystem::exists(p) ? slurp(p) : std::string();
  }
  return bytes;
}

struct Bed {
  std::filesystem::path dir;
  std::vector<std::vector<blast::Sequence>> query_blocks;
  blast::DbInfo db;

  Bed() {
    static int counter = 0;
    dir = std::filesystem::temp_directory_path() /
          ("mrbio_ckpt_prop_" + std::to_string(::getpid()) + "_" +
           std::to_string(counter++));
    std::filesystem::remove_all(dir);
    std::filesystem::create_directories(dir);
    Rng rng(424242);
    std::vector<blast::Sequence> genome;
    for (int g = 0; g < 3; ++g) {
      genome.push_back(blast::random_sequence(rng, "g" + std::to_string(g), 600,
                                              blast::SeqType::Dna));
    }
    db = blast::build_db(genome, (dir / "db").string(), blast::SeqType::Dna, 1000);
    std::vector<blast::Sequence> queries;
    for (const auto& f : blast::shred({genome[0], genome[2]}, 220, 80)) {
      queries.push_back(blast::mutate(rng, f, f.id, 0.02, blast::SeqType::Dna));
    }
    for (std::size_t i = 0; i < queries.size(); i += 2) {
      query_blocks.emplace_back(
          queries.begin() + static_cast<std::ptrdiff_t>(i),
          queries.begin() +
              static_cast<std::ptrdiff_t>(std::min(i + 2, queries.size())));
    }
  }
  ~Bed() { std::filesystem::remove_all(dir); }

  mrblast::RealRunConfig config(const std::string& out_name,
                                ckpt::Checkpointer* cp) const {
    mrblast::RealRunConfig config;
    config.query_blocks = query_blocks;
    config.partition_paths = db.volume_paths;
    config.options.filter_low_complexity = false;
    config.options.evalue_cutoff = 1e-6;
    config.output_dir = (dir / out_name).string();
    config.virtual_seconds_per_cell = 1e-8;
    config.blocks_per_iteration = 2;
    // Tiny resident budget: force the out-of-core paging path so spill
    // files and checkpoint logs coexist under the kill.
    config.memsize_bytes = 2048;
    config.page_bytes = 1024;
    config.page_to_disk = true;
    config.checkpointer = cp;
    return config;
  }
};

// Runs the config; returns virtual elapsed seconds, or -1 if killed.
double run(const mrblast::RealRunConfig& config, fault::Injector* injector) {
  rt::LaunchConfig lc;
  lc.backend = rt::Backend::Sim;
  lc.nranks = kRanks;
  lc.injector = injector;
  lc.checkpointing = config.checkpointer != nullptr;
  try {
    return rt::launch(lc, [&](rt::Rank& rank) {
             mpi::Comm comm(rank);
             (void)mrblast::run_blast_mr(comm, config);
           })
        .elapsed;
  } catch (const Error&) {
    EXPECT_NE(injector, nullptr) << "fault-free run threw";
    return -1.0;
  }
}

TEST(CkptProperty, KillAnywhereThenResumeIsByteIdenticalUnderTinyMemory) {
  Bed bed;

  const double elapsed = run(bed.config("out_clean", nullptr), nullptr);
  ASSERT_GT(elapsed, 0.0);
  const auto expected = rank_outputs((bed.dir / "out_clean").string());

  // Sweep kill times across the whole run, including one past the end
  // (the job finishes before the kill fires — resume of a completed,
  // cleaned-up checkpoint dir must behave as a fresh run).
  Rng rng(7);
  std::vector<double> fractions{0.05, 0.95};
  for (int i = 0; i < 4; ++i) fractions.push_back(rng.uniform(0.1, 0.9));
  int killed_runs = 0;

  for (std::size_t trial = 0; trial < fractions.size(); ++trial) {
    SCOPED_TRACE("kill fraction " + std::to_string(fractions[trial]));
    const std::string ckpt_dir = (bed.dir / ("ckpt" + std::to_string(trial))).string();
    const std::string out_name = "out_trial" + std::to_string(trial);

    ckpt::CheckpointConfig cc;
    cc.dir = ckpt_dir;
    cc.interval = 0.0;
    fault::Injector killer(fault::FaultPlan::parse(
        "kill:t=" + std::to_string(elapsed * fractions[trial])));
    bool was_killed = false;
    {
      ckpt::Checkpointer cp(cc, &killer);
      cp.open("prop");
      was_killed = run(bed.config(out_name, &cp), &killer) < 0.0;
      if (!was_killed) cp.cleanup_on_success();
    }

    if (was_killed) {
      ++killed_runs;
      cc.resume = true;
      ckpt::Checkpointer cp(cc, nullptr);
      cp.open("prop");
      ASSERT_GE(run(bed.config(out_name, &cp), nullptr), 0.0);
      cp.cleanup_on_success();
    }
    EXPECT_EQ(rank_outputs((bed.dir / out_name).string()), expected);
  }
  // The sweep is vacuous if no kill ever landed mid-run.
  EXPECT_GT(killed_runs, 0);
}

}  // namespace
}  // namespace mrbio
