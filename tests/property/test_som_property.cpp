// Property tests for the SOM batch equation against an independent
// brute-force implementation of Eq. 5.
#include <gtest/gtest.h>

#include <cmath>

#include "som/som.hpp"

namespace mrbio::som {
namespace {

struct SomCase {
  std::uint64_t seed;
  std::size_t rows;
  std::size_t cols;
  std::size_t dim;
  std::size_t n;
  double sigma;
};

class BatchEquationP : public ::testing::TestWithParam<SomCase> {};

TEST_P(BatchEquationP, AccumulatorMatchesDirectFormula) {
  const SomCase c = GetParam();
  Rng rng(c.seed);
  Matrix data(c.n, c.dim);
  for (std::size_t r = 0; r < c.n; ++r) {
    for (float& v : data.row(r)) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  }
  Codebook cb(SomGrid{c.rows, c.cols}, c.dim);
  cb.init_random(rng);

  // Production path.
  Codebook updated = cb;
  BatchAccumulator acc(cb.grid(), c.dim);
  for (std::size_t r = 0; r < c.n; ++r) acc.add(cb, data.row(r), c.sigma);
  acc.apply(updated);

  // Independent direct evaluation of Eq. 5 in double precision.
  const std::size_t cells = cb.grid().cells();
  std::vector<std::vector<double>> num(cells, std::vector<double>(c.dim, 0.0));
  std::vector<double> den(cells, 0.0);
  for (std::size_t r = 0; r < c.n; ++r) {
    const auto x = data.row(r);
    // Brute-force BMU.
    std::size_t bmu = 0;
    double best = 1e300;
    for (std::size_t j = 0; j < cells; ++j) {
      double d = 0.0;
      const auto w = cb.vector(j);
      for (std::size_t i = 0; i < c.dim; ++i) {
        d += (static_cast<double>(x[i]) - w[i]) * (static_cast<double>(x[i]) - w[i]);
      }
      if (d < best) {
        best = d;
        bmu = j;
      }
    }
    for (std::size_t j = 0; j < cells; ++j) {
      const double dr = static_cast<double>(cb.grid().row_of(bmu)) -
                        static_cast<double>(cb.grid().row_of(j));
      const double dc = static_cast<double>(cb.grid().col_of(bmu)) -
                        static_cast<double>(cb.grid().col_of(j));
      const double h = std::exp(-(dr * dr + dc * dc) / (2.0 * c.sigma * c.sigma));
      for (std::size_t i = 0; i < c.dim; ++i) num[j][i] += h * x[i];
      den[j] += h;
    }
  }
  for (std::size_t j = 0; j < cells; ++j) {
    for (std::size_t i = 0; i < c.dim; ++i) {
      const double expected = den[j] > 0.0 ? num[j][i] / den[j] : cb.vector(j)[i];
      EXPECT_NEAR(updated.vector(j)[i], expected, 2e-3)
          << "cell " << j << " dim " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, BatchEquationP,
    ::testing::Values(SomCase{1, 3, 3, 2, 20, 1.0}, SomCase{2, 5, 4, 3, 50, 2.0},
                      SomCase{3, 2, 8, 5, 30, 0.5}, SomCase{4, 6, 6, 1, 40, 3.0},
                      SomCase{5, 1, 10, 4, 25, 1.5}, SomCase{6, 7, 7, 8, 60, 2.5}));

class UMatrixP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UMatrixP, UMatrixMatchesManualNeighbourAverages) {
  Rng rng(GetParam());
  Codebook cb(SomGrid{4, 5}, 3);
  cb.init_random(rng);
  const Matrix u = u_matrix(cb);
  // Check a corner (2 neighbours), an edge (3) and an interior cell (4).
  struct Probe {
    std::size_t r, c;
    std::vector<std::pair<std::size_t, std::size_t>> neigh;
  };
  const std::vector<Probe> probes = {
      {0, 0, {{0, 1}, {1, 0}}},
      {0, 2, {{0, 1}, {0, 3}, {1, 2}}},
      {2, 2, {{1, 2}, {3, 2}, {2, 1}, {2, 3}}},
  };
  for (const Probe& p : probes) {
    double sum = 0.0;
    for (const auto& [nr, nc] : p.neigh) {
      sum += std::sqrt(dist2(cb.vector(p.r * 5 + p.c), cb.vector(nr * 5 + nc)));
    }
    EXPECT_NEAR(u(p.r, p.c), sum / static_cast<double>(p.neigh.size()), 1e-5);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UMatrixP, ::testing::Range<std::uint64_t>(10, 16));

class SigmaMonotoneP : public ::testing::TestWithParam<std::size_t> {};

TEST_P(SigmaMonotoneP, ScheduleIsMonotoneAndHitsEndpoints) {
  SomParams p;
  p.epochs = GetParam();
  p.sigma_start = 12.0;
  p.sigma_end = 0.8;
  const SomGrid g{30, 30};
  EXPECT_DOUBLE_EQ(sigma_at(p, g, 0), 12.0);
  if (p.epochs > 1) {
    EXPECT_NEAR(sigma_at(p, g, p.epochs - 1), 0.8, 1e-9);
  }
  for (std::size_t e = 1; e < p.epochs; ++e) {
    EXPECT_LT(sigma_at(p, g, e), sigma_at(p, g, e - 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Epochs, SigmaMonotoneP, ::testing::Values(2, 3, 5, 10, 50));

}  // namespace
}  // namespace mrbio::som
