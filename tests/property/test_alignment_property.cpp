// Property tests for the alignment kernels against brute-force reference
// implementations (independent code paths, no X-drop pruning).
#include <gtest/gtest.h>

#include <algorithm>
#include <climits>

#include "blast/extend.hpp"
#include "blast/sequence.hpp"

namespace mrbio::blast {
namespace {

constexpr int kNegInf = INT_MIN / 4;

/// Reference Gotoh DP: best score over all (i, j) of aligning prefixes
/// q[0..i) / s[0..j) with the alignment anchored at (0, 0) -- exactly what
/// a rightward gapped extension from seed (0, 0) maximizes.
int reference_extension_score(std::span<const std::uint8_t> q,
                              std::span<const std::uint8_t> s, const Scorer& sc) {
  const std::size_t n = q.size();
  const std::size_t m = s.size();
  const int open1 = sc.gap_open() + sc.gap_extend();
  const int ext = sc.gap_extend();
  std::vector<std::vector<int>> H(n + 1, std::vector<int>(m + 1, kNegInf));
  std::vector<std::vector<int>> E(n + 1, std::vector<int>(m + 1, kNegInf));
  std::vector<std::vector<int>> F(n + 1, std::vector<int>(m + 1, kNegInf));
  H[0][0] = 0;
  for (std::size_t j = 1; j <= m; ++j) {
    E[0][j] = std::max(H[0][j - 1] - open1, E[0][j - 1] - ext);
    H[0][j] = E[0][j];
  }
  for (std::size_t i = 1; i <= n; ++i) {
    F[i][0] = std::max(H[i - 1][0] - open1, F[i - 1][0] - ext);
    H[i][0] = F[i][0];
    for (std::size_t j = 1; j <= m; ++j) {
      E[i][j] = std::max(H[i][j - 1] - open1, E[i][j - 1] - ext);
      F[i][j] = std::max(H[i - 1][j] - open1, F[i - 1][j] - ext);
      const int diag = H[i - 1][j - 1] + sc.score(q[i - 1], s[j - 1]);
      H[i][j] = std::max({diag, E[i][j], F[i][j]});
    }
  }
  int best = 0;
  for (std::size_t i = 0; i <= n; ++i) {
    for (std::size_t j = 0; j <= m; ++j) best = std::max(best, H[i][j]);
  }
  return best;
}

/// Best contiguous (ungapped) segment through the seed columns, brute force.
int reference_ungapped_score(std::span<const std::uint8_t> q,
                             std::span<const std::uint8_t> s, std::size_t q_pos,
                             std::size_t s_pos, std::size_t word_len, const Scorer& sc) {
  // All segments on the seed diagonal covering [q_pos, q_pos + word_len).
  const std::ptrdiff_t diag = static_cast<std::ptrdiff_t>(q_pos) -
                              static_cast<std::ptrdiff_t>(s_pos);
  int best = kNegInf;
  for (std::size_t a = 0; a <= q_pos; ++a) {
    const std::ptrdiff_t sa = static_cast<std::ptrdiff_t>(a) - diag;
    if (sa < 0) continue;
    for (std::size_t b = q_pos + word_len; b <= q.size(); ++b) {
      const std::ptrdiff_t sb = static_cast<std::ptrdiff_t>(b) - diag;
      if (sb > static_cast<std::ptrdiff_t>(s.size())) break;
      int score = 0;
      for (std::size_t k = a; k < b; ++k) {
        score += sc.score(q[k], s[static_cast<std::size_t>(
                                 static_cast<std::ptrdiff_t>(k) - diag)]);
      }
      best = std::max(best, score);
    }
  }
  return best;
}

struct AlignCase {
  std::uint64_t seed;
  std::size_t len_q;
  std::size_t len_s;
  double mutation;
  bool protein;
};

class GappedVsReferenceP : public ::testing::TestWithParam<AlignCase> {};

TEST_P(GappedVsReferenceP, ExtensionFromOriginMatchesFullDp) {
  const AlignCase c = GetParam();
  Rng rng(c.seed);
  const SeqType type = c.protein ? SeqType::Protein : SeqType::Dna;
  const Scorer sc = c.protein ? Scorer::blosum62() : Scorer::dna(1, -2, 2, 1);

  // Related sequences: mutate a common core so alignments are non-trivial.
  const Sequence base = random_sequence(rng, "b", std::max(c.len_q, c.len_s), type);
  Sequence q = mutate(rng, base, "q", c.mutation, type);
  Sequence s = mutate(rng, base, "s", c.mutation, type);
  q.data.resize(c.len_q);
  s.data.resize(c.len_s);

  const int reference = reference_extension_score(q.data, s.data, sc);
  // Huge X-drop: no pruning, the extension must find the DP optimum.
  const GappedAlignment aln = extend_gapped(q.data, s.data, 0, 0, sc, 1 << 20);
  EXPECT_EQ(aln.score, reference);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCases, GappedVsReferenceP,
    ::testing::Values(AlignCase{1, 20, 20, 0.1, false}, AlignCase{2, 35, 30, 0.2, false},
                      AlignCase{3, 50, 50, 0.05, false}, AlignCase{4, 18, 40, 0.3, false},
                      AlignCase{5, 64, 64, 0.15, false}, AlignCase{6, 25, 25, 0.1, true},
                      AlignCase{7, 40, 38, 0.25, true}, AlignCase{8, 60, 60, 0.4, true},
                      AlignCase{9, 10, 60, 0.2, false}, AlignCase{10, 33, 31, 0.5, true},
                      AlignCase{11, 5, 5, 0.0, false}, AlignCase{12, 80, 75, 0.12, false}));

class UngappedVsReferenceP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UngappedVsReferenceP, ExtensionMatchesBruteForceSegment) {
  Rng rng(GetParam());
  const Scorer sc = Scorer::dna(1, -2);
  const Sequence base = random_sequence(rng, "b", 60, SeqType::Dna);
  const Sequence q = mutate(rng, base, "q", 0.15, SeqType::Dna);
  const Sequence s = mutate(rng, base, "s", 0.15, SeqType::Dna);

  // A real word hit is an exact match; the brute-force segment search
  // below assumes the segment covers the whole word, which only holds
  // when every word column scores positively.
  Sequence s_exact = s;
  const std::size_t pos = 20 + rng.below(10);
  const std::size_t word = 4;
  for (std::size_t k = 0; k < word; ++k) s_exact.data[pos + k] = q.data[pos + k];
  const Sequence& s_ref = s_exact;
  const int reference = reference_ungapped_score(q.data, s_ref.data, pos, pos, word, sc);
  const UngappedSegment seg =
      extend_ungapped(q.data, s_ref.data, pos, pos, word, sc, 1 << 20);
  EXPECT_EQ(seg.score, reference);
}

INSTANTIATE_TEST_SUITE_P(Seeds, UngappedVsReferenceP,
                         ::testing::Range<std::uint64_t>(100, 120));

class GappedScriptP : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GappedScriptP, EditScriptRescoresToReportedScore) {
  // Property: replaying the edit script reproduces exactly the reported
  // raw score (catches any traceback/score disagreement).
  Rng rng(GetParam());
  const Scorer sc = Scorer::dna(2, -3, 5, 2);
  const Sequence base = random_sequence(rng, "b", 120, SeqType::Dna);
  const Sequence q = mutate(rng, base, "q", 0.1, SeqType::Dna);
  const Sequence s = mutate(rng, base, "s", 0.1, SeqType::Dna);
  const std::size_t seed_pos = 60;
  const GappedAlignment aln = extend_gapped(q.data, s.data, seed_pos, seed_pos, sc, 40);

  int rescore = 0;
  std::size_t qi = aln.q_start;
  std::size_t si = aln.s_start;
  for (const EditOp& op : aln.ops) {
    switch (op.type) {
      case EditOp::Type::Match:
        for (std::uint32_t k = 0; k < op.len; ++k) {
          rescore += sc.score(q.data[qi + k], s.data[si + k]);
        }
        qi += op.len;
        si += op.len;
        break;
      case EditOp::Type::InsertQ:
        rescore -= sc.gap_open() + static_cast<int>(op.len) * sc.gap_extend();
        qi += op.len;
        break;
      case EditOp::Type::InsertS:
        rescore -= sc.gap_open() + static_cast<int>(op.len) * sc.gap_extend();
        si += op.len;
        break;
    }
  }
  EXPECT_EQ(rescore, aln.score);
  EXPECT_EQ(qi, aln.q_end);
  EXPECT_EQ(si, aln.s_end);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GappedScriptP, ::testing::Range<std::uint64_t>(200, 225));

}  // namespace
}  // namespace mrbio::blast
