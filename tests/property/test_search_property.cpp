// Parameter-sweep property tests for the search pipeline: a planted
// homolog must be found across word sizes, scoring systems and X-drop
// settings, and never ranked below chance matches; E-values must behave
// monotonically across these settings.
#include <gtest/gtest.h>

#include <filesystem>

#include "blast/search.hpp"
#include <unistd.h>

namespace mrbio::blast {
namespace {

struct Fixture {
  std::shared_ptr<const DbVolume> volume;
  Sequence query;          ///< mutated copy of a DB sequence
  std::string target_id;   ///< the planted homolog's id
};

Fixture make_fixture(std::uint64_t seed, double divergence) {
  static int counter = 0;
  const auto dir = std::filesystem::temp_directory_path() /
                   ("mrbio_sweep_" + std::to_string(::getpid()));
  std::filesystem::create_directories(dir);
  Rng rng(seed);
  std::vector<Sequence> db;
  for (int i = 0; i < 6; ++i) {
    db.push_back(random_sequence(rng, "bg" + std::to_string(i), 700, SeqType::Dna));
  }
  const Sequence parent = random_sequence(rng, "parent", 500, SeqType::Dna);
  db.push_back(mutate(rng, parent, "planted", divergence, SeqType::Dna));
  const DbInfo info = build_db(db, (dir / ("f" + std::to_string(counter++))).string(),
                               SeqType::Dna, 1ull << 40);
  Fixture f;
  f.volume = std::make_shared<DbVolume>(DbVolume::load(info.volume_paths[0]));
  f.query = parent;
  f.query.id = "q";
  f.target_id = "planted";
  return f;
}

class WordSizeP : public ::testing::TestWithParam<int> {};

TEST_P(WordSizeP, PlantedHomologFoundAtEveryWordSize) {
  const Fixture f = make_fixture(500, 0.08);
  SearchOptions opts;
  opts.word_size = GetParam();
  opts.filter_low_complexity = false;
  opts.evalue_cutoff = 1e-10;
  BlastSearcher searcher(f.volume, opts);
  const auto results = searcher.search({f.query});
  ASSERT_FALSE(results[0].hsps.empty()) << "word size " << GetParam();
  EXPECT_EQ(results[0].hsps.front().subject_id, f.target_id);
}

INSTANTIATE_TEST_SUITE_P(WordSizes, WordSizeP, ::testing::Values(7, 9, 11, 12, 13));

TEST(SearchSweep, SmallerWordsFindMoreOrEqualSeeds) {
  const Fixture f = make_fixture(501, 0.15);
  std::uint64_t prev_hits = 0;
  for (const int w : {13, 11, 9, 7}) {
    SearchOptions opts;
    opts.word_size = w;
    opts.filter_low_complexity = false;
    BlastSearcher searcher(f.volume, opts);
    searcher.search({f.query});
    const std::uint64_t word_hits = searcher.last_stats().word_hits;
    EXPECT_GE(word_hits, prev_hits) << "w=" << w;
    prev_hits = word_hits;
  }
}

struct ScoringCase {
  int match;
  int mismatch;
  int gap_open;
  int gap_extend;
};

class ScoringP : public ::testing::TestWithParam<ScoringCase> {};

TEST_P(ScoringP, PlantedHomologFoundUnderEveryScoring) {
  const ScoringCase c = GetParam();
  const Fixture f = make_fixture(502, 0.1);
  SearchOptions opts;
  opts.match = c.match;
  opts.mismatch = c.mismatch;
  opts.gap_open = c.gap_open;
  opts.gap_extend = c.gap_extend;
  opts.filter_low_complexity = false;
  opts.evalue_cutoff = 1e-10;
  BlastSearcher searcher(f.volume, opts);
  const auto results = searcher.search({f.query});
  ASSERT_FALSE(results[0].hsps.empty());
  EXPECT_EQ(results[0].hsps.front().subject_id, f.target_id);
  // The top hit must cover most of the query.
  const Hsp& top = results[0].hsps.front();
  EXPECT_GT(top.q_end - top.q_start, 400u);
}

INSTANTIATE_TEST_SUITE_P(Scorings, ScoringP,
                         ::testing::Values(ScoringCase{1, -2, 2, 1},
                                           ScoringCase{2, -3, 5, 2},
                                           ScoringCase{1, -3, 5, 2},
                                           ScoringCase{4, -5, 8, 2}));

class XdropP : public ::testing::TestWithParam<int> {};

TEST_P(XdropP, LargerGappedXdropNeverShortensTheAlignment) {
  const Fixture f = make_fixture(503, 0.12);
  SearchOptions small;
  small.filter_low_complexity = false;
  small.xdrop_gapped = GetParam();
  SearchOptions large = small;
  large.xdrop_gapped = GetParam() * 4;

  BlastSearcher s1(f.volume, small);
  BlastSearcher s2(f.volume, large);
  const auto r1 = s1.search({f.query});
  const auto r2 = s2.search({f.query});
  ASSERT_FALSE(r1[0].hsps.empty());
  ASSERT_FALSE(r2[0].hsps.empty());
  EXPECT_GE(r2[0].hsps.front().raw_score, r1[0].hsps.front().raw_score);
}

INSTANTIATE_TEST_SUITE_P(Xdrops, XdropP, ::testing::Values(10, 20, 40));

TEST(SearchSweep, BitScoreDegradesMonotonicallyWithDivergence) {
  // Higher divergence -> lower score; the planted homolog stays the top
  // hit throughout the detectable range. The same parent/query pair is
  // used at every divergence so the comparison is apples to apples.
  double last_bits = 1e18;
  for (const double divergence : {0.02, 0.08, 0.15, 0.22}) {
    const Fixture f = make_fixture(504, divergence);
    SearchOptions opts;
    opts.filter_low_complexity = false;
    BlastSearcher searcher(f.volume, opts);
    const auto results = searcher.search({f.query});
    ASSERT_FALSE(results[0].hsps.empty()) << "divergence " << divergence;
    EXPECT_EQ(results[0].hsps.front().subject_id, f.target_id);
    EXPECT_LT(results[0].hsps.front().bit_score, last_bits)
        << "bit score did not degrade at divergence " << divergence;
    last_bits = results[0].hsps.front().bit_score;
  }
}

TEST(SearchSweep, EvalueCutoffMonotone) {
  // Loosening the cutoff can only add hits, and every reported hit
  // respects the cutoff.
  const Fixture f = make_fixture(505, 0.1);
  std::size_t prev = 0;
  for (const double cutoff : {1e-20, 1e-6, 1e-2, 10.0}) {
    SearchOptions opts;
    opts.filter_low_complexity = false;
    opts.evalue_cutoff = cutoff;
    BlastSearcher searcher(f.volume, opts);
    const auto results = searcher.search({f.query});
    for (const auto& hsp : results[0].hsps) EXPECT_LE(hsp.evalue, cutoff);
    EXPECT_GE(results[0].hsps.size(), prev);
    prev = results[0].hsps.size();
  }
}

}  // namespace
}  // namespace mrbio::blast
