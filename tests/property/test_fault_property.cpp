// Property: fault injection never changes what the applications compute.
// For randomized FaultPlans — up to half the workers crashing (some
// permanently), protocol message drops/duplications, sub-0.1 s delays,
// and slow ranks — the BLAST hit files and the trained SOM codebook must
// be byte-identical to a fault-free run. Recovery may cost time; it must
// never cost (or duplicate) results.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/sequence.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mrblast/mrblast.hpp"
#include "mrsom/mrsom.hpp"
#include "sim/engine.hpp"
#include "som/som.hpp"
#include <unistd.h>

namespace mrbio {
namespace {

constexpr int kRanks = 6;

/// Random plan with at most (kRanks - 1) / 2 worker crashes plus message
/// and slow-rank noise. Task-count triggers dominate (the functional
/// drivers accrue little virtual time, so most time triggers would never
/// fire); every delay is <= 0.1 s.
fault::FaultPlan random_plan(Rng& rng) {
  fault::FaultPlan plan;
  const int ncrashes = 1 + static_cast<int>(rng.below((kRanks - 1) / 2));
  std::vector<int> workers;
  for (int r = 1; r < kRanks; ++r) workers.push_back(r);
  for (int i = 0; i < ncrashes; ++i) {
    fault::CrashFault c;
    const std::size_t pick = rng.below(workers.size());
    c.rank = workers[pick];
    workers.erase(workers.begin() + static_cast<std::ptrdiff_t>(pick));
    if (rng.uniform() < 0.25) {
      c.t = rng.uniform(0.0, 0.01);
    } else {
      c.task = static_cast<std::int64_t>(rng.below(4));
    }
    c.permanent = rng.uniform() < 0.3;
    plan.crashes.push_back(c);
  }
  const int nmsg = static_cast<int>(rng.below(4));
  for (int i = 0; i < nmsg; ++i) {
    fault::MessageFault m;
    const double k = rng.uniform();
    m.kind = k < 0.4   ? fault::MessageFault::Kind::Drop
             : k < 0.7 ? fault::MessageFault::Kind::Duplicate
                       : fault::MessageFault::Kind::Delay;
    m.src = rng.uniform() < 0.5 ? -1 : 1 + static_cast<int>(rng.below(kRanks - 1));
    m.dst = rng.uniform() < 0.5 ? 0 : -1;
    m.count = 1 + static_cast<int>(rng.below(3));
    if (m.kind == fault::MessageFault::Kind::Delay) m.by = rng.uniform(0.01, 0.1);
    plan.messages.push_back(m);
  }
  if (rng.uniform() < 0.5) {
    fault::SlowFault s;
    s.rank = 1 + static_cast<int>(rng.below(kRanks - 1));
    s.factor = rng.uniform(2.0, 8.0);
    plan.slows.push_back(s);
  }
  return plan;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// BLAST: hit files byte-identical under random fault plans

class BlastFaultProperty : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = std::filesystem::temp_directory_path() / ("mrbio_fault_prop_blast_" + std::to_string(::getpid()));
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);

    Rng rng(1234);
    std::vector<blast::Sequence> genomes;
    for (int g = 0; g < 4; ++g) {
      genomes.push_back(blast::random_sequence(rng, "genome" + std::to_string(g),
                                               1'000, blast::SeqType::Dna));
    }
    db_ = blast::build_db(genomes, (work_ / "db").string(), blast::SeqType::Dna, 1'500);

    std::vector<blast::Sequence> queries;
    for (const auto& frag : blast::shred({genomes[0], genomes[2]}, 250, 120)) {
      queries.push_back(blast::mutate(rng, frag, frag.id, 0.02, blast::SeqType::Dna));
    }
    for (std::size_t i = 0; i < queries.size(); i += 5) {
      blocks_.emplace_back(
          queries.begin() + static_cast<std::ptrdiff_t>(i),
          queries.begin() + static_cast<std::ptrdiff_t>(std::min(i + 5, queries.size())));
    }
  }
  void TearDown() override { std::filesystem::remove_all(work_); }

  /// Runs the full driver; returns per-rank file contents keyed by name,
  /// plus the abandoned-task count via `failed`.
  std::map<std::string, std::string> run(const std::string& tag,
                                         fault::Injector* injector,
                                         std::uint64_t* failed = nullptr) {
    mrblast::RealRunConfig config;
    config.query_blocks = blocks_;
    config.partition_paths = db_.volume_paths;
    config.options.evalue_cutoff = 1e-6;
    config.options.filter_low_complexity = false;
    config.output_dir = (work_ / ("out_" + tag)).string();
    if (injector != nullptr) {
      config.ft.enabled = true;
      config.ft.task_timeout = 2.0;
    }

    sim::EngineConfig ec;
    ec.nprocs = kRanks;
    ec.injector = injector;
    sim::Engine engine(ec);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      const mrblast::RealRunResult r = mrblast::run_blast_mr(comm, config);
      if (p.rank() == 0 && failed != nullptr) *failed = r.failed_tasks;
    });
    std::map<std::string, std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(config.output_dir)) {
      files[e.path().filename().string()] = slurp(e.path());
    }
    return files;
  }

  std::filesystem::path work_;
  blast::DbInfo db_;
  std::vector<std::vector<blast::Sequence>> blocks_;
};

TEST_F(BlastFaultProperty, HitFilesByteIdenticalUnderRandomPlans) {
  const auto baseline = run("baseline", nullptr);
  ASSERT_FALSE(baseline.empty());

  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    const fault::FaultPlan plan = random_plan(rng);
    plan.validate(kRanks);
    fault::Injector injector(plan);
    std::uint64_t failed = 1;
    const auto faulted =
        run("seed" + std::to_string(seed), &injector, &failed);
    EXPECT_EQ(failed, 0u) << plan.describe();
    ASSERT_EQ(faulted.size(), baseline.size()) << plan.describe();
    for (const auto& [name, content] : baseline) {
      ASSERT_TRUE(faulted.count(name)) << name << " under " << plan.describe();
      EXPECT_EQ(faulted.at(name), content) << name << " under " << plan.describe();
    }
  }
}

// ---------------------------------------------------------------------------
// SOM: trained codebook byte-identical under random fault plans

TEST(SomFaultProperty, CodebookByteIdenticalUnderRandomPlans) {
  Rng data_rng(99);
  Matrix data(120, 6);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data(r, c) = static_cast<float>(data_rng.uniform());
  som::Codebook initial(som::SomGrid{5, 5}, data.cols());
  initial.init_pca(data.view());

  mrsom::ParallelSomConfig config;
  config.params.epochs = 3;
  config.block_vectors = 10;
  config.map_style = mrmpi::MapStyle::MasterWorker;
  // The baseline must use the same schedule-independent reduction the
  // fault-tolerant path forces, or float ordering alone would differ.
  config.deterministic_reduce = true;

  auto train = [&](fault::Injector* injector) {
    mrsom::ParallelSomConfig cfg = config;
    if (injector != nullptr) {
      cfg.ft.enabled = true;
      cfg.ft.task_timeout = 2.0;
    }
    sim::EngineConfig ec;
    ec.nprocs = kRanks;
    ec.injector = injector;
    sim::Engine engine(ec);
    som::Codebook cb;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, cfg);
      if (p.rank() == 0) cb = std::move(trained);
    });
    return cb;
  };

  const som::Codebook baseline = train(nullptr);
  const Matrix& base = baseline.weights();
  ASSERT_GT(base.rows() * base.cols(), 0u);

  for (std::uint64_t seed = 11; seed <= 14; ++seed) {
    Rng rng(seed);
    const fault::FaultPlan plan = random_plan(rng);
    plan.validate(kRanks);
    fault::Injector injector(plan);
    const som::Codebook cb = train(&injector);
    const Matrix& w = cb.weights();
    ASSERT_EQ(w.rows(), base.rows()) << plan.describe();
    EXPECT_EQ(std::memcmp(w.row(0).data(), base.row(0).data(),
                          base.rows() * base.cols() * sizeof(float)),
              0)
        << plan.describe();
  }
}

}  // namespace
}  // namespace mrbio
