// Integration tests of the MR-MPI BLAST application: the functional driver
// against the serial engine, the matrix-split invariants (per-query hits in
// exactly one output file, whole-DB statistics), and the simulated driver's
// load-balancing behaviour.
#include "mrblast/mrblast.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "sim/engine.hpp"
#include <unistd.h>

namespace mrbio::mrblast {
namespace {

struct Testbed {
  std::filesystem::path dir;
  std::vector<blast::Sequence> genome;           ///< DB side
  std::vector<std::vector<blast::Sequence>> query_blocks;
  blast::DbInfo db;

  ~Testbed() { std::filesystem::remove_all(dir); }
};

/// Builds a small metagenomic-style testbed: a few "genomes" formatted into
/// several partitions, queries shredded from two of them plus noise.
Testbed make_testbed(std::uint64_t partition_residues = 1500) {
  static int counter = 0;
  Testbed tb;
  tb.dir = std::filesystem::temp_directory_path() /
           ("mrbio_mrblast_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
  std::filesystem::create_directories(tb.dir);

  Rng rng(77);
  for (int g = 0; g < 6; ++g) {
    tb.genome.push_back(
        blast::random_sequence(rng, "genome" + std::to_string(g), 900, blast::SeqType::Dna));
  }
  tb.db = blast::build_db(tb.genome, (tb.dir / "db").string(), blast::SeqType::Dna,
                          partition_residues);

  // Queries: fragments of genomes 0 and 3 (mutated a little) plus noise.
  std::vector<blast::Sequence> queries;
  const auto frags0 = blast::shred({tb.genome[0]}, 300, 100);
  const auto frags3 = blast::shred({tb.genome[3]}, 300, 100);
  for (const auto& f : frags0) queries.push_back(blast::mutate(rng, f, f.id, 0.03, blast::SeqType::Dna));
  for (const auto& f : frags3) queries.push_back(blast::mutate(rng, f, f.id, 0.03, blast::SeqType::Dna));
  queries.push_back(blast::random_sequence(rng, "noise1", 300, blast::SeqType::Dna));
  // Two blocks.
  const std::size_t half = queries.size() / 2;
  tb.query_blocks.emplace_back(queries.begin(), queries.begin() + static_cast<std::ptrdiff_t>(half));
  tb.query_blocks.emplace_back(queries.begin() + static_cast<std::ptrdiff_t>(half), queries.end());
  return tb;
}

blast::SearchOptions test_options() {
  blast::SearchOptions o;
  o.filter_low_complexity = false;
  o.evalue_cutoff = 1e-6;
  return o;
}

/// Parses all per-rank output files into query -> [(subject, evalue), ...].
std::map<std::string, std::vector<std::string>> parse_outputs(
    const std::vector<std::string>& files, std::map<std::string, std::string>* file_of_query =
                                               nullptr) {
  std::map<std::string, std::vector<std::string>> hits;
  for (const auto& path : files) {
    if (path.empty() || !std::filesystem::exists(path)) continue;
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      std::istringstream ss(line);
      std::string qid;
      std::string sid;
      ss >> qid >> sid;
      hits[qid].push_back(sid);
      if (file_of_query != nullptr) {
        auto [it, inserted] = file_of_query->emplace(qid, path);
        if (!inserted) {
          EXPECT_EQ(it->second, path) << "query " << qid << " split across files";
        }
      }
    }
  }
  return hits;
}

struct RunOutput {
  std::map<std::string, std::vector<std::string>> hits;
  std::map<std::string, std::string> file_of_query;
  std::uint64_t total_hsps = 0;
  double elapsed = 0.0;
};

RunOutput run_real(const Testbed& tb, int nprocs, const std::string& tag,
                   mrmpi::MapStyle style = mrmpi::MapStyle::MasterWorker,
                   std::size_t blocks_per_iteration = 0) {
  RealRunConfig config;
  config.query_blocks = tb.query_blocks;
  config.partition_paths = tb.db.volume_paths;
  config.options = test_options();
  config.output_dir = (tb.dir / ("out_" + tag)).string();
  config.map_style = style;
  config.blocks_per_iteration = blocks_per_iteration;

  sim::EngineConfig ec;
  ec.nprocs = nprocs;
  sim::Engine engine(ec);
  std::vector<std::string> files(static_cast<std::size_t>(nprocs));
  std::uint64_t total = 0;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const RealRunResult r = run_blast_mr(comm, config);
    files[static_cast<std::size_t>(p.rank())] = r.output_file;
    if (p.rank() == 0) total = r.total_hsps;
  });
  RunOutput out;
  out.hits = parse_outputs(files, &out.file_of_query);
  out.total_hsps = total;
  out.elapsed = engine.elapsed();
  return out;
}

TEST(MrBlastReal, FindsPlantedHomologsAcrossPartitions) {
  const Testbed tb = make_testbed();
  ASSERT_GT(tb.db.volume_paths.size(), 2u);  // really a matrix split
  const RunOutput out = run_real(tb, 4, "basic");

  EXPECT_GT(out.total_hsps, 0u);
  // Every shredded fragment of genome0 must find genome0.
  for (const auto& block : tb.query_blocks) {
    for (const auto& q : block) {
      if (q.id.rfind("genome0/", 0) == 0) {
        ASSERT_TRUE(out.hits.count(q.id)) << q.id;
        EXPECT_EQ(out.hits.at(q.id).front(), "genome0") << q.id;
      }
    }
  }
  // The pure-noise query found nothing at this cutoff.
  EXPECT_EQ(out.hits.count("noise1"), 0u);
}

TEST(MrBlastReal, MatchesSerialSingleRankRun) {
  const Testbed tb = make_testbed();
  const RunOutput parallel = run_real(tb, 5, "par");
  const RunOutput serial = run_real(tb, 1, "ser");
  EXPECT_EQ(parallel.total_hsps, serial.total_hsps);
  ASSERT_EQ(parallel.hits.size(), serial.hits.size());
  for (const auto& [qid, subjects] : serial.hits) {
    ASSERT_TRUE(parallel.hits.count(qid)) << qid;
    EXPECT_EQ(parallel.hits.at(qid), subjects) << qid;
  }
}

TEST(MrBlastReal, MatchesUnpartitionedSearch) {
  // The matrix split plus whole-DB length override must reproduce what a
  // single searcher over one unpartitioned volume reports.
  const Testbed tb = make_testbed();
  const Testbed whole = [&] {
    Testbed w;
    static int c2 = 1000;
    w.dir = std::filesystem::temp_directory_path() / ("mrbio_whole_" + std::to_string(::getpid()) + "_" + std::to_string(c2++));
    std::filesystem::create_directories(w.dir);
    w.genome = tb.genome;
    w.query_blocks = tb.query_blocks;
    w.db = blast::build_db(w.genome, (w.dir / "db").string(), blast::SeqType::Dna,
                           1ull << 40);  // single volume
    return w;
  }();
  ASSERT_EQ(whole.db.volume_paths.size(), 1u);

  const RunOutput split = run_real(tb, 4, "split");
  const RunOutput unsplit = run_real(whole, 4, "unsplit");
  EXPECT_EQ(split.total_hsps, unsplit.total_hsps);
  for (const auto& [qid, subjects] : unsplit.hits) {
    ASSERT_TRUE(split.hits.count(qid)) << qid;
    EXPECT_EQ(split.hits.at(qid).front(), subjects.front()) << qid;
  }
}

TEST(MrBlastReal, EachQuerysHitsInExactlyOneFile) {
  // Paper: "the hits for each query located in only one file".
  const Testbed tb = make_testbed();
  const RunOutput out = run_real(tb, 6, "onefile");
  EXPECT_FALSE(out.file_of_query.empty());
  // parse_outputs already asserts one file per query; additionally check
  // hits spread across more than one rank file (really distributed).
  std::set<std::string> files_used;
  for (const auto& [q, f] : out.file_of_query) files_used.insert(f);
  EXPECT_GT(files_used.size(), 1u);
}

TEST(MrBlastReal, MultiIterationMatchesSingleCycle) {
  // Paper: multiple MapReduce iterations over query subsets bound the
  // intermediate KV size without changing results.
  const Testbed tb = make_testbed();
  const RunOutput one_cycle = run_real(tb, 3, "cycle1", mrmpi::MapStyle::MasterWorker, 0);
  const RunOutput per_block = run_real(tb, 3, "cycleN", mrmpi::MapStyle::MasterWorker, 1);
  EXPECT_EQ(one_cycle.total_hsps, per_block.total_hsps);
  EXPECT_EQ(one_cycle.hits, per_block.hits);
}

TEST(MrBlastReal, ChunkStyleSameResults) {
  const Testbed tb = make_testbed();
  const RunOutput mw = run_real(tb, 4, "mw", mrmpi::MapStyle::MasterWorker);
  const RunOutput chunk = run_real(tb, 4, "chunk", mrmpi::MapStyle::Chunk);
  EXPECT_EQ(mw.total_hsps, chunk.total_hsps);
  EXPECT_EQ(mw.hits, chunk.hits);
}

TEST(MrBlastReal, DeterministicAcrossRuns) {
  const Testbed tb = make_testbed();
  const RunOutput a = run_real(tb, 4, "det_a");
  const RunOutput b = run_real(tb, 4, "det_b");
  EXPECT_EQ(a.hits, b.hits);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
}

// ---- simulated driver ----

double run_sim_elapsed(int cores, const SimRunConfig& config, SimRunStats* stats_out = nullptr) {
  sim::EngineConfig ec;
  ec.nprocs = cores;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const SimRunStats st = run_blast_sim(comm, config);
    if (p.rank() == 0 && stats_out != nullptr) *stats_out = st;
  });
  return engine.elapsed();
}

workload::BlastWorkloadConfig sim_workload() {
  workload::BlastWorkloadConfig c;
  c.total_queries = 4'000;
  c.queries_per_block = 500;
  c.db_partitions = 12;
  c.mean_seconds_per_query = 0.02;
  return c;
}

TEST(MrBlastSim, ScalesWithCores) {
  SimRunConfig config;
  config.workload = sim_workload();
  const double t4 = run_sim_elapsed(4, config);
  const double t16 = run_sim_elapsed(16, config);
  EXPECT_LT(t16, t4 / 2.0);
}

TEST(MrBlastSim, TotalHitsIndependentOfCores) {
  SimRunConfig config;
  config.workload = sim_workload();
  SimRunStats s4;
  SimRunStats s16;
  run_sim_elapsed(4, config, &s4);
  run_sim_elapsed(16, config, &s16);
  EXPECT_EQ(s4.total_hits, s16.total_hits);
  EXPECT_GT(s4.total_hits, 0u);
}

TEST(MrBlastSim, MasterWorkerBeatsChunkOnHeavyTail) {
  SimRunConfig mw;
  mw.workload = sim_workload();
  mw.workload.lognormal_sigma = 1.5;  // strong stragglers
  SimRunConfig chunk = mw;
  chunk.map_style = mrmpi::MapStyle::Chunk;
  const double t_mw = run_sim_elapsed(8, mw);
  const double t_chunk = run_sim_elapsed(8, chunk);
  EXPECT_LT(t_mw, t_chunk);
}

TEST(MrBlastSim, UtilizationTracksTaperingOff) {
  SimRunConfig config;
  config.workload = sim_workload();
  workload::UtilizationTracker tracker;
  config.tracker = &tracker;
  const double elapsed = run_sim_elapsed(8, config);
  const auto series = tracker.series(elapsed / 20.0, 8);
  ASSERT_GE(series.size(), 10u);
  // Mid-run utilization is high; the final bucket (stragglers) is lower.
  const double mid = series[series.size() / 2];
  EXPECT_GT(mid, 0.5);
  EXPECT_LT(series.back(), mid);
}

TEST(MrBlastSim, DeterministicElapsed) {
  SimRunConfig config;
  config.workload = sim_workload();
  const double t1 = run_sim_elapsed(8, config);
  const double t2 = run_sim_elapsed(8, config);
  EXPECT_DOUBLE_EQ(t1, t2);
}

}  // namespace
}  // namespace mrbio::mrblast
