// Integration tests of the translated (blastx) MapReduce driver: DNA reads
// carrying coding fragments must find their source proteins across
// partitions, with frame and DNA coordinates in the output.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "blast/translate.hpp"
#include "mrblast/mrblast.hpp"
#include "sim/engine.hpp"
#include <unistd.h>

namespace mrbio::mrblast {
namespace {

namespace fs = std::filesystem;

std::string back_translate(std::span<const std::uint8_t> prot) {
  static const char* bases = "ACGT";
  std::string dna;
  for (const std::uint8_t aa : prot) {
    bool found = false;
    for (int a = 0; a < 4 && !found; ++a) {
      for (int b = 0; b < 4 && !found; ++b) {
        for (int c = 0; c < 4 && !found; ++c) {
          const std::string codon{bases[a], bases[b], bases[c]};
          const auto t = blast::translate(blast::encode_dna(codon), 0);
          if (t.size() == 1 && t[0] == aa) {
            dna += codon;
            found = true;
          }
        }
      }
    }
  }
  return dna;
}

class BlastxMrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / ("mrbio_blastx_mr_" + std::to_string(::getpid()));
    fs::create_directories(dir_);
    Rng rng(90);
    for (int i = 0; i < 6; ++i) {
      proteins_.push_back(blast::random_sequence(rng, "prot" + std::to_string(i), 200,
                                                 blast::SeqType::Protein));
    }
    db_ = blast::build_db(proteins_, (dir_ / "pdb").string(), blast::SeqType::Protein,
                          500);  // several partitions

    // Reads: plus-strand fragment of prot1, minus-strand fragment of prot4,
    // and noise.
    blast::Sequence r1;
    r1.id = "read_p1";
    r1.data = blast::encode_dna(
        "AC" + back_translate(std::span(proteins_[1].data).subspan(30, 80)));
    blast::Sequence r2;
    r2.id = "read_p4";
    r2.data = blast::reverse_complement(blast::encode_dna(
        back_translate(std::span(proteins_[4].data).subspan(10, 90))));
    reads_ = {r1, r2, blast::random_sequence(rng, "noise", 250, blast::SeqType::Dna)};
  }
  void TearDown() override { fs::remove_all(dir_); }

  /// query -> (frame, subject) of the best line per query.
  std::map<std::string, std::pair<int, std::string>> run(int ranks) {
    BlastxRunConfig config;
    config.query_blocks = {{reads_[0]}, {reads_[1], reads_[2]}};
    config.partition_paths = db_.volume_paths;
    config.options = blast::make_protein_options();
    config.options.filter_low_complexity = false;
    config.options.evalue_cutoff = 1e-8;
    config.output_dir = (dir_ / ("out" + std::to_string(ranks))).string();

    sim::EngineConfig ec;
    ec.nprocs = ranks;
    sim::Engine engine(ec);
    std::vector<std::string> files(static_cast<std::size_t>(ranks));
    std::uint64_t total = 0;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      const auto result = run_blastx_mr(comm, config);
      files[static_cast<std::size_t>(p.rank())] = result.output_file;
      if (p.rank() == 0) total = result.total_hsps;
    });
    EXPECT_GT(total, 0u);

    std::map<std::string, std::pair<int, std::string>> best;
    for (const auto& path : files) {
      if (path.empty()) continue;
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) {
        std::istringstream ss(line);
        std::string qid;
        int frame = 0;
        std::uint64_t d0 = 0;
        std::uint64_t d1 = 0;
        std::string qid2;
        std::string sid;
        ss >> qid >> frame >> d0 >> d1 >> qid2 >> sid;
        if (best.find(qid) == best.end()) best[qid] = {frame, sid};
      }
    }
    return best;
  }

  fs::path dir_;
  std::vector<blast::Sequence> proteins_;
  std::vector<blast::Sequence> reads_;
  blast::DbInfo db_;
};

TEST_F(BlastxMrTest, FindsCodingFragmentsAcrossPartitions) {
  ASSERT_GT(db_.volume_paths.size(), 1u);
  const auto best = run(4);
  ASSERT_TRUE(best.count("read_p1"));
  EXPECT_EQ(best.at("read_p1").second, "prot1");
  EXPECT_GT(best.at("read_p1").first, 0);  // plus frame
  ASSERT_TRUE(best.count("read_p4"));
  EXPECT_EQ(best.at("read_p4").second, "prot4");
  EXPECT_LT(best.at("read_p4").first, 0);  // minus frame
  EXPECT_EQ(best.count("noise"), 0u);
}

TEST_F(BlastxMrTest, ParallelMatchesSingleRank) {
  const auto parallel = run(5);
  const auto serial = run(1);
  EXPECT_EQ(parallel, serial);
}

TEST_F(BlastxMrTest, DnaOptionsRejected) {
  BlastxRunConfig config;
  config.query_blocks = {{reads_[0]}};
  config.partition_paths = db_.volume_paths;
  config.options = blast::SearchOptions{};  // nucleotide options: invalid
  sim::EngineConfig ec;
  ec.nprocs = 2;
  sim::Engine engine(ec);
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 run_blastx_mr(comm, config);
               }),
               InputError);
}

}  // namespace
}  // namespace mrbio::mrblast
