// Tests for the Section V extensions wired into the BLAST drivers:
// locality-aware scheduling reduces DB reloads, indexed-FASTA input
// reproduces in-memory results, tapered block schedules work end to end.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <numeric>

#include "mrblast/mrblast.hpp"
#include "sim/engine.hpp"
#include <unistd.h>

namespace mrbio::mrblast {
namespace {

workload::BlastWorkloadConfig sim_workload() {
  workload::BlastWorkloadConfig c;
  c.total_queries = 8'000;
  c.queries_per_block = 500;
  c.db_partitions = 8;
  c.mean_seconds_per_query = 0.02;
  return c;
}

struct SimOutcome {
  double elapsed = 0.0;
  std::uint64_t total_db_loads = 0;
  std::uint64_t total_hits = 0;
};

SimOutcome run_sim(const SimRunConfig& config, int cores) {
  sim::EngineConfig ec;
  ec.nprocs = cores;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  std::mutex mu;
  SimOutcome out;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const SimRunStats st = run_blast_sim(comm, config);
    // Stats are now globally reduced inside the driver: every rank returns
    // the same job-wide totals, so capture them once.
    std::lock_guard<std::mutex> lock(mu);
    if (p.rank() == 0) {
      out.total_db_loads = st.db_loads;
      out.total_hits = st.total_hits;
    }
  });
  out.elapsed = engine.elapsed();
  return out;
}

TEST(LocalityExtension, CutsDbLoadsSharply) {
  SimRunConfig plain;
  plain.workload = sim_workload();
  SimRunConfig local = plain;
  local.locality_aware = true;

  const SimOutcome p = run_sim(plain, 9);
  const SimOutcome l = run_sim(local, 9);
  // Plain master-worker cycles partitions per unit: ~one load per unit.
  // Locality-aware keeps workers on their partition: ~one load per
  // (worker, partition-change), near the number of partitions.
  EXPECT_LT(l.total_db_loads * 4, p.total_db_loads);
  EXPECT_EQ(l.total_hits, p.total_hits);
}

TEST(LocalityExtension, HelpsWallClockAtColdCacheScale) {
  // At small core counts the cluster cache is cold and reloads are
  // expensive: locality-aware scheduling must win.
  SimRunConfig plain;
  plain.workload = sim_workload();
  plain.workload.cold_load_seconds = 25.0;
  SimRunConfig local = plain;
  local.locality_aware = true;
  const SimOutcome p = run_sim(plain, 5);
  const SimOutcome l = run_sim(local, 5);
  EXPECT_LT(l.elapsed, p.elapsed);
}

TEST(TaperedExtension, ScheduleRunsAndMatchesHitTotals) {
  SimRunConfig uniform;
  uniform.workload = sim_workload();

  SimRunConfig tapered = uniform;
  tapered.workload.block_sizes =
      blast::tapered_block_sizes(uniform.workload.total_queries,
                                 uniform.workload.queries_per_block, 64, 0.3);

  const SimOutcome u = run_sim(uniform, 9);
  const SimOutcome t = run_sim(tapered, 9);
  EXPECT_GT(t.total_hits, 0u);
  // Same queries overall (hit totals differ only through block-level noise
  // in the oracle; they must be the same magnitude).
  EXPECT_NEAR(static_cast<double>(t.total_hits), static_cast<double>(u.total_hits),
              0.3 * static_cast<double>(u.total_hits));
}

TEST(TaperedExtension, BadScheduleRejected) {
  SimRunConfig config;
  config.workload = sim_workload();
  config.workload.block_sizes = {100, 100};  // does not sum to total
  sim::EngineConfig ec;
  ec.nprocs = 2;
  sim::Engine engine(ec);
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 run_blast_sim(comm, config);
               }),
               InputError);
}

TEST(SimStatsReduction, AllRanksSeeGlobalTotals) {
  // Regression: total_hits was the only globally reduced field; db_loads,
  // compute_seconds and load_seconds were rank-local, so callers reading
  // them from rank 0 undercounted the job. All fields are now allreduced.
  SimRunConfig config;
  config.workload = sim_workload();
  sim::EngineConfig ec;
  ec.nprocs = 5;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  std::mutex mu;
  std::vector<SimRunStats> per_rank(5);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    const SimRunStats st = run_blast_sim(comm, config);
    std::lock_guard<std::mutex> lock(mu);
    per_rank[static_cast<std::size_t>(p.rank())] = st;
  });
  for (std::size_t r = 1; r < per_rank.size(); ++r) {
    EXPECT_EQ(per_rank[r].total_hits, per_rank[0].total_hits) << r;
    EXPECT_EQ(per_rank[r].db_loads, per_rank[0].db_loads) << r;
    EXPECT_DOUBLE_EQ(per_rank[r].compute_seconds, per_rank[0].compute_seconds) << r;
    EXPECT_DOUBLE_EQ(per_rank[r].load_seconds, per_rank[0].load_seconds) << r;
    EXPECT_DOUBLE_EQ(per_rank[r].max_rank_compute_seconds,
                     per_rank[0].max_rank_compute_seconds)
        << r;
  }
  // Sums cover all ranks; the per-rank max is a fraction of the sum but
  // at least sum / nranks (someone did at least the average).
  EXPECT_GT(per_rank[0].db_loads, 0u);
  EXPECT_GT(per_rank[0].compute_seconds, 0.0);
  EXPECT_LT(per_rank[0].max_rank_compute_seconds, per_rank[0].compute_seconds);
  EXPECT_GE(per_rank[0].max_rank_compute_seconds,
            per_rank[0].compute_seconds / 5.0);
}

class IndexedInputTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() / ("mrbio_indexed_input_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
    Rng rng(123);
    std::vector<blast::Sequence> genomes;
    for (int g = 0; g < 3; ++g) {
      genomes.push_back(blast::random_sequence(rng, "g" + std::to_string(g), 700,
                                               blast::SeqType::Dna));
    }
    db_ = blast::build_db(genomes, (dir_ / "db").string(), blast::SeqType::Dna, 1'000);

    for (const auto& frag : blast::shred({genomes[1]}, 300, 150)) {
      queries_.push_back(blast::mutate(rng, frag, frag.id, 0.02, blast::SeqType::Dna));
    }
    fasta_path_ = (dir_ / "queries.fa").string();
    blast::write_fasta_file(fasta_path_, queries_, blast::SeqType::Dna);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::map<std::string, std::string> collect(const std::vector<std::string>& files) {
    std::map<std::string, std::string> by_query;
    for (const auto& path : files) {
      if (path.empty()) continue;
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) {
        const auto tab = line.find('\t');
        by_query[line.substr(0, tab)] = line.substr(tab + 1);
      }
    }
    return by_query;
  }

  std::map<std::string, std::string> run(RealRunConfig config, const std::string& tag) {
    config.partition_paths = db_.volume_paths;
    config.options.filter_low_complexity = false;
    config.options.evalue_cutoff = 1e-6;
    config.output_dir = (dir_ / tag).string();
    sim::EngineConfig ec;
    ec.nprocs = 4;
    sim::Engine engine(ec);
    std::vector<std::string> files(4);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      const auto result = run_blast_mr(comm, config);
      files[static_cast<std::size_t>(p.rank())] = result.output_file;
    });
    return collect(files);
  }

  std::filesystem::path dir_;
  blast::DbInfo db_;
  std::vector<blast::Sequence> queries_;
  std::string fasta_path_;
};

TEST_F(IndexedInputTest, IndexedFastaMatchesInMemoryBlocks) {
  RealRunConfig memory;
  for (std::size_t i = 0; i < queries_.size(); i += 2) {
    memory.query_blocks.emplace_back(
        queries_.begin() + static_cast<std::ptrdiff_t>(i),
        queries_.begin() + static_cast<std::ptrdiff_t>(std::min(i + 2, queries_.size())));
  }
  const auto mem_hits = run(memory, "out_mem");

  RealRunConfig indexed;
  indexed.query_fasta = fasta_path_;
  indexed.query_block_sizes.assign((queries_.size() + 1) / 2, 2);
  const auto idx_hits = run(indexed, "out_idx");

  EXPECT_FALSE(mem_hits.empty());
  EXPECT_EQ(mem_hits, idx_hits);
}

TEST_F(IndexedInputTest, RerunOverwritesStaleHits) {
  // Regression: the per-rank output files used to be opened with
  // std::ios::app, so a second run into the same directory concatenated
  // the previous run's hits. They must be truncated on first open.
  RealRunConfig config;
  config.partition_paths = db_.volume_paths;
  config.options.filter_low_complexity = false;
  config.options.evalue_cutoff = 1e-6;
  config.output_dir = (dir_ / "out_rerun").string();
  config.query_fasta = fasta_path_;
  config.query_block_sizes.assign((queries_.size() + 1) / 2, 2);

  const auto run_once = [&]() {
    sim::EngineConfig ec;
    ec.nprocs = 4;
    sim::Engine engine(ec);
    std::vector<std::string> files(4);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      files[static_cast<std::size_t>(p.rank())] = run_blast_mr(comm, config).output_file;
    });
    std::size_t lines = 0;
    for (const auto& path : files) {
      if (path.empty()) continue;
      std::ifstream in(path);
      std::string line;
      while (std::getline(in, line)) ++lines;
    }
    return lines;
  };
  const std::size_t first = run_once();
  const std::size_t second = run_once();  // stale files already on disk
  EXPECT_GT(first, 0u);
  EXPECT_EQ(second, first);  // append mode would give second == 2 * first
}

TEST_F(IndexedInputTest, OverCoveringFinalBlockIsClamped) {
  // A schedule whose final block nominally runs one record past the end of
  // the FASTA is legal: the count is clamped and results match the exact
  // schedule.
  RealRunConfig exact;
  exact.query_fasta = fasta_path_;
  exact.query_block_sizes.assign(queries_.size(), 1);
  const auto exact_hits = run(exact, "out_exact");

  RealRunConfig over;
  over.query_fasta = fasta_path_;
  over.query_block_sizes.assign(queries_.size() - 1, 1);
  over.query_block_sizes.push_back(2);  // last block over-runs by one
  const auto over_hits = run(over, "out_over");

  EXPECT_FALSE(exact_hits.empty());
  EXPECT_EQ(exact_hits, over_hits);
}

TEST_F(IndexedInputTest, BlockBeyondEndRejected) {
  // A whole block starting past the last record is a schedule bug, not a
  // clamping case: it must be rejected up front.
  RealRunConfig config;
  config.partition_paths = db_.volume_paths;
  config.query_fasta = fasta_path_;
  config.query_block_sizes.assign(queries_.size(), 1);
  config.query_block_sizes.push_back(1);  // starts at num_records
  config.output_dir = (dir_ / "out_beyond").string();
  sim::EngineConfig ec;
  ec.nprocs = 2;
  sim::Engine engine(ec);
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 run_blast_mr(comm, config);
               }),
               InputError);
}

TEST_F(IndexedInputTest, TaperedScheduleWithIndexedInput) {
  RealRunConfig indexed;
  indexed.query_fasta = fasta_path_;
  indexed.query_block_sizes =
      blast::tapered_block_sizes(queries_.size(), 3, 1, 0.5);
  indexed.locality_aware = true;
  const auto hits = run(indexed, "out_taper");
  EXPECT_EQ(hits.size(), queries_.size());  // every fragment hits its genome
}

TEST_F(IndexedInputTest, BothInputsRejected) {
  RealRunConfig config;
  config.query_blocks = {{queries_[0]}};
  config.query_fasta = fasta_path_;
  config.query_block_sizes = {1};
  sim::EngineConfig ec;
  ec.nprocs = 2;
  sim::Engine engine(ec);
  config.partition_paths = db_.volume_paths;
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 run_blast_mr(comm, config);
               }),
               InputError);
}

}  // namespace
}  // namespace mrbio::mrblast
