// Tests for compress() (local combiner) and map_kv() (re-map of existing
// pairs), the remaining Sandia API operations.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <string>

#include "mrmpi/mapreduce.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

std::string key_str(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

void run_ranks(int n, const std::function<void(MapReduce&, mpi::Comm&)>& body,
               MapReduceConfig cfg = {}) {
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    body(mr, comm);
  });
}

TEST(Compress, LocallyCombinesDuplicateKeys) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  run_ranks(3, [](MapReduce& mr, mpi::Comm&) {
    mr.map(9, [](std::uint64_t t, KeyValue& kv) {
      // Each rank emits its own tasks; key collisions are rank-local.
      kv.add("k" + std::to_string(t % 2), "1");
    });
    const std::size_t before = mr.kv().size();
    mr.compress([](const KmvGroup& g, KeyValue& out) {
      out.add(key_str(g.key), std::to_string(g.values.size()));
    });
    // Each rank has at most 2 distinct keys afterwards.
    EXPECT_LE(mr.kv().size(), 2u);
    EXPECT_LE(mr.kv().size(), before);
  }, cfg);
}

TEST(Compress, CombinerBeforeCollateMatchesDirectPipeline) {
  // Sum counts per word with and without a combiner; results must agree.
  auto run_pipeline = [&](bool combine) {
    MapReduceConfig cfg;
    cfg.map_style = MapStyle::Stride;
    std::mutex mu;
    std::map<std::string, long> totals;
    run_ranks(4, [&](MapReduce& mr, mpi::Comm&) {
      mr.map(20, [](std::uint64_t t, KeyValue& kv) {
        for (int i = 0; i < 5; ++i) kv.add("w" + std::to_string((t + i) % 3), "1");
      });
      if (combine) {
        mr.compress([](const KmvGroup& g, KeyValue& out) {
          out.add(key_str(g.key), std::to_string(g.values.size()));
        });
      }
      mr.collate();
      mr.reduce([&](const KmvGroup& g, KeyValue&) {
        long sum = 0;
        for (const auto& v : g.values) {
          sum += std::stol(std::string(reinterpret_cast<const char*>(v.data()), v.size()));
        }
        std::lock_guard<std::mutex> lock(mu);
        totals[key_str(g.key)] += sum;
      });
    }, cfg);
    return totals;
  };
  const auto with = run_pipeline(true);
  const auto without = run_pipeline(false);
  EXPECT_EQ(with, without);
  long total = 0;
  for (const auto& [k, v] : with) total += v;
  EXPECT_EQ(total, 100);
}

TEST(Compress, ShrinksAggregateTraffic) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::uint64_t bytes_with = 0;
  std::uint64_t bytes_without = 0;
  auto measure = [&](bool combine, std::uint64_t* out) {
    run_ranks(4, [&](MapReduce& mr, mpi::Comm&) {
      mr.map(40, [](std::uint64_t, KeyValue& kv) {
        for (int i = 0; i < 10; ++i) kv.add("hot_key", std::string(50, 'x'));
      });
      if (combine) {
        mr.compress([](const KmvGroup& g, KeyValue& out2) {
          out2.add(key_str(g.key), std::to_string(g.values.size()));
        });
      }
      mr.aggregate();
      std::lock_guard<std::mutex> lock(mu);
      *out += mr.stats().aggregate_bytes_sent;
    }, cfg);
  };
  measure(true, &bytes_with);
  measure(false, &bytes_without);
  EXPECT_LT(bytes_with * 10, bytes_without);
}

TEST(MapKv, TransformsEveryPair) {
  run_ranks(1, [](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) {
      kv.add("a", "1");
      kv.add("b", "2");
    });
    const auto total = mr.map_kv([](const KvPair& p, KeyValue& out) {
      out.add(key_str(p.key) + "!", key_str(p.value) + key_str(p.value));
    });
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(key_str(mr.kv().pair(0).key), "a!");
    EXPECT_EQ(key_str(mr.kv().pair(0).value), "11");
    EXPECT_EQ(key_str(mr.kv().pair(1).key), "b!");
  });
}

TEST(Scan, VisitsWithoutModifying) {
  run_ranks(1, [](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) {
      kv.add("x", "1");
      kv.add("y", "2");
    });
    std::size_t visited = 0;
    mr.scan([&](const KvPair&) { ++visited; });
    EXPECT_EQ(visited, 2u);
    EXPECT_EQ(mr.kv().size(), 2u);  // unchanged
    EXPECT_EQ(key_str(mr.kv().pair(0).key), "x");
  });
}

TEST(MapKv, CanFilterPairs) {
  run_ranks(1, [](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) {
      for (int i = 0; i < 10; ++i) kv.add("k" + std::to_string(i), "v");
    });
    const auto total = mr.map_kv([](const KvPair& p, KeyValue& out) {
      if (key_str(p.key).back() % 2 == 0) out.add(p.key, p.value);
    });
    EXPECT_EQ(total, 5u);
  });
}

}  // namespace
}  // namespace mrbio::mrmpi
