// Tests for the location-aware master-worker scheduler (the paper's
// Section V first improvement).
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>

#include "common/error.hpp"
#include "mrmpi/mapreduce.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

struct LocalityTrace {
  std::multiset<std::uint64_t> tasks_run;
  std::map<int, std::vector<std::uint64_t>> keys_by_rank;  ///< affinity keys in run order
  double elapsed = 0.0;
};

LocalityTrace run_locality(int nprocs, std::uint64_t ntasks, std::uint64_t nkeys,
                           double task_seconds = 0.01) {
  sim::EngineConfig ec;
  ec.nprocs = nprocs;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  LocalityTrace trace;
  std::mutex mu;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm);
    mr.map_locality(
        ntasks, [&](std::uint64_t t) { return t % nkeys; },
        [&](std::uint64_t t, KeyValue&) {
          comm.compute(task_seconds);
          std::lock_guard<std::mutex> lock(mu);
          trace.tasks_run.insert(t);
          trace.keys_by_rank[comm.rank()].push_back(t % nkeys);
        });
  });
  trace.elapsed = engine.elapsed();
  return trace;
}

TEST(MapLocality, EveryTaskRunsExactlyOnce) {
  const auto trace = run_locality(5, 37, 7);
  EXPECT_EQ(trace.tasks_run.size(), 37u);
  for (std::uint64_t t = 0; t < 37; ++t) EXPECT_EQ(trace.tasks_run.count(t), 1u) << t;
}

TEST(MapLocality, SingleRankRunsAllLocally) {
  const auto trace = run_locality(1, 12, 3);
  EXPECT_EQ(trace.tasks_run.size(), 12u);
  EXPECT_EQ(trace.keys_by_rank.at(0).size(), 12u);
}

TEST(MapLocality, WorkersStayOnTheirKey) {
  // 4 keys x 25 tasks over 4 workers: each worker should see very few key
  // switches compared to the ~24 a round-robin hand-out would cause.
  const auto trace = run_locality(5, 100, 4);
  std::size_t switches = 0;
  std::size_t runs = 0;
  for (const auto& [rank, keys] : trace.keys_by_rank) {
    for (std::size_t i = 1; i < keys.size(); ++i) {
      if (keys[i] != keys[i - 1]) ++switches;
    }
    runs += keys.size();
  }
  EXPECT_EQ(runs, 100u);
  EXPECT_LE(switches, 8u);  // near-perfect locality
}

TEST(MapLocality, MasterRunsNoTasks) {
  const auto trace = run_locality(4, 30, 3);
  EXPECT_EQ(trace.keys_by_rank.count(0), 0u);
}

TEST(MapLocality, MoreKeysThanTasksStillTerminates) {
  const auto trace = run_locality(3, 5, 100);
  EXPECT_EQ(trace.tasks_run.size(), 5u);
}

TEST(MapLocality, KeepsLoadBalanced) {
  // Uniform task costs: despite the affinity preference, no worker may be
  // starved -- the largest-remaining-key fallback keeps everyone busy.
  const auto trace = run_locality(5, 80, 4, 0.01);
  for (const auto& [rank, keys] : trace.keys_by_rank) {
    EXPECT_GE(keys.size(), 15u) << "rank " << rank << " starved";
  }
  // Elapsed close to ideal: 80 x 0.01 s over 4 workers = 0.2 s.
  EXPECT_LT(trace.elapsed, 0.25);
}

TEST(MapLocality, NullAffinityRejected) {
  sim::EngineConfig ec;
  ec.nprocs = 2;
  sim::Engine engine(ec);
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 MapReduce mr(comm);
                 mr.map_locality(5, nullptr, [](std::uint64_t, KeyValue&) {});
               }),
               InputError);
}

TEST(MapLocality, EmitsFlowIntoPipeline) {
  // map_locality output must feed collate/reduce like a normal map.
  sim::EngineConfig ec;
  ec.nprocs = 4;
  ec.stack_bytes = 256 * 1024;
  sim::Engine engine(ec);
  std::mutex mu;
  std::size_t groups = 0;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm);
    mr.map_locality(
        12, [](std::uint64_t t) { return t % 3; },
        [](std::uint64_t t, KeyValue& kv) {
          kv.add("key" + std::to_string(t % 3), std::to_string(t));
        });
    const auto unique = mr.collate();
    EXPECT_EQ(unique, 3u);
    mr.reduce([&](const KmvGroup& g, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      ++groups;
      EXPECT_EQ(g.values.size(), 4u);
    });
  });
  EXPECT_EQ(groups, 3u);
}

}  // namespace
}  // namespace mrbio::mrmpi
