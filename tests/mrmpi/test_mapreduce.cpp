// Integration tests for the MapReduce engine over the simulated machine:
// the three map styles, collate semantics, word-count style pipelines,
// master-worker load balancing, and spill accounting.
#include "mrmpi/mapreduce.hpp"

#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

/// Runs `body` on `n` simulated ranks with a fresh MapReduce per rank.
double run_mr(int n, MapReduceConfig cfg,
              const std::function<void(MapReduce&, mpi::Comm&)>& body) {
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    body(mr, comm);
  });
  return engine.elapsed();
}

class MapStyleP : public ::testing::TestWithParam<std::tuple<MapStyle, int>> {};

TEST_P(MapStyleP, EveryTaskRunsExactlyOnce) {
  const auto [style, nprocs] = GetParam();
  MapReduceConfig cfg;
  cfg.map_style = style;
  std::mutex mu;
  std::multiset<std::uint64_t> seen;
  const std::uint64_t ntasks = 37;
  run_mr(nprocs, cfg, [&](MapReduce& mr, mpi::Comm&) {
    const auto total = mr.map(ntasks, [&](std::uint64_t t, KeyValue& kv) {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(t);
      }
      kv.add("task", std::to_string(t));
    });
    EXPECT_EQ(total, ntasks);
  });
  EXPECT_EQ(seen.size(), ntasks);
  for (std::uint64_t t = 0; t < ntasks; ++t) EXPECT_EQ(seen.count(t), 1u) << t;
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndSizes, MapStyleP,
    ::testing::Combine(::testing::Values(MapStyle::Chunk, MapStyle::Stride,
                                         MapStyle::MasterWorker),
                       ::testing::Values(1, 2, 5, 16)));

TEST(MapReduce, MasterRankRunsNoTasks) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  std::mutex mu;
  std::map<int, std::uint64_t> tasks_by_rank;
  run_mr(4, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    mr.map(20, [&](std::uint64_t, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      tasks_by_rank[comm.rank()]++;
    });
  });
  EXPECT_EQ(tasks_by_rank.count(0), 0u);
  std::uint64_t total = 0;
  for (const auto& [rank, n] : tasks_by_rank) total += n;
  EXPECT_EQ(total, 20u);
}

TEST(MapReduce, MasterWorkerFewerTasksThanWorkers) {
  // ntasks < workers: the surplus workers must receive stop tokens right
  // away (no hang waiting for work that never comes) and every task still
  // runs exactly once.
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  std::mutex mu;
  std::multiset<std::uint64_t> seen;
  run_mr(8, cfg, [&](MapReduce& mr, mpi::Comm&) {
    const auto total = mr.map(3, [&](std::uint64_t t, KeyValue& kv) {
      {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(t);
      }
      kv.add("task", std::to_string(t));
    });
    EXPECT_EQ(total, 3u);
  });
  EXPECT_EQ(seen.size(), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) EXPECT_EQ(seen.count(t), 1u) << t;
}

TEST(MapReduce, MasterWorkerZeroTasks) {
  // ntasks == 0: every worker's first request is answered with a stop
  // token, the map completes without running anything, and nothing hangs.
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  std::mutex mu;
  int runs = 0;
  run_mr(4, cfg, [&](MapReduce& mr, mpi::Comm&) {
    const auto total = mr.map(0, [&](std::uint64_t, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      ++runs;
    });
    EXPECT_EQ(total, 0u);
    EXPECT_EQ(mr.stats().map_tasks_run, 0u);
  });
  EXPECT_EQ(runs, 0);
}

TEST(MapReduce, ZeroTasksAllStyles) {
  for (const MapStyle style : {MapStyle::Chunk, MapStyle::Stride,
                               MapStyle::MasterWorker}) {
    MapReduceConfig cfg;
    cfg.map_style = style;
    run_mr(3, cfg, [&](MapReduce& mr, mpi::Comm&) {
      EXPECT_EQ(mr.map(0, [](std::uint64_t, KeyValue&) { FAIL(); }), 0u);
    });
  }
}

TEST(MapReduce, MasterWorkerBalancesHeterogeneousTasks) {
  // One long task plus many short ones: with greedy scheduling the long
  // task must not serialize everything behind it. Elapsed should be close
  // to the long task, not to long + short_total.
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  const double elapsed = run_mr(3, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    mr.map(11, [&](std::uint64_t t, KeyValue&) {
      comm.compute(t == 0 ? 10.0 : 1.0);
    });
  });
  // 2 workers: one takes the 10 s task, the other the ten 1 s tasks.
  EXPECT_GE(elapsed, 10.0);
  EXPECT_LT(elapsed, 11.0);
}

TEST(MapReduce, ChunkStyleSuffersFromStragglerPlacement) {
  // Same workload with static chunks: tasks 0..4 land on rank 0 (the 10 s
  // task plus four 1 s tasks), so elapsed must be >= 14 s.
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  const double elapsed = run_mr(2, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    mr.map(11, [&](std::uint64_t t, KeyValue&) {
      comm.compute(t == 0 ? 10.0 : 1.0);
    });
  });
  EXPECT_GE(elapsed, 14.0);
}

TEST(MapReduce, WordCountPipeline) {
  // The canonical MapReduce exercise across 4 ranks.
  const std::vector<std::string> docs = {"a b a", "b c", "a", "c c b"};
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::map<std::string, int> counts;
  run_mr(4, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(docs.size(), [&](std::uint64_t t, KeyValue& kv) {
      std::string word;
      for (char c : docs[t] + " ") {
        if (c == ' ') {
          if (!word.empty()) kv.add(word, "1");
          word.clear();
        } else {
          word.push_back(c);
        }
      }
    });
    const auto unique_keys = mr.collate();
    EXPECT_EQ(unique_keys, 3u);
    mr.reduce([&](const KmvGroup& g, KeyValue& out) {
      out.add(to_string(g.key), std::to_string(g.values.size()));
    });
    // Collect results on every rank's local kv.
    for (std::size_t i = 0; i < mr.kv().size(); ++i) {
      const KvPair p = mr.kv().pair(i);
      std::lock_guard<std::mutex> lock(mu);
      counts[to_string(p.key)] = std::stoi(to_string(p.value));
    }
  });
  EXPECT_EQ(counts.at("a"), 3);
  EXPECT_EQ(counts.at("b"), 3);
  EXPECT_EQ(counts.at("c"), 3);
}

TEST(MapReduce, AggregatePlacesKeyOnHashRank) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::map<std::string, std::set<int>> key_ranks;
  run_mr(4, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    // Every rank emits every key once.
    mr.map(4, [&](std::uint64_t, KeyValue& kv) {
      for (const char* k : {"k1", "k2", "k3", "k4", "k5"}) kv.add(k, "v");
    });
    mr.aggregate();
    for (std::size_t i = 0; i < mr.kv().size(); ++i) {
      std::lock_guard<std::mutex> lock(mu);
      key_ranks[to_string(mr.kv().pair(i).key)].insert(comm.rank());
    }
  });
  ASSERT_EQ(key_ranks.size(), 5u);
  for (const auto& [key, ranks] : key_ranks) {
    EXPECT_EQ(ranks.size(), 1u) << "key " << key << " split across ranks";
    EXPECT_EQ(*ranks.begin(),
              key_rank(std::as_bytes(std::span(key.data(), key.size())), 4))
        << key;
  }
}

TEST(MapReduce, CollateGroupsAcrossRanks) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::size_t groups_seen = 0;
  std::size_t values_seen = 0;
  run_mr(3, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(6, [&](std::uint64_t t, KeyValue& kv) {
      kv.add("shared", std::to_string(t));
    });
    const auto unique_keys = mr.collate();
    EXPECT_EQ(unique_keys, 1u);
    mr.reduce([&](const KmvGroup& g, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      groups_seen += 1;
      values_seen += g.values.size();
    });
  });
  EXPECT_EQ(groups_seen, 1u);
  EXPECT_EQ(values_seen, 6u);
}

TEST(MapReduce, ReduceWithoutConvertThrows) {
  EXPECT_THROW(run_mr(2, {}, [&](MapReduce& mr, mpi::Comm&) {
                 mr.map(2, [](std::uint64_t, KeyValue& kv) { kv.add("k", "v"); });
                 mr.reduce([](const KmvGroup&, KeyValue&) {});
               }),
               InputError);
}

TEST(MapReduce, MapAppendKeepsExistingPairs) {
  run_mr(1, {}, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) { kv.add("first", "1"); });
    const auto total = mr.map_append(1, [](std::uint64_t, KeyValue& kv) {
      kv.add("second", "2");
    });
    EXPECT_EQ(total, 2u);
    EXPECT_EQ(mr.kv().size(), 2u);
  });
}

TEST(MapReduce, GatherCollectsEverythingOnRankZero) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::map<int, std::size_t> sizes;
  run_mr(3, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    mr.map(9, [&](std::uint64_t t, KeyValue& kv) {
      kv.add("t" + std::to_string(t), "v");
    });
    const auto total = mr.gather();
    EXPECT_EQ(total, 9u);
    std::lock_guard<std::mutex> lock(mu);
    sizes[comm.rank()] = mr.kv().size();
  });
  EXPECT_EQ(sizes.at(0), 9u);
  EXPECT_EQ(sizes.at(1), 0u);
  EXPECT_EQ(sizes.at(2), 0u);
}

TEST(MapReduce, SortKeysOrdersLexicographically) {
  run_mr(1, {}, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) {
      kv.add("zeta", "1");
      kv.add("alpha", "2");
      kv.add("mu", "3");
    });
    mr.sort_keys();
    EXPECT_EQ(to_string(mr.kv().pair(0).key), "alpha");
    EXPECT_EQ(to_string(mr.kv().pair(1).key), "mu");
    EXPECT_EQ(to_string(mr.kv().pair(2).key), "zeta");
  });
}

TEST(MapReduce, SpillChargedBeyondMemoryBudget) {
  MapReduceConfig small;
  small.map_style = MapStyle::Stride;
  small.memsize_bytes = 64;
  small.spill_byte_seconds = 1.0;  // exaggerated so the charge dominates
  MapReduceConfig big = small;
  big.memsize_bytes = 1ull << 30;

  auto fill = [](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [](std::uint64_t, KeyValue& kv) {
      const std::string v(100, 'x');
      kv.add("k", v);
    });
  };
  const double t_small = run_mr(1, small, fill);
  const double t_big = run_mr(1, big, fill);
  EXPECT_GT(t_small, t_big + 30.0);  // ~(101+1-64) spilled bytes * 1 s
}

TEST(MapReduce, StatsTrackTasksAndEmissions) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  run_mr(1, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(5, [](std::uint64_t, KeyValue& kv) { kv.add("k", "v"); });
    EXPECT_EQ(mr.stats().map_tasks_run, 5u);
    EXPECT_EQ(mr.stats().kv_pairs_emitted, 5u);
  });
}

TEST(MapReduce, DeterministicAcrossRuns) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  auto run_once = [&]() {
    std::vector<std::string> trace;
    std::mutex mu;
    const double t = run_mr(4, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
      mr.map(13, [&](std::uint64_t task, KeyValue& kv) {
        comm.compute(0.1 * static_cast<double>(task % 3 + 1));
        kv.add("t" + std::to_string(task), std::to_string(comm.rank()));
      });
      mr.collate();
      mr.reduce([&](const KmvGroup& g, KeyValue&) {
        std::lock_guard<std::mutex> lock(mu);
        trace.push_back(to_string(g.key));
      });
    });
    return std::pair{trace, t};
  };
  const auto [trace1, t1] = run_once();
  const auto [trace2, t2] = run_once();
  EXPECT_EQ(trace1, trace2);
  EXPECT_DOUBLE_EQ(t1, t2);
}

}  // namespace
}  // namespace mrbio::mrmpi
