// The communication-efficient shuffle: codec roundtrips, destination-rank
// mixing, the staged exchange against the flat one, the self-send and
// spill-accounting regressions, and byte-identical collate() results
// across every shuffle mode.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "mrmpi/mapreduce.hpp"
#include "mrmpi/shuffle_codec.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

std::span<const std::byte> as_bytes(const std::string& s) {
  return std::as_bytes(std::span(s.data(), s.size()));
}

double run_mr(int n, MapReduceConfig cfg,
              const std::function<void(MapReduce&, mpi::Comm&)>& body) {
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    body(mr, comm);
  });
  return engine.elapsed();
}

// ---------------------------------------------------------------------------
// Varint/RLE codec

std::vector<std::byte> bytes_of(std::initializer_list<int> vals) {
  std::vector<std::byte> out;
  for (int v : vals) out.push_back(static_cast<std::byte>(v));
  return out;
}

TEST(ShuffleCodec, RoundTripsEmptyLiteralAndRuns) {
  for (const auto& raw :
       {std::vector<std::byte>{}, bytes_of({1, 2, 3}), std::vector<std::byte>(1000, std::byte{7}),
        bytes_of({5, 5, 9, 9, 9, 9, 9, 1, 2, 3, 3, 3, 3})}) {
    const auto packed = shuffle_compress(raw);
    EXPECT_EQ(shuffle_decoded_size(packed), raw.size());
    EXPECT_EQ(shuffle_decompress(packed), raw);
  }
}

TEST(ShuffleCodec, RoundTripsRandomPayloads) {
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::byte> raw(rng() % 4096);
    for (auto& b : raw) {
      // Mix of high-entropy and runs so both code paths execute.
      b = static_cast<std::byte>(rng() % (trial % 2 == 0 ? 256 : 3));
    }
    const auto packed = shuffle_compress(raw);
    EXPECT_EQ(shuffle_decompress(packed), raw);
  }
}

TEST(ShuffleCodec, CompressesRepetitivePayloads) {
  const std::vector<std::byte> raw(64 * 1024, std::byte{0});
  const auto packed = shuffle_compress(raw);
  // Repeat runs cap at 130 bytes per 2-byte control pair: ~64x.
  EXPECT_LT(packed.size() * 50, raw.size());
}

TEST(ShuffleCodec, RejectsTruncatedFrames) {
  auto packed = shuffle_compress(bytes_of({1, 2, 3, 4, 5, 6, 7, 8}));
  packed.pop_back();
  EXPECT_THROW(shuffle_decompress(packed), Error);
  EXPECT_THROW(shuffle_decompress({}), Error);
}

// ---------------------------------------------------------------------------
// Destination-rank mixing (the small-cardinality skew fix)

TEST(ShuffleHash, SequentialKeysSpreadEvenly) {
  // Adversarial sets: sequential decimal ids, fixed-prefix ids, and tiny
  // binary counters — exactly the inputs where the unmixed FNV hash
  // funnelled everything onto a few ranks.
  const int nranks = 8;
  for (const char* prefix : {"", "seq_", "chr1:"}) {
    std::vector<std::uint64_t> per_rank(nranks, 0);
    const int nkeys = 4000;
    for (int i = 0; i < nkeys; ++i) {
      const std::string key = std::string(prefix) + std::to_string(i);
      const int r = key_rank(as_bytes(key), nranks);
      ASSERT_GE(r, 0);
      ASSERT_LT(r, nranks);
      ++per_rank[static_cast<std::size_t>(r)];
    }
    const std::uint64_t max = *std::max_element(per_rank.begin(), per_rank.end());
    const double mean = static_cast<double>(nkeys) / nranks;
    EXPECT_LT(static_cast<double>(max), 2.0 * mean) << "prefix " << prefix;
  }
}

TEST(ShuffleHash, BinaryCounterKeysSpreadEvenly) {
  const int nranks = 6;
  std::vector<std::uint64_t> per_rank(nranks, 0);
  const std::uint32_t nkeys = 3000;
  for (std::uint32_t i = 0; i < nkeys; ++i) {
    const auto key = std::as_bytes(std::span(&i, 1));
    ++per_rank[static_cast<std::size_t>(key_rank(key, nranks))];
  }
  const std::uint64_t max = *std::max_element(per_rank.begin(), per_rank.end());
  EXPECT_LT(static_cast<double>(max), 2.0 * static_cast<double>(nkeys) / nranks);
}

// ---------------------------------------------------------------------------
// Self-send regression: keys that all land on their emitting rank must
// neither charge wire bytes nor scale aggregate() cost with payload size.

/// A key string `r<rank>x<n>` with key_rank(key, nranks) == rank.
std::string local_key(int rank, int nranks, int salt) {
  for (int n = salt;; ++n) {
    const std::string candidate =
        "r" + std::to_string(rank) + "x" + std::to_string(n);
    if (key_rank(as_bytes(candidate), nranks) == rank) return candidate;
  }
}

TEST(ShuffleSelfSend, AllLocalKeysChargeNoWireBytes) {
  const int nranks = 4;
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  std::mutex mu;
  std::uint64_t total_sent = 0;
  std::uint64_t total_pairs = 0;
  run_mr(nranks, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    mr.map(static_cast<std::uint64_t>(nranks), [&](std::uint64_t, KeyValue& kv) {
      for (int i = 0; i < 32; ++i) {
        kv.add(local_key(comm.rank(), nranks, i), std::string(1024, 'v'));
      }
    });
    mr.aggregate();
    std::lock_guard<std::mutex> lock(mu);
    total_sent += mr.stats().aggregate_bytes_sent;
    total_pairs += mr.kv().size();
  });
  EXPECT_EQ(total_sent, 0u);
  EXPECT_EQ(total_pairs, 32u * nranks);
}

TEST(ShuffleSelfSend, AggregateTimeIndependentOfLocalPayload) {
  // With every key rank-local the payload never crosses the wire, so the
  // simulated aggregate must cost the same for 1 KiB and 1 MiB values.
  const int nranks = 4;
  const auto run_with_value_bytes = [&](std::size_t value_bytes) {
    MapReduceConfig cfg;
    cfg.map_style = MapStyle::Stride;
    return run_mr(nranks, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
      mr.map(static_cast<std::uint64_t>(nranks), [&](std::uint64_t, KeyValue& kv) {
        for (int i = 0; i < 4; ++i) {
          kv.add(local_key(comm.rank(), nranks, i), std::string(value_bytes, 'v'));
        }
      });
      mr.aggregate();
    });
  };
  EXPECT_DOUBLE_EQ(run_with_value_bytes(1 << 10), run_with_value_bytes(1 << 20));
}

// ---------------------------------------------------------------------------
// Spill accounting: a store-replacing cycle that grows past the budget and
// then shrinks must charge the second cycle's spill too.

TEST(ShuffleSpill, StoreReplacementChargesRespill) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  cfg.memsize_bytes = 4 * 1024;
  std::mutex mu;
  std::uint64_t spilled = 0;
  run_mr(1, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(1, [&](std::uint64_t, KeyValue& kv) {
      for (int i = 0; i < 64; ++i) kv.add("k" + std::to_string(i), std::string(1024, 'a'));
    });
    // Shrinks the store (~16 KiB) but still past the 4 KiB budget: these
    // are new pages and must be charged, not hidden by the 64 KiB
    // high-water mark of the map cycle.
    mr.map_kv([&](const KvPair& pair, KeyValue& out) {
      const std::string key = to_string(pair.key);
      if (key.size() >= 2 && (key[1] - '0') % 4 == 0) out.add(pair.key, pair.value);
    });
    std::lock_guard<std::mutex> lock(mu);
    spilled = mr.stats().spilled_bytes;
  });
  // First cycle spills ~(64 KiB + keys) - 4 KiB; the replacement store
  // spills again beyond the budget instead of riding the old high-water.
  EXPECT_GT(spilled, 64u * 1024);
}

TEST(ShuffleSpill, OversizedGroupSurvivesConvert) {
  // One key whose value list alone dwarfs memsize_bytes: convert() must
  // deliver every value (64-bit offsets, no silent truncation).
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  cfg.memsize_bytes = 1024;
  const int nvalues = 256;
  std::mutex mu;
  std::size_t seen_values = 0;
  std::set<std::string> distinct;
  run_mr(2, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(2, [&](std::uint64_t task, KeyValue& kv) {
      for (int i = 0; i < nvalues / 2; ++i) {
        kv.add("giant", "t" + std::to_string(task) + "v" + std::to_string(i) +
                            std::string(512, 'x'));
      }
    });
    mr.collate();
    mr.reduce([&](const KmvGroup& group, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      seen_values += group.values.size();
      for (const auto& v : group.values) {
        distinct.insert(to_string(v).substr(0, 8));
      }
    });
  });
  EXPECT_EQ(seen_values, static_cast<std::size_t>(nvalues));
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(nvalues));
}

// ---------------------------------------------------------------------------
// Staged exchange vs flat: identical delivery, counted stages.

TEST(ShuffleExchange, StagedMatchesFlatAcrossRadices) {
  for (const int nranks : {1, 2, 3, 4, 7, 8}) {
    for (const int radix : {2, 3, 4, 16}) {
      sim::EngineConfig ec;
      ec.nprocs = nranks;
      ec.stack_bytes = 512 * 1024;
      sim::Engine engine(ec);
      std::mutex mu;
      bool all_equal = true;
      engine.run([&](sim::Process& p) {
        mpi::Comm comm(p);
        const int rank = comm.rank();
        const auto make_bufs = [&] {
          std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(nranks));
          for (int d = 0; d < nranks; ++d) {
            // Distinct, uneven payloads; one destination gets nothing.
            const int len = (d == (rank + 1) % nranks) ? 0 : 16 + 13 * rank + 7 * d;
            bufs[static_cast<std::size_t>(d)].assign(
                static_cast<std::size_t>(len),
                static_cast<std::byte>((rank * 37 + d * 11) & 0xFF));
          }
          return bufs;
        };
        std::vector<std::uint64_t> nominal(static_cast<std::size_t>(nranks), 100);
        const auto flat = comm.alltoallv_nominal(make_bufs(), nominal);
        int stages = 0;
        const auto staged = comm.alltoallv_staged(make_bufs(), nominal, radix, &stages);
        std::lock_guard<std::mutex> lock(mu);
        all_equal = all_equal && (flat == staged);
        if (nranks > 1) {
          EXPECT_GT(stages, 0) << "p=" << nranks << " r=" << radix;
        } else {
          EXPECT_EQ(stages, 0);
        }
      });
      EXPECT_TRUE(all_equal) << "p=" << nranks << " radix=" << radix;
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-mode equivalence: every shuffle configuration must produce the
// byte-identical KMV after collate().

std::vector<ShuffleConfig> all_shuffle_modes() {
  std::vector<ShuffleConfig> modes;
  modes.push_back({});  // flat
  ShuffleConfig combined;
  combined.combiner = true;
  modes.push_back(combined);
  ShuffleConfig tree;
  tree.exchange = ExchangeMode::Tree;
  tree.tree_radix = 2;
  modes.push_back(tree);
  ShuffleConfig tree3 = tree;
  tree3.tree_radix = 3;
  tree3.combiner = true;
  modes.push_back(tree3);
  ShuffleConfig compressed;
  compressed.compress = true;
  modes.push_back(compressed);
  ShuffleConfig everything;
  everything.combiner = true;
  everything.exchange = ExchangeMode::Tree;
  everything.tree_radix = 4;
  everything.compress = true;
  everything.overlap_spill = true;
  modes.push_back(everything);
  return modes;
}

/// Canonical dump of the post-collate() KMV: group order, key bytes,
/// value order and value bytes all included, tagged per rank.
std::map<int, std::string> collate_dump(int nranks, const ShuffleConfig& shuffle) {
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  cfg.shuffle = shuffle;
  std::mutex mu;
  std::map<int, std::string> dumps;
  run_mr(nranks, cfg, [&](MapReduce& mr, mpi::Comm& comm) {
    Rng rng(1234);  // same stream everywhere; tasks pick their slice
    const std::uint64_t ntasks = 24;
    mr.map(ntasks, [&](std::uint64_t task, KeyValue& kv) {
      Rng task_rng(1000 + task * 7919);
      const int npairs = 20 + static_cast<int>(task_rng() % 30);
      for (int i = 0; i < npairs; ++i) {
        const std::string key = "key" + std::to_string(task_rng() % 17);
        std::string value = "t" + std::to_string(task) + "i" + std::to_string(i) + ":";
        const std::size_t vlen = task_rng() % 64;
        for (std::size_t b = 0; b < vlen; ++b) {
          value.push_back(static_cast<char>('a' + task_rng() % 26));
        }
        kv.add(key, value);
      }
    });
    (void)rng;
    mr.collate();
    std::string dump;
    for (std::size_t g = 0; g < mr.kmv().size(); ++g) {
      const KmvGroup group = mr.kmv().group(g);
      dump += to_string(group.key) + "=[";
      for (const auto& v : group.values) dump += to_string(v) + ",";
      dump += "];";
    }
    std::lock_guard<std::mutex> lock(mu);
    dumps[comm.rank()] = std::move(dump);
  });
  return dumps;
}

TEST(ShuffleModes, CollateBytesIdenticalAcrossModes) {
  for (const int nranks : {1, 3, 4}) {
    const auto baseline = collate_dump(nranks, ShuffleConfig{});
    ASSERT_EQ(baseline.size(), static_cast<std::size_t>(nranks));
    const auto modes = all_shuffle_modes();
    for (std::size_t m = 1; m < modes.size(); ++m) {
      EXPECT_EQ(collate_dump(nranks, modes[m]), baseline)
          << "mode " << m << " p=" << nranks;
    }
  }
}

TEST(ShuffleModes, CombinerReportsSavingsOnRepeatedKeys) {
  ShuffleConfig combined;
  combined.combiner = true;
  MapReduceConfig flat_cfg;
  flat_cfg.map_style = MapStyle::Chunk;
  MapReduceConfig comb_cfg = flat_cfg;
  comb_cfg.shuffle = combined;
  std::mutex mu;
  std::uint64_t flat_sent = 0;
  std::uint64_t comb_sent = 0;
  std::uint64_t comb_saved = 0;
  const auto emit = [](std::uint64_t task, KeyValue& kv) {
    for (int i = 0; i < 50; ++i) {
      kv.add("hot" + std::to_string(i % 5), "v" + std::to_string(task));
    }
  };
  run_mr(4, flat_cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(8, emit);
    mr.aggregate();
    std::lock_guard<std::mutex> lock(mu);
    flat_sent += mr.stats().aggregate_bytes_sent;
  });
  run_mr(4, comb_cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(8, emit);
    mr.aggregate();
    std::lock_guard<std::mutex> lock(mu);
    comb_sent += mr.stats().aggregate_bytes_sent;
    comb_saved += mr.stats().shuffle_combined_bytes;
  });
  EXPECT_LT(comb_sent, flat_sent);
  EXPECT_EQ(comb_saved, flat_sent - comb_sent);
  // The acceptance bar: repeated keys must save at least 20% of the wire.
  EXPECT_LT(static_cast<double>(comb_sent), 0.8 * static_cast<double>(flat_sent));
}

TEST(ShuffleModes, TreeExchangeCountsStages) {
  ShuffleConfig tree;
  tree.exchange = ExchangeMode::Tree;
  tree.tree_radix = 2;
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Chunk;
  cfg.shuffle = tree;
  std::mutex mu;
  std::uint64_t stages = 0;
  run_mr(8, cfg, [&](MapReduce& mr, mpi::Comm&) {
    mr.map(8, [&](std::uint64_t task, KeyValue& kv) {
      kv.add("k" + std::to_string(task), "v");
    });
    mr.aggregate();
    std::lock_guard<std::mutex> lock(mu);
    stages += mr.stats().shuffle_stages;
  });
  // log2(8) = 3 digit stages of one hop each per rank.
  EXPECT_EQ(stages, 8u * 3u);
}

// ---------------------------------------------------------------------------
// Compressed spill pages

TEST(ShuffleSpillPages, CompressedPagesRoundTrip) {
  SpillPolicy policy;
  policy.page_bytes = 4 * 1024;
  policy.max_resident_pages = 2;
  policy.compress = true;
  KeyValue kv(policy);
  std::vector<std::string> keys;
  for (int i = 0; i < 200; ++i) {
    keys.push_back("key" + std::to_string(i));
    kv.add(keys.back(), std::string(256, static_cast<char>('a' + i % 3)));
  }
  EXPECT_GT(kv.spilled_bytes(), 0u);
  // Repetitive values: on-disk pages must be much smaller than raw.
  EXPECT_LT(kv.spilled_bytes() * 4, kv.bytes());
  std::size_t i = 0;
  kv.for_each([&](const KvPair& pair) {
    EXPECT_EQ(to_string(pair.key), keys[i]);
    EXPECT_EQ(pair.value.size(), 256u);
    ++i;
  });
  EXPECT_EQ(i, keys.size());
}

}  // namespace
}  // namespace mrbio::mrmpi
