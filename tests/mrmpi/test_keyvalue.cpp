// Unit tests for KeyValue / KeyMultiValue containers and the key hash.
#include "mrmpi/keyvalue.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "common/error.hpp"

namespace mrbio::mrmpi {
namespace {

std::string to_string(std::span<const std::byte> s) {
  return {reinterpret_cast<const char*>(s.data()), s.size()};
}

TEST(KeyValue, AddAndReadBack) {
  KeyValue kv;
  kv.add("alpha", "1");
  kv.add("beta", "22");
  ASSERT_EQ(kv.size(), 2u);
  EXPECT_EQ(to_string(kv.pair(0).key), "alpha");
  EXPECT_EQ(to_string(kv.pair(0).value), "1");
  EXPECT_EQ(to_string(kv.pair(1).key), "beta");
  EXPECT_EQ(to_string(kv.pair(1).value), "22");
}

TEST(KeyValue, DefaultNominalEqualsRealSize) {
  KeyValue kv;
  kv.add("key", "value");
  EXPECT_EQ(kv.pair(0).nominal_bytes, 8u);
  EXPECT_EQ(kv.nominal_bytes(), 8u);
}

TEST(KeyValue, ExplicitNominalOverrides) {
  KeyValue kv;
  const std::byte k[1]{std::byte{'k'}};
  kv.add(std::span(k), {}, 1'000'000);
  EXPECT_EQ(kv.pair(0).nominal_bytes, 1'000'000u);
  EXPECT_EQ(kv.nominal_bytes(), 1'000'000u);
  EXPECT_EQ(kv.bytes(), 1u);
}

TEST(KeyValue, EmptyKeyAndValueAllowed) {
  KeyValue kv;
  kv.add("", "");
  ASSERT_EQ(kv.size(), 1u);
  EXPECT_TRUE(kv.pair(0).key.empty());
  EXPECT_TRUE(kv.pair(0).value.empty());
}

TEST(KeyValue, ClearResets) {
  KeyValue kv;
  kv.add("a", "b");
  kv.clear();
  EXPECT_TRUE(kv.empty());
  EXPECT_EQ(kv.bytes(), 0u);
  EXPECT_EQ(kv.nominal_bytes(), 0u);
}

TEST(KeyValue, AbsorbMergesPreservingOrder) {
  KeyValue a;
  a.add("one", "1");
  KeyValue b;
  b.add("two", "2");
  b.add("three", "3");
  a.absorb(std::move(b));
  ASSERT_EQ(a.size(), 3u);
  EXPECT_EQ(to_string(a.pair(0).key), "one");
  EXPECT_EQ(to_string(a.pair(1).key), "two");
  EXPECT_EQ(to_string(a.pair(2).key), "three");
}

TEST(KeyValue, AbsorbIntoEmpty) {
  KeyValue a;
  KeyValue b;
  b.add("x", "y");
  a.absorb(std::move(b));
  ASSERT_EQ(a.size(), 1u);
  EXPECT_EQ(to_string(a.pair(0).value), "y");
}

TEST(KeyValue, PairIndexOutOfRangeThrows) {
  KeyValue kv;
  EXPECT_THROW(kv.pair(0), LogicError);
}

TEST(KeyMultiValue, GroupsByKeyFirstOccurrenceOrder) {
  KeyValue kv;
  kv.add("b", "1");
  kv.add("a", "2");
  kv.add("b", "3");
  kv.add("a", "4");
  kv.add("c", "5");
  KeyMultiValue kmv = KeyMultiValue::from_keyvalue(kv);
  ASSERT_EQ(kmv.size(), 3u);
  EXPECT_EQ(to_string(kmv.group(0).key), "b");
  ASSERT_EQ(kmv.group(0).values.size(), 2u);
  EXPECT_EQ(to_string(kmv.group(0).values[0]), "1");
  EXPECT_EQ(to_string(kmv.group(0).values[1]), "3");
  EXPECT_EQ(to_string(kmv.group(1).key), "a");
  EXPECT_EQ(to_string(kmv.group(2).key), "c");
  ASSERT_EQ(kmv.group(2).values.size(), 1u);
}

TEST(KeyMultiValue, EmptyInput) {
  KeyValue kv;
  KeyMultiValue kmv = KeyMultiValue::from_keyvalue(kv);
  EXPECT_TRUE(kmv.empty());
}

TEST(KeyMultiValue, NominalBytesSumPerGroup) {
  KeyValue kv;
  const std::byte k[1]{std::byte{'k'}};
  kv.add(std::span(k), {}, 10);
  kv.add(std::span(k), {}, 32);
  KeyMultiValue kmv = KeyMultiValue::from_keyvalue(kv);
  ASSERT_EQ(kmv.size(), 1u);
  EXPECT_EQ(kmv.group(0).nominal_bytes, 42u);
  EXPECT_EQ(kmv.nominal_bytes(), 42u);
}

TEST(KeyMultiValue, BinaryKeysWithEmbeddedNulls) {
  KeyValue kv;
  const std::string k1("a\0b", 3);
  const std::string k2("a\0c", 3);
  kv.add(k1, "1");
  kv.add(k2, "2");
  kv.add(k1, "3");
  KeyMultiValue kmv = KeyMultiValue::from_keyvalue(kv);
  ASSERT_EQ(kmv.size(), 2u);
  EXPECT_EQ(kmv.group(0).values.size(), 2u);
  EXPECT_EQ(kmv.group(1).values.size(), 1u);
}

TEST(KeyHash, DeterministicAndSpreads) {
  const std::string a = "query_000123";
  const std::string b = "query_000124";
  const auto h = [](const std::string& s) {
    return key_hash(std::as_bytes(std::span(s.data(), s.size())));
  };
  EXPECT_EQ(h(a), h(a));
  EXPECT_NE(h(a), h(b));
  // Spread: sequential keys should not collide mod small rank counts.
  std::set<std::uint64_t> buckets;
  for (int i = 0; i < 64; ++i) {
    buckets.insert(h("q" + std::to_string(i)) % 16);
  }
  EXPECT_GE(buckets.size(), 12u);
}

}  // namespace
}  // namespace mrbio::mrmpi
