// Tests for the out-of-core KeyValue paging: real spill files, transparent
// reload on sequential and random access, sort on spilled data, and the
// whole MapReduce pipeline under a tiny memory budget.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>

#include "common/error.hpp"
#include "mrmpi/mapreduce.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_spill_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  SpillPolicy tiny_policy(std::size_t resident_pages = 2) const {
    SpillPolicy p;
    p.page_bytes = 1024;
    p.max_resident_pages = resident_pages;
    p.dir = dir_.string();
    return p;
  }

  std::size_t spill_files() const {
    std::size_t n = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
      if (e.path().extension() == ".spill") ++n;
    }
    return n;
  }

  std::filesystem::path dir_;
};

std::string payload(int i) { return "value_" + std::to_string(i) + std::string(90, 'x'); }

TEST_F(SpillTest, SpillsBeyondBudgetWithoutVisibleFiles) {
  KeyValue kv(tiny_policy());
  for (int i = 0; i < 200; ++i) kv.add("key" + std::to_string(i), payload(i));
  EXPECT_EQ(kv.size(), 200u);
  EXPECT_GT(kv.spilled_bytes(), 0u);
  // The spill file is unlinked immediately after creation (the open
  // descriptor keeps the data alive), so a crashed run can never leak
  // files into the scratch directory.
  EXPECT_EQ(spill_files(), 0u);
}

TEST_F(SpillTest, FullyResidentPolicyNeverSpills) {
  KeyValue kv;  // default policy
  for (int i = 0; i < 2'000; ++i) kv.add("key" + std::to_string(i), payload(i));
  EXPECT_EQ(kv.spilled_bytes(), 0u);
}

TEST_F(SpillTest, ForEachReadsBackEverythingInOrder) {
  KeyValue kv(tiny_policy());
  for (int i = 0; i < 300; ++i) kv.add("key" + std::to_string(i), payload(i));
  int i = 0;
  kv.for_each([&](const KvPair& p) {
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.key.data()), p.key.size()),
              "key" + std::to_string(i));
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.value.data()), p.value.size()),
              payload(i));
    ++i;
  });
  EXPECT_EQ(i, 300);
}

TEST_F(SpillTest, RandomAccessThroughPageCache) {
  KeyValue kv(tiny_policy());
  for (int i = 0; i < 250; ++i) kv.add("key" + std::to_string(i), payload(i));
  // Access in a hostile pattern: front, back, middle, repeat.
  for (const std::size_t i : {0u, 249u, 125u, 3u, 200u, 125u, 0u, 249u}) {
    const KvPair p = kv.pair(i);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.key.data()), p.key.size()),
              "key" + std::to_string(i));
  }
}

TEST_F(SpillTest, SortByKeyWorksOnSpilledStore) {
  KeyValue kv(tiny_policy(3));
  for (int i = 299; i >= 0; --i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    kv.add(std::string(buf), payload(i));
  }
  EXPECT_GT(kv.spilled_bytes(), 0u);
  kv.sort_by_key();
  int i = 0;
  kv.for_each([&](const KvPair& p) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "k%05d", i);
    EXPECT_EQ(std::string(reinterpret_cast<const char*>(p.key.data()), p.key.size()), buf);
    ++i;
  });
  EXPECT_EQ(i, 300);
}

TEST_F(SpillTest, AbsorbAcrossSpilledStores) {
  KeyValue a(tiny_policy());
  KeyValue b(tiny_policy());
  for (int i = 0; i < 120; ++i) a.add("a" + std::to_string(i), payload(i));
  for (int i = 0; i < 120; ++i) b.add("b" + std::to_string(i), payload(i));
  a.absorb(std::move(b));
  EXPECT_EQ(a.size(), 240u);
  std::size_t count = 0;
  a.for_each([&](const KvPair&) { ++count; });
  EXPECT_EQ(count, 240u);
}

TEST_F(SpillTest, ClearKeepsStoreUsableAndLeaksNothing) {
  {
    KeyValue kv(tiny_policy());
    for (int i = 0; i < 200; ++i) kv.add("key" + std::to_string(i), payload(i));
    EXPECT_EQ(spill_files(), 0u);  // unlinked at creation
    kv.clear();
    EXPECT_EQ(spill_files(), 0u);
    EXPECT_EQ(kv.size(), 0u);
  }
  EXPECT_EQ(spill_files(), 0u);
}

TEST_F(SpillTest, DestructorLeaksNoFiles) {
  {
    KeyValue kv(tiny_policy());
    for (int i = 0; i < 200; ++i) kv.add("key" + std::to_string(i), payload(i));
    EXPECT_GT(kv.spilled_bytes(), 0u);
  }
  EXPECT_EQ(spill_files(), 0u);
}

TEST_F(SpillTest, DefaultDirHonorsTmpdir) {
  // Point $TMPDIR at a non-existent directory: spill-file creation must
  // fail there, proving the default ("") policy resolves through $TMPDIR.
  const char* old_tmpdir = std::getenv("TMPDIR");
  const std::string saved = old_tmpdir != nullptr ? old_tmpdir : "";
  const std::string bogus = (dir_ / "does_not_exist").string();
  ::setenv("TMPDIR", bogus.c_str(), 1);
  SpillPolicy p;  // dir left at the "" default
  p.page_bytes = 1024;
  p.max_resident_pages = 2;
  KeyValue kv(p);
  try {
    for (int i = 0; i < 200; ++i) kv.add("key" + std::to_string(i), payload(i));
    ADD_FAILURE() << "expected spill-file creation to fail inside $TMPDIR";
  } catch (const InputError& e) {
    EXPECT_NE(std::string(e.what()).find(bogus), std::string::npos);
  }
  if (old_tmpdir != nullptr) {
    ::setenv("TMPDIR", saved.c_str(), 1);
  } else {
    ::unsetenv("TMPDIR");
  }
}

TEST_F(SpillTest, GenerationAdvancesOnSpanInvalidation) {
  KeyValue kv(tiny_policy());
  const std::uint64_t g0 = kv.generation();
  for (int i = 0; i < 200; ++i) kv.add("key" + std::to_string(i), payload(i));
  const std::uint64_t g1 = kv.generation();
  EXPECT_GT(g1, g0);  // appends (and the spills they trigger) invalidate
  (void)kv.pair(0);
  (void)kv.pair(199);
  EXPECT_GE(kv.generation(), g1);  // random access may evict cached pages
  kv.sort_by_key();
  const std::uint64_t g2 = kv.generation();
  EXPECT_GT(g2, g1);
  kv.clear();
  EXPECT_GT(kv.generation(), g2);
}

TEST_F(SpillTest, OversizedEntryRejected) {
  KeyValue kv(tiny_policy());
  const std::string huge(5'000, 'z');
  EXPECT_THROW(kv.add("k", huge), InputError);
}

TEST_F(SpillTest, BadPolicyRejected) {
  SpillPolicy p;
  p.page_bytes = 16;
  EXPECT_THROW(KeyValue{p}, InputError);
  SpillPolicy p2;
  p2.max_resident_pages = 1;
  EXPECT_THROW(KeyValue{p2}, InputError);
}

TEST_F(SpillTest, WordCountPipelineUnderTinyBudget) {
  // The whole MapReduce cycle with page_to_disk on and a budget small
  // enough to force spilling in map, aggregate and reduce.
  MapReduceConfig cfg;
  cfg.map_style = MapStyle::Stride;
  cfg.page_to_disk = true;
  cfg.spill_dir = dir_.string();
  cfg.page_bytes = 1024;
  cfg.memsize_bytes = 3 * 1024;

  std::mutex mu;
  std::map<std::string, int> counts;
  std::uint64_t spilled = 0;

  sim::EngineConfig ec;
  ec.nprocs = 3;
  ec.stack_bytes = 512 * 1024;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    mr.map(60, [](std::uint64_t t, KeyValue& kv) {
      // Each task emits 20 padded words from a 7-word vocabulary.
      for (int w = 0; w < 20; ++w) {
        kv.add("word" + std::to_string((t + static_cast<std::uint64_t>(w)) % 7),
               std::string(64, 'p'));
      }
    });
    {
      std::lock_guard<std::mutex> lock(mu);
      spilled += mr.kv().spilled_bytes();
    }
    mr.collate();
    mr.reduce([&](const KmvGroup& g, KeyValue&) {
      std::lock_guard<std::mutex> lock(mu);
      counts[std::string(reinterpret_cast<const char*>(g.key.data()), g.key.size())] =
          static_cast<int>(g.values.size());
    });
  });

  EXPECT_GT(spilled, 0u) << "budget was supposed to force spilling";
  ASSERT_EQ(counts.size(), 7u);
  int total = 0;
  for (const auto& [word, n] : counts) total += n;
  EXPECT_EQ(total, 60 * 20);
}

TEST_F(SpillTest, SpilledPipelineMatchesResidentPipeline) {
  auto run_pipeline = [&](bool paged) {
    MapReduceConfig cfg;
    cfg.map_style = MapStyle::Stride;
    cfg.page_to_disk = paged;
    cfg.spill_dir = dir_.string();
    cfg.page_bytes = 1024;
    cfg.memsize_bytes = paged ? 2 * 1024 : (1ull << 30);

    std::mutex mu;
    std::map<std::string, std::size_t> result;
    sim::EngineConfig ec;
    ec.nprocs = 4;
    ec.stack_bytes = 512 * 1024;
    sim::Engine engine(ec);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      MapReduce mr(comm, cfg);
      mr.map(40, [](std::uint64_t t, KeyValue& kv) {
        kv.add("g" + std::to_string(t % 5), "payload_" + std::to_string(t));
      });
      mr.collate();
      mr.reduce([&](const KmvGroup& g, KeyValue&) {
        std::lock_guard<std::mutex> lock(mu);
        result[std::string(reinterpret_cast<const char*>(g.key.data()), g.key.size())] =
            g.values.size();
      });
    });
    return result;
  };
  EXPECT_EQ(run_pipeline(true), run_pipeline(false));
}

}  // namespace
}  // namespace mrbio::mrmpi
