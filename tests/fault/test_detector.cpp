// Phi-accrual failure detection: heartbeat-config parsing (including
// fuzz-style malformed specs — zero intervals, bad thresholds, mutated
// bytes must throw InputError, never crash) and the detector's suspicion
// dynamics (regular traffic stays trusted, silence accrues phi, the
// min-samples gate suppresses cold-start false positives, forget() wipes
// a peer's window).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "fault/detector.hpp"

namespace mrbio::fault {
namespace {

TEST(HeartbeatConfig, ParsesFieldsAndToggles) {
  const HeartbeatConfig def;
  EXPECT_FALSE(def.enabled);

  const HeartbeatConfig on = HeartbeatConfig::parse("on");
  EXPECT_TRUE(on.enabled);
  EXPECT_DOUBLE_EQ(on.interval, def.interval);
  EXPECT_DOUBLE_EQ(on.threshold, def.threshold);

  EXPECT_FALSE(HeartbeatConfig::parse("off").enabled);
  // Parsing any spec enables the detector unless "off" says otherwise.
  EXPECT_TRUE(HeartbeatConfig::parse("interval=0.5").enabled);

  const HeartbeatConfig full = HeartbeatConfig::parse(" interval=0.5 , phi=6, samples=4");
  EXPECT_TRUE(full.enabled);
  EXPECT_DOUBLE_EQ(full.interval, 0.5);
  EXPECT_DOUBLE_EQ(full.threshold, 6.0);
  EXPECT_EQ(full.min_samples, 4);
}

TEST(HeartbeatConfig, RejectsMalformedSpecs) {
  // Zero/negative intervals and thresholds.
  EXPECT_THROW(HeartbeatConfig::parse("interval=0"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("interval=-0.5"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("phi=0"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("phi=-8"), InputError);
  // Non-integer or non-positive sample gates.
  EXPECT_THROW(HeartbeatConfig::parse("samples=0"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("samples=-2"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("samples=2.5"), InputError);
  // Malformed numbers, keys and shapes.
  EXPECT_THROW(HeartbeatConfig::parse("interval=fast"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("interval=0.5x"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("interval="), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("=0.5"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("cadence=0.5"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("interval"), InputError);
  EXPECT_THROW(HeartbeatConfig::parse("interval=0.5 phi=6"), InputError);
}

TEST(HeartbeatConfig, FuzzedSpecsThrowInputErrorOrParse) {
  // Seeded byte-level mutations of valid specs: every outcome must be a
  // clean parse or an InputError — no other exception type, no crash.
  const std::vector<std::string> seeds = {
      "interval=0.5,phi=6,samples=4", "on", "off", "phi=8", "samples=3,on"};
  Rng rng(0xfeedULL);
  const std::string alphabet = "iphsamples=0123456789.,-=xon \t";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s = seeds[static_cast<std::size_t>(rng.uniform() * seeds.size())];
    const int edits = 1 + static_cast<int>(rng.uniform() * 4);
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.uniform() * (s.size() + 1));
      const char c = alphabet[static_cast<std::size_t>(rng.uniform() * alphabet.size())];
      switch (static_cast<int>(rng.uniform() * 3)) {
        case 0: s.insert(pos, 1, c); break;
        case 1: if (!s.empty()) s.erase(pos % s.size(), 1); break;
        default: if (!s.empty()) s[pos % s.size()] = c; break;
      }
    }
    try {
      const HeartbeatConfig cfg = HeartbeatConfig::parse(s);
      EXPECT_GT(cfg.interval, 0.0) << s;
      EXPECT_GT(cfg.threshold, 0.0) << s;
      EXPECT_GE(cfg.min_samples, 1) << s;
    } catch (const InputError&) {
      // Expected for malformed mutants.
    }
  }
}

HeartbeatConfig tuned() {
  HeartbeatConfig cfg;
  cfg.enabled = true;
  cfg.interval = 0.1;
  cfg.threshold = 8.0;
  cfg.min_samples = 3;
  return cfg;
}

TEST(PhiAccrual, RegularTrafficStaysTrusted) {
  PhiAccrualDetector det(tuned());
  double now = 0.0;
  for (int i = 0; i < 50; ++i) {
    det.heard(1, now);
    now += 0.1;
  }
  EXPECT_LT(det.phi(1, now), 1.0);
  EXPECT_FALSE(det.suspect(1, now));
}

TEST(PhiAccrual, SilenceAccruesSuspicion) {
  PhiAccrualDetector det(tuned());
  double now = 0.0;
  for (int i = 0; i < 10; ++i) {
    det.heard(2, now);
    now += 0.1;
  }
  EXPECT_FALSE(det.suspect(2, now + 0.2));  // one missed beat is not death
  // Phi grows monotonically with silence and eventually crosses the bar.
  const double early = det.phi(2, now + 0.5);
  const double later = det.phi(2, now + 5.0);
  EXPECT_GT(later, early);
  EXPECT_TRUE(det.suspect(2, now + 5.0));
}

TEST(PhiAccrual, MinSamplesGateSuppressesColdStart) {
  PhiAccrualDetector det(tuned());
  det.heard(3, 0.0);
  det.heard(3, 0.1);  // two arrivals < min_samples=3
  EXPECT_DOUBLE_EQ(det.phi(3, 100.0), 0.0);
  EXPECT_FALSE(det.suspect(3, 100.0));
  // A peer never heard from at all is never suspected.
  EXPECT_FALSE(det.suspect(9, 100.0));
  det.heard(3, 0.2);  // third arrival arms the detector
  EXPECT_TRUE(det.suspect(3, 100.0));
}

TEST(PhiAccrual, ForgetWipesThePeerWindow) {
  PhiAccrualDetector det(tuned());
  double now = 0.0;
  for (int i = 0; i < 5; ++i) {
    det.heard(1, now);
    now += 0.1;
  }
  ASSERT_TRUE(det.suspect(1, now + 10.0));
  det.forget(1);
  EXPECT_FALSE(det.suspect(1, now + 10.0));
  EXPECT_DOUBLE_EQ(det.phi(1, now + 10.0), 0.0);
}

TEST(PhiAccrual, MaxPhiTracksTheWorstPeer) {
  PhiAccrualDetector det(tuned());
  double now = 0.0;
  for (int i = 0; i < 5; ++i) {
    det.heard(1, now);
    det.heard(2, now);
    now += 0.1;
  }
  det.heard(1, now + 1.0);  // peer 1 keeps talking, peer 2 goes silent
  const double m = det.max_phi(now + 2.0);
  EXPECT_DOUBLE_EQ(m, det.phi(2, now + 2.0));
  EXPECT_GT(m, det.phi(1, now + 2.0));
}

}  // namespace
}  // namespace mrbio::fault
