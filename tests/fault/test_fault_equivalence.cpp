// Backend equivalence under faults: the same FaultPlan injected into the
// discrete-event simulator and the native multithreaded backend must
// leave the application results byte-identical — recovery may cost
// different (virtual vs wall-clock) time on each, but never change what
// is computed. Runs under TSan when the build enables MRBIO_SANITIZE.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <string>

#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrmpi/mapreduce.hpp"
#include "mrsom/mrsom.hpp"
#include "rt/backend.hpp"
#include "som/som.hpp"

namespace mrbio::rt {
namespace {

/// Runs `body` on `nranks` ranks of `backend` with a fresh Injector built
/// from `plan` (empty = no injector).
void run_faulted(Backend backend, int nranks, const std::string& plan,
                 const std::function<void(mpi::Comm&)>& body) {
  std::unique_ptr<fault::Injector> injector;
  LaunchConfig lc;
  lc.backend = backend;
  lc.nranks = nranks;
  if (!plan.empty()) {
    injector = std::make_unique<fault::Injector>(fault::FaultPlan::parse(plan));
    lc.injector = injector.get();
  }
  launch(lc, [&](Rank& rank) {
    mpi::Comm comm(rank);
    body(comm);
  });
}

/// Fault-tolerant map over `ntasks`; returns the multiset of task ids in
/// the final KV, gathered on rank 0.
std::multiset<std::uint64_t> ft_map(Backend backend, int nranks,
                                    const std::string& plan) {
  mrmpi::MapReduceConfig cfg;
  cfg.ft.enabled = true;
  cfg.ft.task_timeout = 2.0;
  std::multiset<std::uint64_t> tasks;
  std::mutex mu;
  run_faulted(backend, nranks, plan, [&](mpi::Comm& comm) {
    mrmpi::MapReduce mr(comm, cfg);
    mr.map(20, [](std::uint64_t t, mrmpi::KeyValue& kv) {
      kv.add("task", std::to_string(t));
    });
    mr.gather();
    if (comm.rank() == 0) {
      std::lock_guard<std::mutex> lock(mu);
      mr.kv().for_each([&](const mrmpi::KvPair& pair) {
        const std::string v(reinterpret_cast<const char*>(pair.value.data()),
                            pair.value.size());
        tasks.insert(std::stoull(v));
      });
    }
  });
  return tasks;
}

TEST(FaultEquivalence, CrashRecoveryExactlyOnceOnBothBackends) {
  // Task-count triggers fire at the same per-rank points on both
  // backends; either way every task must land exactly once.
  const std::string plan = "crash:rank=1,task=1; crash:rank=2,task=0,mode=permanent";
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    const auto tasks = ft_map(backend, 4, plan);
    EXPECT_EQ(tasks.size(), 20u) << backend_name(backend);
    for (std::uint64_t t = 0; t < 20; ++t) {
      EXPECT_EQ(tasks.count(t), 1u) << backend_name(backend) << " task " << t;
    }
  }
}

TEST(FaultEquivalence, MessageFaultsAbsorbedOnBothBackends) {
  const std::string plan =
      "drop:src=1,dst=0,count=2; dup:src=0,dst=2,count=2; "
      "delay:src=3,dst=0,by=0.05,count=2";
  const auto sim = ft_map(Backend::Sim, 4, plan);
  const auto native = ft_map(Backend::Native, 4, plan);
  EXPECT_EQ(sim.size(), 20u);
  EXPECT_EQ(sim, native);
}

TEST(FaultEquivalence, NativeTimeTriggeredCrashCompletes) {
  // Wall-clock triggers are scheduling-dependent on the native backend;
  // the output must stay exactly-once regardless of when the crash lands.
  const auto tasks = ft_map(Backend::Native, 4, "crash:rank=2@t=0.001");
  EXPECT_EQ(tasks.size(), 20u);
}

TEST(FaultEquivalence, SomCodebookIdenticalAcrossBackendsUnderFaults) {
  // The deterministic KV reduce makes the trained codebook a pure
  // function of the input: equal on sim and native, with and without
  // injected crashes and a slow rank.
  Rng rng(41);
  Matrix data(96, 6);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data(r, c) = static_cast<float>(rng.uniform());
  som::Codebook initial(som::SomGrid{5, 5}, data.cols());
  initial.init_pca(data.view());

  mrsom::ParallelSomConfig config;
  config.params.epochs = 3;
  config.block_vectors = 8;
  config.map_style = mrmpi::MapStyle::MasterWorker;
  config.deterministic_reduce = true;

  const std::string plan = "crash:rank=1,task=2; slow:rank=3,factor=2";
  std::vector<Matrix> weights;
  for (const Backend backend : {Backend::Sim, Backend::Native}) {
    for (const std::string& p : {std::string(), plan}) {
      mrsom::ParallelSomConfig cfg = config;
      cfg.ft.enabled = !p.empty();
      som::Codebook cb;
      run_faulted(backend, 4, p, [&](mpi::Comm& comm) {
        som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, cfg);
        if (comm.rank() == 0) cb = std::move(trained);
      });
      weights.push_back(cb.weights());
    }
  }
  ASSERT_EQ(weights.size(), 4u);
  const Matrix& base = weights[0];
  ASSERT_GT(base.rows() * base.cols(), 0u);
  for (std::size_t i = 1; i < weights.size(); ++i) {
    ASSERT_EQ(weights[i].rows(), base.rows());
    EXPECT_EQ(std::memcmp(weights[i].row(0).data(), base.row(0).data(),
                          base.rows() * base.cols() * sizeof(float)),
              0)
        << "variant " << i;
  }
}

}  // namespace
}  // namespace mrbio::rt
