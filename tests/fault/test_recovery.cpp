// Master-worker recovery over the simulated machine: crashed workers are
// reverted and their tasks reassigned, protocol messages survive drops /
// duplications / delays, retries time out with backoff, abandoned tasks
// are reported, and the whole run stays deterministic under a fixed
// FaultPlan. These are regression tests for the scheduler's failure
// paths; the property suite covers randomized plans end to end.
#include <gtest/gtest.h>

#include <map>
#include <mutex>
#include <set>
#include <string>

#include "fault/fault.hpp"
#include "mrmpi/mapreduce.hpp"
#include "sim/engine.hpp"

namespace mrbio::mrmpi {
namespace {

struct FtRun {
  std::multiset<std::uint64_t> emitted;   ///< tasks present in the final kv
  std::multiset<std::uint64_t> executed;  ///< every run_task invocation
  std::map<int, std::uint64_t> emitted_by_rank;
  std::vector<std::uint64_t> failed;      ///< rank 0's failed-task report
  MapReduceStats stats;                   ///< rank 0's stats
  double elapsed = 0.0;
};

/// Runs `ntasks` map tasks (each emitting its own id, charging
/// `task_cost` virtual seconds) on `n` simulated ranks under `plan`.
FtRun run_ft(int n, std::uint64_t ntasks, const std::string& plan,
             FaultToleranceConfig ft, double task_cost = 0.01,
             bool locality = false) {
  fault::Injector injector(fault::FaultPlan::parse(plan));
  injector.plan().validate(n);
  sim::EngineConfig ec;
  ec.nprocs = n;
  ec.stack_bytes = 512 * 1024;
  ec.injector = &injector;
  sim::Engine engine(ec);

  MapReduceConfig cfg;
  cfg.map_style = MapStyle::MasterWorker;
  cfg.ft = ft;
  cfg.ft.enabled = true;

  FtRun out;
  std::mutex mu;
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    MapReduce mr(comm, cfg);
    const auto fn = [&](std::uint64_t t, KeyValue& kv) {
      {
        std::lock_guard<std::mutex> lock(mu);
        out.executed.insert(t);
      }
      if (task_cost > 0.0) comm.compute(task_cost);
      kv.add("task", std::to_string(t));
    };
    if (locality) {
      mr.map_locality(ntasks, [](std::uint64_t t) { return t % 3; }, fn);
    } else {
      mr.map(ntasks, fn);
    }
    std::lock_guard<std::mutex> lock(mu);
    mr.kv().for_each([&](const KvPair& pair) {
      const std::string v(reinterpret_cast<const char*>(pair.value.data()),
                          pair.value.size());
      out.emitted.insert(std::stoull(v));
      out.emitted_by_rank[comm.rank()]++;
    });
    if (comm.rank() == 0) {
      out.failed = mr.failed_tasks();
      out.stats = mr.stats();
    }
  });
  out.elapsed = engine.elapsed();
  return out;
}

void expect_exactly_once(const FtRun& run, std::uint64_t ntasks) {
  EXPECT_EQ(run.emitted.size(), ntasks);
  for (std::uint64_t t = 0; t < ntasks; ++t) {
    EXPECT_EQ(run.emitted.count(t), 1u) << "task " << t;
  }
  EXPECT_TRUE(run.failed.empty());
}

TEST(Recovery, FtEnabledWithoutFaultsMatchesPlainSchedule) {
  // The fault-tolerant protocol with an empty plan must behave like the
  // plain master-worker map: every task exactly once, none on rank 0.
  const FtRun run = run_ft(4, 17, "", {});
  expect_exactly_once(run, 17);
  EXPECT_EQ(run.emitted_by_rank.count(0), 0u);
  EXPECT_EQ(run.stats.worker_deaths, 0u);
  EXPECT_EQ(run.stats.tasks_retried, 0u);
}

TEST(Recovery, TransientCrashWhileHoldingTheOnlyTask) {
  // Regression: a worker that dies holding the final outstanding task
  // used to deadlock the master. The crashed worker rejoins with a new
  // incarnation, the task is reverted and re-granted, the run finishes.
  const FtRun run = run_ft(2, 1, "crash:rank=1,task=0", {});
  expect_exactly_once(run, 1);
  EXPECT_EQ(run.stats.worker_deaths, 1u);
}

TEST(Recovery, CrashedWorkersTasksAreReassigned) {
  // Worker 2 dies after starting its second task; everything it had —
  // committed or staged — is re-run elsewhere, nothing twice in the output.
  const FtRun run = run_ft(4, 12, "crash:rank=2,task=1", {});
  expect_exactly_once(run, 12);
  EXPECT_EQ(run.stats.worker_deaths, 1u);
  // The re-executions are visible as extra run_task invocations.
  EXPECT_GT(run.executed.size(), run.emitted.size());
}

TEST(Recovery, PermanentCrashOfTheOnlyWorkerFallsBackToMaster) {
  // With every worker permanently gone the master must run the stranded
  // tasks itself rather than waiting forever.
  const FtRun run = run_ft(2, 5, "crash:rank=1,task=1,mode=permanent", {});
  expect_exactly_once(run, 5);
  ASSERT_EQ(run.emitted_by_rank.count(0), 1u);
  EXPECT_GT(run.emitted_by_rank.at(0), 0u);
}

TEST(Recovery, ZeroTasksWithAnInjectorTerminates) {
  // ntasks == 0 with faults planned: every worker gets a stop token and
  // the quiet-window drain still lets the master exit.
  const FtRun run = run_ft(4, 0, "crash:rank=3@t=1000", {});
  EXPECT_TRUE(run.emitted.empty());
  EXPECT_TRUE(run.executed.empty());
  EXPECT_TRUE(run.failed.empty());
}

TEST(Recovery, DroppedProtocolMessagesAreResent) {
  // Both directions: a worker's first two requests vanish, one grant to
  // another worker vanishes. Sequence-numbered resends recover both.
  const FtRun run =
      run_ft(3, 10, "drop:src=1,dst=0,count=2; drop:src=0,dst=2,count=1", {});
  expect_exactly_once(run, 10);
}

TEST(Recovery, DuplicatedAndDelayedProtocolMessagesAreAbsorbed) {
  // Duplicated grants are drained as stale; delayed requests cross their
  // own resends and are deduplicated by sequence number.
  const FtRun run = run_ft(
      3, 10, "dup:src=0,dst=1,count=2; delay:src=2,dst=0,by=0.1,count=3", {});
  expect_exactly_once(run, 10);
}

TEST(Recovery, StalledTaskTimesOutAndRetriesElsewhere) {
  // Rank 1 computes 100x slower, so its task blows the 0.5 s timeout and
  // is re-granted; the eventual stale completion must be discarded (the
  // task is already Done elsewhere), keeping the output exactly-once.
  FaultToleranceConfig ft;
  ft.task_timeout = 0.5;
  ft.backoff = 1.0;
  const FtRun run = run_ft(3, 4, "slow:rank=1,factor=100", ft, 0.05);
  expect_exactly_once(run, 4);
  EXPECT_GE(run.stats.tasks_retried, 1u);
}

TEST(Recovery, RetryExhaustionAbandonsTheTaskAndReportsIt) {
  // One worker, one long task, zero retries: the task fails at the first
  // timeout, and when the worker then dies permanently (so the late
  // completion never arrives) the map ends with a partial result and the
  // abandoned task listed.
  FaultToleranceConfig ft;
  ft.task_timeout = 0.5;
  ft.backoff = 1.0;
  ft.max_retries = 0;
  const FtRun run =
      run_ft(2, 1, "crash:rank=1@t=2,mode=permanent", ft, /*task_cost=*/10.0);
  EXPECT_TRUE(run.emitted.empty());
  ASSERT_EQ(run.failed.size(), 1u);
  EXPECT_EQ(run.failed[0], 0u);
  EXPECT_EQ(run.stats.tasks_failed, 1u);
}

TEST(Recovery, LateCompletionRescuesAFailedTask) {
  // Same setup but the worker survives: its completion arrives long after
  // the task was marked failed and must still be committed (the work was
  // done — discarding it would lose the only copy).
  FaultToleranceConfig ft;
  ft.task_timeout = 0.5;
  ft.backoff = 1.0;
  ft.max_retries = 0;
  const FtRun run = run_ft(2, 1, "", ft, /*task_cost=*/10.0);
  expect_exactly_once(run, 1);
  EXPECT_EQ(run.stats.tasks_failed, 0u);
}

TEST(Recovery, LocalityMapSurvivesCrashes) {
  const FtRun run = run_ft(4, 12, "crash:rank=3,task=0", {}, 0.01,
                           /*locality=*/true);
  expect_exactly_once(run, 12);
  EXPECT_EQ(run.stats.worker_deaths, 1u);
}

TEST(Recovery, DeterministicUnderAFixedPlan) {
  // Two runs of the same plan on the simulator: identical outputs and
  // identical virtual makespans (a fresh Injector each run).
  const std::string plan =
      "crash:rank=2,task=1; drop:src=1,dst=0,count=1; slow:rank=3,factor=3";
  const FtRun a = run_ft(4, 15, plan, {});
  const FtRun b = run_ft(4, 15, plan, {});
  expect_exactly_once(a, 15);
  EXPECT_EQ(a.emitted, b.emitted);
  EXPECT_EQ(a.executed, b.executed);
  EXPECT_EQ(a.emitted_by_rank, b.emitted_by_rank);
  EXPECT_DOUBLE_EQ(a.elapsed, b.elapsed);
}

TEST(Recovery, CrashWithoutFaultToleranceFailsTheRun) {
  // The injector fires either way; without ft.enabled nothing catches the
  // CrashSignal and the run must abort instead of hanging.
  fault::Injector injector(fault::FaultPlan::parse("crash:rank=1,task=0"));
  sim::EngineConfig ec;
  ec.nprocs = 3;
  ec.stack_bytes = 512 * 1024;
  ec.injector = &injector;
  sim::Engine engine(ec);
  EXPECT_THROW(engine.run([&](sim::Process& p) {
                 mpi::Comm comm(p);
                 MapReduce mr(comm, {});  // MasterWorker, ft off
                 mr.map(6, [&](std::uint64_t, KeyValue&) { comm.compute(0.01); });
               }),
               Error);
}

}  // namespace
}  // namespace mrbio::mrmpi
