// FaultPlan parsing: the compact spec grammar, the JSON form, the
// describe() round trip, validation against a rank count, and the
// Injector's bookkeeping (trigger matching, fault counts, slow factors).
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace mrbio::fault {
namespace {

TEST(FaultPlan, ParsesCrashWithTimeTrigger) {
  const FaultPlan plan = FaultPlan::parse("crash:rank=3@t=0.4");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 3);
  EXPECT_DOUBLE_EQ(plan.crashes[0].t, 0.4);
  EXPECT_LT(plan.crashes[0].task, 0);
  EXPECT_FALSE(plan.crashes[0].permanent);
}

TEST(FaultPlan, ParsesCrashWithTaskTriggerAndMode) {
  const FaultPlan plan = FaultPlan::parse("crash:rank=1,task=2,mode=permanent");
  ASSERT_EQ(plan.crashes.size(), 1u);
  EXPECT_EQ(plan.crashes[0].rank, 1);
  EXPECT_EQ(plan.crashes[0].task, 2);
  EXPECT_LT(plan.crashes[0].t, 0.0);
  EXPECT_TRUE(plan.crashes[0].permanent);
}

TEST(FaultPlan, ParsesMessageAndSlowClauses) {
  const FaultPlan plan = FaultPlan::parse(
      "drop:src=1,dst=0,count=2; dup:dst=3; delay:src=2,by=0.05,count=4; "
      "slow:rank=2,factor=4");
  ASSERT_EQ(plan.messages.size(), 3u);
  EXPECT_EQ(plan.messages[0].kind, MessageFault::Kind::Drop);
  EXPECT_EQ(plan.messages[0].src, 1);
  EXPECT_EQ(plan.messages[0].dst, 0);
  EXPECT_EQ(plan.messages[0].count, 2);
  EXPECT_EQ(plan.messages[1].kind, MessageFault::Kind::Duplicate);
  EXPECT_EQ(plan.messages[1].src, -1);  // wildcard
  EXPECT_EQ(plan.messages[1].dst, 3);
  EXPECT_EQ(plan.messages[2].kind, MessageFault::Kind::Delay);
  EXPECT_DOUBLE_EQ(plan.messages[2].by, 0.05);
  EXPECT_EQ(plan.messages[2].count, 4);
  ASSERT_EQ(plan.slows.size(), 1u);
  EXPECT_EQ(plan.slows[0].rank, 2);
  EXPECT_DOUBLE_EQ(plan.slows[0].factor, 4.0);
}

TEST(FaultPlan, DescribeRoundTrips) {
  const std::string spec =
      "crash:rank=3@t=0.4; crash:rank=1@task=2,mode=permanent; "
      "drop:src=1,dst=0,count=2; delay:src=-1,dst=0,by=0.1,count=1; "
      "slow:rank=2,factor=4";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(plan.describe(), again.describe());
  EXPECT_EQ(again.crashes.size(), 2u);
  EXPECT_EQ(again.messages.size(), 2u);
  EXPECT_EQ(again.slows.size(), 1u);
}

TEST(FaultPlan, ParsesJsonDocument) {
  const FaultPlan plan = FaultPlan::parse(
      R"({"faults":[{"kind":"crash","rank":3,"t":0.4},)"
      R"({"kind":"crash","rank":2,"task":1,"mode":"permanent"},)"
      R"({"kind":"drop","src":1,"dst":0,"count":2},)"
      R"({"kind":"delay","src":2,"by":0.05},)"
      R"({"kind":"slow","rank":4,"factor":8}]})");
  ASSERT_EQ(plan.crashes.size(), 2u);
  EXPECT_DOUBLE_EQ(plan.crashes[0].t, 0.4);
  EXPECT_TRUE(plan.crashes[1].permanent);
  ASSERT_EQ(plan.messages.size(), 2u);
  EXPECT_EQ(plan.messages[0].count, 2);
  ASSERT_EQ(plan.slows.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.slows[0].factor, 8.0);
}

TEST(FaultPlan, FromFileAutoDetectsBothForms) {
  const auto dir = std::filesystem::temp_directory_path();
  const auto spec_path = dir / "mrbio_plan.txt";
  const auto json_path = dir / "mrbio_plan.json";
  std::ofstream(spec_path) << "crash:rank=1@t=0.5\n";
  std::ofstream(json_path) << R"({"faults":[{"kind":"crash","rank":1,"t":0.5}]})";
  for (const auto& p : {spec_path, json_path}) {
    const FaultPlan plan = FaultPlan::from_file(p.string());
    ASSERT_EQ(plan.crashes.size(), 1u) << p;
    EXPECT_DOUBLE_EQ(plan.crashes[0].t, 0.5) << p;
  }
  std::filesystem::remove(spec_path);
  std::filesystem::remove(json_path);
}

TEST(FaultPlan, RejectsMalformedSpecs) {
  EXPECT_THROW(FaultPlan::parse("boom:rank=1"), InputError);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1"), InputError);  // no trigger
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,t=1,task=2"), InputError);  // both
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,t=0.4,mode=sideways"), InputError);
  EXPECT_THROW(FaultPlan::parse("crash:rank=one,t=0.4"), InputError);
  EXPECT_THROW(FaultPlan::parse("drop:src=1,by=0.4"), InputError);
  EXPECT_THROW(FaultPlan::parse("delay:src=1"), InputError);  // no by=
  EXPECT_THROW(FaultPlan::parse("slow:rank=1,factor=0.5"), InputError);
  EXPECT_THROW(FaultPlan::parse("crash:rank=1,t=0.4,rank=2"), InputError);
  EXPECT_THROW(FaultPlan::parse(R"({"faults":)"), InputError);
  EXPECT_THROW(FaultPlan::parse(R"({"nofaults":[]})"), InputError);
}

TEST(FaultPlan, ValidateChecksRankBounds) {
  FaultPlan::parse("crash:rank=3@t=0.4").validate(4);  // fine
  EXPECT_THROW(FaultPlan::parse("crash:rank=4@t=0.4").validate(4), InputError);
  EXPECT_THROW(FaultPlan::parse("crash:rank=0@t=0.4").validate(4), InputError);
  EXPECT_THROW(FaultPlan::parse("drop:src=7,dst=0").validate(4), InputError);
  EXPECT_THROW(FaultPlan::parse("slow:rank=-1,factor=2").validate(4), InputError);
  FaultPlan::parse("drop:src=-1,dst=-1").validate(4);  // wildcards are fine
}

TEST(FaultPlan, ValidateGatesRankZeroCrashOnMasterFailover) {
  // Killing rank 0 is only survivable when the scheduler elects a ledger
  // successor; validate() rejects the plan unless the launch advertises
  // master failover.
  FaultPlan plan = FaultPlan::parse("crash:rank=0@t=0.4");
  EXPECT_THROW(plan.validate(4), InputError);
  EXPECT_THROW(plan.validate(4, /*checkpointing=*/true), InputError);
  plan.validate(4, /*checkpointing=*/false, /*master_failover=*/true);
  // Non-zero ranks never needed the gate.
  FaultPlan::parse("crash:rank=2@t=0.4").validate(4, false, false);
}

TEST(FaultPlan, FuzzedSpecsThrowInputErrorOrParse) {
  // Seeded byte-level mutations of valid plans: parse() must either
  // produce a plan or throw InputError — no other exception, no crash.
  const std::vector<std::string> seeds = {
      "crash:rank=3@t=0.4",
      "crash:rank=1,task=2,mode=permanent",
      "drop:src=1,dst=0,count=2; dup:dst=3; delay:src=2,by=0.05,count=4",
      "slow:rank=2,factor=4",
      "kill:t=0.5; corrupt:target=map,byte=12,count=3",
      R"({"faults":[{"kind":"crash","rank":3,"t":0.4}]})"};
  Rng rng(0xfa0177ULL);
  const std::string alphabet =
      "crashdroplwkiltcorup:;,=@-0123456789.{}[]\"tsrcdstmodefactor ";
  for (int iter = 0; iter < 2000; ++iter) {
    std::string s = seeds[static_cast<std::size_t>(rng.uniform() * seeds.size())];
    const int edits = 1 + static_cast<int>(rng.uniform() * 4);
    for (int e = 0; e < edits; ++e) {
      const auto pos = static_cast<std::size_t>(rng.uniform() * (s.size() + 1));
      const char c =
          alphabet[static_cast<std::size_t>(rng.uniform() * alphabet.size())];
      switch (static_cast<int>(rng.uniform() * 3)) {
        case 0: s.insert(pos, 1, c); break;
        case 1: if (!s.empty()) s.erase(pos % s.size(), 1); break;
        default: if (!s.empty()) s[pos % s.size()] = c; break;
      }
    }
    try {
      const FaultPlan plan = FaultPlan::parse(s);
      // Whatever parsed must also survive a describe round trip.
      FaultPlan::parse(plan.describe());
    } catch (const InputError&) {
      // Expected for malformed mutants.
    }
  }
}

TEST(FaultPlan, ParsesKillAndCorruptClauses) {
  const FaultPlan plan = FaultPlan::parse(
      "kill:t=0.5; corrupt:target=ledger; corrupt:target=map,byte=12,count=3; "
      "corrupt:target=snapshot; corrupt:target=any");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.kills[0].t, 0.5);
  ASSERT_EQ(plan.corrupts.size(), 4u);
  EXPECT_EQ(plan.corrupts[0].target, CorruptTarget::Ledger);
  EXPECT_EQ(plan.corrupts[0].byte, -1);  // middle of the file
  EXPECT_EQ(plan.corrupts[0].count, 1);
  EXPECT_EQ(plan.corrupts[1].target, CorruptTarget::MapLog);
  EXPECT_EQ(plan.corrupts[1].byte, 12);
  EXPECT_EQ(plan.corrupts[1].count, 3);
  EXPECT_EQ(plan.corrupts[2].target, CorruptTarget::Snapshot);
  EXPECT_EQ(plan.corrupts[3].target, CorruptTarget::Any);
}

TEST(FaultPlan, ParsesKillAndCorruptJson) {
  const FaultPlan plan = FaultPlan::parse(
      R"({"faults":[{"kind":"kill","t":0.25},)"
      R"({"kind":"corrupt","target":"map","byte":7,"count":2}]})");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(plan.kills[0].t, 0.25);
  ASSERT_EQ(plan.corrupts.size(), 1u);
  EXPECT_EQ(plan.corrupts[0].target, CorruptTarget::MapLog);
  EXPECT_EQ(plan.corrupts[0].byte, 7);
  EXPECT_EQ(plan.corrupts[0].count, 2);
}

TEST(FaultPlan, KillAndCorruptDescribeRoundTrips) {
  const std::string spec =
      "kill:t=0.5; corrupt:target=ledger; corrupt:target=map,byte=12,count=3; "
      "corrupt:target=snapshot; corrupt:target=any,count=2";
  const FaultPlan plan = FaultPlan::parse(spec);
  const FaultPlan again = FaultPlan::parse(plan.describe());
  EXPECT_EQ(plan.describe(), again.describe());
  ASSERT_EQ(again.kills.size(), 1u);
  EXPECT_DOUBLE_EQ(again.kills[0].t, 0.5);
  ASSERT_EQ(again.corrupts.size(), 4u);
  EXPECT_EQ(again.corrupts[1].byte, 12);
  EXPECT_EQ(again.corrupts[1].count, 3);
  EXPECT_EQ(again.corrupts[3].count, 2);
}

TEST(FaultPlan, RejectsMalformedKillAndCorrupt) {
  EXPECT_THROW(FaultPlan::parse("kill:t=-1"), InputError);
  EXPECT_THROW(FaultPlan::parse("kill:rank=1,t=0.5"), InputError);  // no rank field
  EXPECT_THROW(FaultPlan::parse("corrupt:target=everything"), InputError);
  EXPECT_THROW(FaultPlan::parse("corrupt:target=map,byte=-3"), InputError);
  EXPECT_THROW(FaultPlan::parse("corrupt:target=map,count=0"), InputError);
}

TEST(FaultPlan, ValidateRejectsCorruptWithoutCheckpointing) {
  FaultPlan kill = FaultPlan::parse("kill:t=0.5");
  kill.validate(4, /*checkpointing=*/false);  // kills need no checkpoint
  kill.validate(4, /*checkpointing=*/true);
  FaultPlan corrupt = FaultPlan::parse("corrupt:target=any");
  EXPECT_THROW(corrupt.validate(4, /*checkpointing=*/false), InputError);
  corrupt.validate(4, /*checkpointing=*/true);  // fine with a checkpoint dir
}

TEST(Injector, KillThrowsOnEveryPollOnceDue) {
  Injector inj(FaultPlan::parse("kill:t=1.0"));
  EXPECT_NO_THROW(inj.maybe_crash(0, 0.5));
  EXPECT_THROW(inj.maybe_crash(1, 1.0), JobKillSignal);
  // Unlike a crash, the kill keeps firing for every rank at every later
  // poll: no rank may compute past the kill point.
  EXPECT_THROW(inj.maybe_crash(0, 1.5), JobKillSignal);
  EXPECT_THROW(inj.maybe_crash(2, 2.0), JobKillSignal);
  EXPECT_EQ(inj.stats().kills_fired, 1u);  // counted once
}

TEST(Injector, KillIsNotACrashSignal) {
  // The fault-tolerant worker loop catches CrashSignal; a JobKillSignal
  // must not be swallowed by it.
  Injector inj(FaultPlan::parse("kill:t=0.0"));
  bool caught_as_crash = false;
  try {
    inj.maybe_crash(0, 0.0);
  } catch (const CrashSignal&) {
    caught_as_crash = true;
  } catch (const JobKillSignal&) {
  }
  EXPECT_FALSE(caught_as_crash);
}

TEST(Injector, TakeCorruptConsumesCountsAndMatchesTargets) {
  Injector inj(FaultPlan::parse(
      "corrupt:target=ledger,count=1; corrupt:target=map,byte=5,count=2"));
  CorruptFault out;
  // Snapshot writes match neither pending fault.
  EXPECT_FALSE(inj.take_corrupt(CorruptTarget::Snapshot, out));
  ASSERT_TRUE(inj.take_corrupt(CorruptTarget::Ledger, out));
  EXPECT_EQ(out.target, CorruptTarget::Ledger);
  EXPECT_FALSE(inj.take_corrupt(CorruptTarget::Ledger, out));  // count spent
  ASSERT_TRUE(inj.take_corrupt(CorruptTarget::MapLog, out));
  EXPECT_EQ(out.byte, 5);
  ASSERT_TRUE(inj.take_corrupt(CorruptTarget::MapLog, out));
  EXPECT_FALSE(inj.take_corrupt(CorruptTarget::MapLog, out));
  EXPECT_EQ(inj.stats().checkpoints_corrupted, 3u);
}

TEST(Injector, TakeCorruptAnyMatchesEveryWriteClass) {
  Injector inj(FaultPlan::parse("corrupt:target=any,count=2"));
  CorruptFault out;
  ASSERT_TRUE(inj.take_corrupt(CorruptTarget::Snapshot, out));
  ASSERT_TRUE(inj.take_corrupt(CorruptTarget::Ledger, out));
  EXPECT_FALSE(inj.take_corrupt(CorruptTarget::MapLog, out));
}

TEST(Injector, TimeTriggerFiresOncePerFault) {
  Injector inj(FaultPlan::parse("crash:rank=2@t=1.0"));
  EXPECT_NO_THROW(inj.maybe_crash(2, 0.5));   // not due yet
  EXPECT_NO_THROW(inj.maybe_crash(1, 2.0));   // wrong rank
  EXPECT_THROW(inj.maybe_crash(2, 1.0), CrashSignal);
  EXPECT_TRUE(inj.crashed(2));
  EXPECT_FALSE(inj.permanently_crashed(2));
  EXPECT_NO_THROW(inj.maybe_crash(2, 5.0));   // fires only once
  EXPECT_EQ(inj.stats().crashes_fired, 1u);
}

TEST(Injector, TaskTriggerCountsPerRank) {
  Injector inj(FaultPlan::parse("crash:rank=1,task=1,mode=permanent"));
  EXPECT_NO_THROW(inj.task_started(1, 0.0));  // task 0
  EXPECT_NO_THROW(inj.task_started(2, 0.0));  // other rank's counter
  EXPECT_NO_THROW(inj.task_started(2, 0.0));
  EXPECT_THROW(inj.task_started(1, 0.0), CrashSignal);  // rank 1 task 1
  EXPECT_TRUE(inj.permanently_crashed(1));
}

TEST(Injector, MessageFaultsConsumeCountsAndIgnoreInternalTags) {
  Injector inj(FaultPlan::parse("drop:src=1,dst=0,count=2"));
  // Internal (collective) tags are immune regardless of the channel.
  EXPECT_EQ(inj.on_send(1, 0, kUserTagLimit + 1, kUserTagLimit).kind,
            SendAction::Kind::Deliver);
  EXPECT_EQ(inj.on_send(1, 2, 5, kUserTagLimit).kind, SendAction::Kind::Deliver);
  EXPECT_EQ(inj.on_send(1, 0, 5, kUserTagLimit).kind, SendAction::Kind::Drop);
  EXPECT_EQ(inj.on_send(1, 0, 5, kUserTagLimit).kind, SendAction::Kind::Drop);
  EXPECT_EQ(inj.on_send(1, 0, 5, kUserTagLimit).kind, SendAction::Kind::Deliver);
  EXPECT_EQ(inj.stats().messages_dropped, 2u);
}

TEST(Injector, SlowFactorsCompose) {
  Injector inj(FaultPlan::parse("slow:rank=2,factor=4; slow:rank=2,factor=2"));
  EXPECT_DOUBLE_EQ(inj.slow_factor(2), 8.0);
  EXPECT_DOUBLE_EQ(inj.slow_factor(1), 1.0);
}

}  // namespace
}  // namespace mrbio::fault
