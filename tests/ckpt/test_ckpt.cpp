// Checkpoint layer unit tests: CRC-32 vectors, record framing round
// trips, torn-write and flipped-byte detection, manifest resume guards,
// ledger replay, atomic snapshots, map-log truncation, fault-injected
// corruption, and cleanup. Every corruption case must degrade to "drop
// the bad tail and re-run" — never a crash, never silently wrong bytes.
#include "ckpt/ckpt.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mrbio::ckpt {
namespace {

std::vector<std::byte> payload(const std::string& text) {
  std::vector<std::byte> out(text.size());
  std::memcpy(out.data(), text.data(), text.size());
  return out;
}

std::string text_of(std::span<const std::byte> bytes) {
  return {reinterpret_cast<const char*>(bytes.data()), bytes.size()};
}

void flip_byte(const std::string& path, std::uint64_t offset) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good()) << path;
  f.seekg(static_cast<std::streamoff>(offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ 0xFF);
  f.seekp(static_cast<std::streamoff>(offset));
  f.write(&c, 1);
}

class CkptTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keyed by pid: ctest -j runs each test case as its own process, so a
    // plain static counter would collide on the same /tmp path.
    static int counter = 0;
    dir_ = (std::filesystem::temp_directory_path() /
            ("mrbio_ckpt_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter++)))
               .string();
    std::filesystem::remove_all(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  CheckpointConfig config(bool resume = false) const {
    CheckpointConfig c;
    c.dir = dir_;
    c.resume = resume;
    return c;
  }

  std::string dir_;
};

TEST(Crc32, KnownVectorsAndSeedChaining) {
  // The standard CRC-32 check value for "123456789".
  const auto check = payload("123456789");
  EXPECT_EQ(crc32(check), 0xCBF43926u);
  EXPECT_EQ(crc32(payload("")), 0u);
  // Chaining via seed equals one pass over the concatenation.
  const auto a = payload("12345");
  const auto b = payload("6789");
  EXPECT_EQ(crc32(b, crc32(a)), 0xCBF43926u);
  // One flipped bit changes the sum.
  auto flipped = check;
  flipped[4] ^= std::byte{0x01};
  EXPECT_NE(crc32(flipped), 0xCBF43926u);
}

TEST_F(CkptTest, RecordRoundTrip) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/t.log";
  std::uint64_t end = 0;
  {
    RecordWriter w(path, 0);
    w.append(payload("alpha"));
    w.append(payload(""));  // zero-length payloads are legal records
    w.append(payload("gamma"));
    w.sync();
    end = w.bytes_written();
  }
  RecordReader r(path);
  std::vector<std::byte> p;
  ASSERT_EQ(r.next(p), ReadStatus::Ok);
  EXPECT_EQ(text_of(p), "alpha");
  ASSERT_EQ(r.next(p), ReadStatus::Ok);
  EXPECT_TRUE(p.empty());
  ASSERT_EQ(r.next(p), ReadStatus::Ok);
  EXPECT_EQ(text_of(p), "gamma");
  EXPECT_EQ(r.next(p), ReadStatus::Eof);
  EXPECT_EQ(r.valid_end(), end);
}

TEST_F(CkptTest, TornTailDroppedAndTruncatedOnReopen) {
  std::filesystem::create_directories(dir_);
  const std::string path = dir_ + "/t.log";
  std::uint64_t good_end = 0;
  {
    RecordWriter w(path, 0);
    w.append(payload("one"));
    w.append(payload("two"));
    w.sync();
    good_end = w.bytes_written();
  }
  // A torn write: half a frame of garbage at the end.
  {
    std::ofstream f(path, std::ios::binary | std::ios::app);
    f.write("\x52\x43\x50\x4bgarbage", 11);
  }
  std::uint64_t valid_end = 0;
  {
    RecordReader r(path);
    std::vector<std::byte> p;
    EXPECT_EQ(r.next(p), ReadStatus::Ok);
    EXPECT_EQ(r.next(p), ReadStatus::Ok);
    EXPECT_EQ(r.next(p), ReadStatus::Corrupt);
    valid_end = r.valid_end();
    EXPECT_EQ(valid_end, good_end);
  }
  // Reopening through RecordWriter(valid_end) cuts the tail for good.
  { RecordWriter w(path, valid_end); }
  EXPECT_EQ(std::filesystem::file_size(path), good_end);
  RecordReader again(path);
  std::vector<std::byte> p;
  EXPECT_EQ(again.next(p), ReadStatus::Ok);
  EXPECT_EQ(again.next(p), ReadStatus::Ok);
  EXPECT_EQ(again.next(p), ReadStatus::Eof);
}

TEST_F(CkptTest, FlippedByteFailsCrcAnywhereInTheRecord) {
  std::filesystem::create_directories(dir_);
  for (const std::uint64_t offset : {0ULL, 5ULL, 9ULL, 17ULL}) {
    const std::string path = dir_ + "/flip" + std::to_string(offset) + ".log";
    std::uint64_t first_end = 0;
    {
      RecordWriter w(path, 0);
      w.append(payload("payload-bytes"));
      first_end = w.bytes_written();
      w.append(payload("second"));
      w.sync();
    }
    // Flip one byte of the FIRST record: in the magic (0), the stored crc
    // (5), the length (9), and the payload (17).
    flip_byte(path, offset);
    RecordReader r(path);
    std::vector<std::byte> p;
    EXPECT_EQ(r.next(p), ReadStatus::Corrupt) << "offset " << offset;
    EXPECT_EQ(r.valid_end(), 0u) << "offset " << offset;
    (void)first_end;
  }
}

TEST_F(CkptTest, MissingFileReadsAsEmpty) {
  RecordReader r(dir_ + "/nope.log");
  std::vector<std::byte> p;
  EXPECT_EQ(r.next(p), ReadStatus::Eof);
  EXPECT_EQ(r.valid_end(), 0u);
}

TEST_F(CkptTest, DisabledCheckpointerReportsDisabledAndRejectsOpen) {
  Checkpointer cp(CheckpointConfig{});
  EXPECT_FALSE(cp.enabled());
  EXPECT_FALSE(cp.resuming());
  // Callers must gate open() on enabled(); opening without a dir is a
  // configuration error, not a silent no-op.
  EXPECT_THROW(cp.open("whatever"), InputError);
}

TEST_F(CkptTest, ManifestGuardsResume) {
  {
    Checkpointer cp(config());
    cp.open("run A");
    EXPECT_FALSE(cp.resuming());
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/MANIFEST"));
  }
  // Same dir without --resume: refuse to clobber someone's checkpoint.
  {
    Checkpointer cp(config(false));
    EXPECT_THROW(cp.open("run A"), InputError);
  }
  // --resume with a different fingerprint: refuse to splice runs.
  {
    Checkpointer cp(config(true));
    EXPECT_THROW(cp.open("run B"), InputError);
  }
  // --resume with the matching fingerprint continues.
  {
    Checkpointer cp(config(true));
    cp.open("run A");
    EXPECT_TRUE(cp.resuming());
  }
  // --resume over an empty dir degrades to a fresh start.
  std::filesystem::remove_all(dir_);
  {
    Checkpointer cp(config(true));
    cp.open("run A");
    EXPECT_FALSE(cp.resuming());
  }
}

TEST_F(CkptTest, LedgerReplayAndCorruptTailDropped) {
  {
    Checkpointer cp(config());
    cp.open("fp");
    cp.append_cycle_record(payload("cycle0"));
    cp.append_cycle_record(payload("cycle1"));
    cp.append_cycle_record(payload("cycle2"));
  }
  {
    Checkpointer cp(config(true));
    cp.open("fp");
    ASSERT_EQ(cp.ledger_records().size(), 3u);
    EXPECT_EQ(text_of(cp.ledger_records()[0]), "cycle0");
    EXPECT_EQ(text_of(cp.ledger_records()[2]), "cycle2");
    EXPECT_EQ(cp.stats().records_replayed, 3u);
  }
  // Flip a byte inside the LAST record: the intact prefix must survive,
  // the bad tail must be dropped and counted, and appending must work.
  const auto size = std::filesystem::file_size(dir_ + "/ledger.log");
  flip_byte(dir_ + "/ledger.log", size - 3);
  {
    Checkpointer cp(config(true));
    cp.open("fp");
    ASSERT_EQ(cp.ledger_records().size(), 2u);
    EXPECT_EQ(text_of(cp.ledger_records()[1]), "cycle1");
    EXPECT_EQ(cp.stats().corrupt_records, 1u);
    cp.append_cycle_record(payload("cycle2b"));
  }
  {
    Checkpointer cp(config(true));
    cp.open("fp");
    ASSERT_EQ(cp.ledger_records().size(), 3u);
    EXPECT_EQ(text_of(cp.ledger_records()[2]), "cycle2b");
  }
}

TEST_F(CkptTest, SnapshotAtomicRoundTripAndCorruptionDegrades) {
  Checkpointer cp(config());
  cp.open("fp");
  std::vector<std::byte> out;
  EXPECT_FALSE(cp.load_snapshot("codebook", out));  // missing = start fresh
  cp.save_snapshot("codebook", payload("weights v1"));
  cp.save_snapshot("codebook", payload("weights v2"));  // overwrite is atomic
  ASSERT_TRUE(cp.load_snapshot("codebook", out));
  EXPECT_EQ(text_of(out), "weights v2");
  EXPECT_EQ(cp.stats().snapshots_saved, 2u);
  // No leftover tmp file from the write-then-rename protocol.
  for (const auto& e : std::filesystem::directory_iterator(dir_)) {
    EXPECT_EQ(e.path().filename().string().find(".tmp"), std::string::npos) << e.path();
  }
  flip_byte(dir_ + "/snap.codebook.bin", 20);
  EXPECT_FALSE(cp.load_snapshot("codebook", out));  // CRC catches the flip
}

TEST_F(CkptTest, MapLogReplayTruncationAndRemoval) {
  Checkpointer cp(config());
  cp.open("fp");
  cp.begin_cycle(/*rank=*/2, /*cycle=*/7);
  EXPECT_EQ(cp.cycle(2), 7u);
  {
    auto w = cp.open_map_log(2, 7, 0);
    w->append(payload("task 11"));
    w->append(payload("task 12"));
    w->sync();
  }
  std::vector<std::string> seen;
  const std::uint64_t valid_end = cp.read_map_log(
      2, 7, [&](std::span<const std::byte> p) { seen.push_back(text_of(p)); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], "task 11");
  EXPECT_EQ(seen[1], "task 12");
  EXPECT_EQ(valid_end, std::filesystem::file_size(cp.map_log_path(2, 7)));

  // Corrupt the second record: replay stops after the first and the
  // returned truncation point reopens the log without the bad tail.
  flip_byte(cp.map_log_path(2, 7), valid_end - 2);
  seen.clear();
  const std::uint64_t cut = cp.read_map_log(
      2, 7, [&](std::span<const std::byte> p) { seen.push_back(text_of(p)); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_LT(cut, valid_end);
  {
    auto w = cp.open_map_log(2, 7, cut);
    w->append(payload("task 12 retry"));
    w->sync();
  }
  seen.clear();
  cp.read_map_log(2, 7, [&](std::span<const std::byte> p) { seen.push_back(text_of(p)); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[1], "task 12 retry");

  cp.remove_map_log(2, 7);
  EXPECT_FALSE(std::filesystem::exists(cp.map_log_path(2, 7)));
}

TEST_F(CkptTest, InjectedCorruptionIsCaughtOnReplay) {
  fault::Injector injector(fault::FaultPlan::parse("corrupt:target=ledger,count=1"));
  {
    Checkpointer cp(config(), &injector);
    cp.open("fp");
    cp.append_cycle_record(payload("cycle0"));  // corrupted right after the write
    cp.append_cycle_record(payload("cycle1"));
  }
  EXPECT_EQ(injector.stats().checkpoints_corrupted, 1u);
  Checkpointer cp(config(true));
  cp.open("fp");
  // The flip hit record 0, so the whole ledger after it is dropped: resume
  // degrades to re-running every cycle rather than trusting bad bytes.
  EXPECT_TRUE(cp.ledger_records().empty());
  EXPECT_GE(cp.stats().corrupt_records, 1u);
}

TEST_F(CkptTest, CleanupOnSuccessRemovesOwnFiles) {
  {
    Checkpointer cp(config());
    cp.open("fp");
    cp.begin_cycle(0, 0);
    cp.append_cycle_record(payload("cycle0"));
    cp.save_snapshot("codebook", payload("w"));
    { auto w = cp.open_map_log(0, 0, 0); w->append(payload("t")); }
    EXPECT_TRUE(std::filesystem::exists(cp.spill_dir()));
    cp.cleanup_on_success();
  }
  EXPECT_FALSE(std::filesystem::exists(dir_))
      << "an empty checkpoint dir should be removed entirely";
}

}  // namespace
}  // namespace mrbio::ckpt
