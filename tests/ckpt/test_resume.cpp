// End-to-end checkpoint/restart: a job killed mid-run by a kill: fault and
// restarted with resume must produce byte-identical BLAST hit files and
// SOM codebooks while re-executing only the uncommitted tail (verified
// through the ckpt.* counters), and a corrupted checkpoint must degrade
// to recomputation — never to a crash or silently different output.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <unistd.h>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/sequence.hpp"
#include "ckpt/ckpt.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "mrsom/mrsom.hpp"
#include "obs/metrics.hpp"
#include "rt/backend.hpp"
#include "sched/sched.hpp"
#include "som/som.hpp"

namespace mrbio {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class ResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Keyed by pid: ctest -j runs each test case as its own process, so a
    // plain static counter would collide on the same /tmp path.
    static int counter = 0;
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_resume_" + std::to_string(::getpid()) + "_" +
            std::to_string(counter++));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string path(const std::string& name) const { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

// ---------- BLAST ----------

constexpr int kRanks = 4;

struct BlastBed {
  std::vector<std::vector<blast::Sequence>> query_blocks;
  blast::DbInfo db;
};

BlastBed make_blast_bed(const std::string& db_base) {
  BlastBed bed;
  Rng rng(77);
  std::vector<blast::Sequence> genome;
  for (int g = 0; g < 4; ++g) {
    genome.push_back(blast::random_sequence(rng, "genome" + std::to_string(g), 700,
                                            blast::SeqType::Dna));
  }
  bed.db = blast::build_db(genome, db_base, blast::SeqType::Dna, 1200);
  std::vector<blast::Sequence> queries;
  for (const auto& f : blast::shred({genome[0], genome[2]}, 250, 100)) {
    queries.push_back(blast::mutate(rng, f, f.id, 0.02, blast::SeqType::Dna));
  }
  // One query per block: many small work units keep the workers' kill-poll
  // times densely staggered, so a mid-run kill always lands on a poll
  // (uniform multi-query blocks synchronize into just two poll waves).
  for (std::size_t i = 0; i < queries.size(); ++i) {
    bed.query_blocks.push_back({queries[i]});
  }
  return bed;
}

mrblast::RealRunConfig blast_config(const BlastBed& bed, const std::string& out_dir) {
  mrblast::RealRunConfig config;
  config.query_blocks = bed.query_blocks;
  config.partition_paths = bed.db.volume_paths;
  config.options.filter_low_complexity = false;
  config.options.evalue_cutoff = 1e-6;
  config.output_dir = out_dir;
  // Large enough that the map phase dominates the virtual timeline: kill
  // polls happen at task starts, so a mid-run kill time must land while
  // tasks are still being dispatched.
  config.virtual_seconds_per_cell = 1e-7;
  return config;
}

struct BlastRun {
  double elapsed = 0.0;
  double task_work = 0.0;  ///< total map-task compute across ranks (virtual s)
  bool killed = false;
  std::uint64_t map_tasks = 0;
  std::uint64_t tasks_restored = 0;
};

BlastRun run_blast(const mrblast::RealRunConfig& config, fault::Injector* injector) {
  rt::LaunchConfig lc;
  lc.backend = rt::Backend::Sim;
  lc.nranks = kRanks;
  lc.injector = injector;
  lc.checkpointing = config.checkpointer != nullptr;
  obs::Registry registry;
  lc.metrics = &registry;
  BlastRun out;
  try {
    const rt::LaunchResult run =
        rt::launch(lc, [&](rt::Rank& rank) {
          mpi::Comm comm(rank);
          (void)mrblast::run_blast_mr(comm, config);
        });
    out.elapsed = run.elapsed;
  } catch (const Error&) {
    out.killed = true;
    EXPECT_NE(injector, nullptr) << "fault-free run threw";
    if (injector != nullptr) {
      EXPECT_GE(injector->stats().kills_fired, 1u);
    }
  }
  if (const obs::Counter* c = registry.find_counter("mrmpi.map_tasks")) {
    out.map_tasks = c->value();
  }
  if (const obs::Histogram* h = registry.find_histogram("mrmpi.task_seconds")) {
    out.task_work = h->sum();
  }
  if (const obs::Counter* c = registry.find_counter("ckpt.tasks_restored")) {
    out.tasks_restored = c->value();
  }
  return out;
}

std::vector<std::string> hit_files(const std::string& out_dir) {
  std::vector<std::string> files;
  for (int r = 0; r < kRanks; ++r) {
    files.push_back(out_dir + "/hits." + std::to_string(r) + ".tsv");
  }
  return files;
}

void expect_same_hits(const std::string& clean_dir, const std::string& resumed_dir) {
  const auto clean = hit_files(clean_dir);
  const auto resumed = hit_files(resumed_dir);
  for (int r = 0; r < kRanks; ++r) {
    const std::size_t i = static_cast<std::size_t>(r);
    EXPECT_EQ(std::filesystem::exists(clean[i]), std::filesystem::exists(resumed[i]))
        << "rank " << r;
    EXPECT_EQ(slurp(clean[i]), slurp(resumed[i])) << "rank " << r;
  }
}

TEST_F(ResumeTest, BlastKillResumeIsByteIdenticalAndSkipsCommittedTasks) {
  const BlastBed bed = make_blast_bed(path("db"));

  auto clean_config = blast_config(bed, path("out_clean"));
  const BlastRun clean = run_blast(clean_config, nullptr);
  ASSERT_FALSE(clean.killed);
  ASSERT_GT(clean.map_tasks, 0u);

  // Kill mid-run with map-log flushes after every task.
  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(
      fault::FaultPlan::parse("kill:t=" + std::to_string(clean.elapsed * 0.5)));
  auto config = blast_config(bed, path("out_resumed"));
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("blast test");
    config.checkpointer = &cp;
    const BlastRun killed = run_blast(config, &killer);
    ASSERT_TRUE(killed.killed);
  }

  // Resume without faults: identical bytes, and only the tail re-ran.
  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("blast test");
  ASSERT_TRUE(cp.resuming());
  config.checkpointer = &cp;
  const BlastRun resumed = run_blast(config, nullptr);
  ASSERT_FALSE(resumed.killed);

  expect_same_hits(path("out_clean"), path("out_resumed"));
  EXPECT_GT(resumed.tasks_restored, 0u) << "kill fired before any task committed";
  EXPECT_LT(resumed.map_tasks, clean.map_tasks);
  EXPECT_EQ(resumed.map_tasks + resumed.tasks_restored, clean.map_tasks);
  cp.cleanup_on_success();
  EXPECT_FALSE(std::filesystem::exists(path("ckpt")));
}

TEST_F(ResumeTest, BlastStealSchedulerKillResumeIsByteIdentical) {
  // Same kill -> resume cycle under the work-stealing scheduler: hits are
  // shuffled to deterministic ranks before writing, so the output must
  // match a clean master-worker run byte for byte even though the
  // task -> rank placement differs, and resuming must skip the committed
  // prefix (restored tasks are excluded from the deque seeds and claimed
  // as done in the shared ledger).
  const BlastBed bed = make_blast_bed(path("db"));

  auto clean_config = blast_config(bed, path("out_clean"));
  const BlastRun clean = run_blast(clean_config, nullptr);
  ASSERT_FALSE(clean.killed);

  // Kill polls only fire at task starts, and under steal the map window
  // is much shorter than the job elapsed (all ranks run tasks, and token
  // termination idles the tail), so a fraction of any run's elapsed can
  // land after the last task start and never fire. Half the ideal map
  // makespan — total task work spread over every rank — is mid-map by
  // construction.
  auto probe_config = blast_config(bed, path("out_probe"));
  probe_config.scheduler = sched::Policy::Steal;
  const BlastRun probe = run_blast(probe_config, nullptr);
  ASSERT_FALSE(probe.killed);
  ASSERT_GT(probe.task_work, 0.0);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(fault::FaultPlan::parse(
      "kill:t=" + std::to_string(0.5 * probe.task_work / kRanks)));
  auto config = blast_config(bed, path("out_resumed"));
  config.scheduler = sched::Policy::Steal;
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("blast steal");
    config.checkpointer = &cp;
    const BlastRun killed = run_blast(config, &killer);
    ASSERT_TRUE(killed.killed);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("blast steal");
  ASSERT_TRUE(cp.resuming());
  config.checkpointer = &cp;
  const BlastRun resumed = run_blast(config, nullptr);
  ASSERT_FALSE(resumed.killed);

  expect_same_hits(path("out_clean"), path("out_resumed"));
  EXPECT_GT(resumed.tasks_restored, 0u) << "kill fired before any task committed";
  EXPECT_LT(resumed.map_tasks, clean.map_tasks);
}

TEST_F(ResumeTest, BlastShardCorruptionDegradesOnlyThatShard) {
  // Kill a sharded-ledger steal run mid-map, then flip a byte in exactly
  // one shard's commit journal before resuming. The CRC framing must
  // reject the damaged tail, the lost range must recompute, the other
  // shards' commits must still restore, and the final hits must stay
  // byte-identical to the fault-free run.
  const BlastBed bed = make_blast_bed(path("db"));

  auto clean_config = blast_config(bed, path("out_clean"));
  const BlastRun clean = run_blast(clean_config, nullptr);
  ASSERT_FALSE(clean.killed);

  auto probe_config = blast_config(bed, path("out_probe"));
  probe_config.scheduler = sched::Policy::Steal;
  probe_config.ft.enabled = true;
  const BlastRun probe = run_blast(probe_config, nullptr);
  ASSERT_FALSE(probe.killed);
  ASSERT_GT(probe.task_work, 0.0);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(fault::FaultPlan::parse(
      "kill:t=" + std::to_string(0.5 * probe.task_work / kRanks)));
  auto config = blast_config(bed, path("out_resumed"));
  config.scheduler = sched::Policy::Steal;
  config.ft.enabled = true;
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("blast shard corrupt");
    config.checkpointer = &cp;
    const BlastRun killed = run_blast(config, &killer);
    ASSERT_TRUE(killed.killed);
  }

  // Corrupt the busiest shard journal: the one with the most committed
  // bytes loses the most work, making the containment check meaningful.
  std::filesystem::path victim;
  std::uintmax_t victim_size = 0;
  for (const auto& entry : std::filesystem::directory_iterator(path("ckpt"))) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("shard.", 0) == 0 && entry.file_size() > victim_size) {
      victim = entry.path();
      victim_size = entry.file_size();
    }
  }
  ASSERT_FALSE(victim.empty()) << "kill fired before any shard journal existed";
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekg(8);
    char b = 0;
    f.read(&b, 1);
    b = static_cast<char>(b ^ 0x40);
    f.seekp(8);
    f.write(&b, 1);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("blast shard corrupt");
  ASSERT_TRUE(cp.resuming());
  config.checkpointer = &cp;
  const BlastRun resumed = run_blast(config, nullptr);
  ASSERT_FALSE(resumed.killed);

  expect_same_hits(path("out_clean"), path("out_resumed"));
  // The undamaged shards still restored their commits...
  EXPECT_GT(resumed.tasks_restored, 0u)
      << "corrupting one shard wiped every shard's commits";
  // ...while the corrupted shard's range (at least) re-executed.
  EXPECT_GT(resumed.map_tasks, 0u);
  EXPECT_EQ(resumed.map_tasks + resumed.tasks_restored, clean.map_tasks);
}

TEST_F(ResumeTest, BlastResumeSurvivesCorruptMapLogs) {
  const BlastBed bed = make_blast_bed(path("db"));
  auto clean_config = blast_config(bed, path("out_clean"));
  const BlastRun clean = run_blast(clean_config, nullptr);
  ASSERT_FALSE(clean.killed);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(fault::FaultPlan::parse(
      "kill:t=" + std::to_string(clean.elapsed * 0.6) + "; corrupt:target=map,count=2"));
  auto config = blast_config(bed, path("out_resumed"));
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("blast test");
    config.checkpointer = &cp;
    const BlastRun killed = run_blast(config, &killer);
    ASSERT_TRUE(killed.killed);
  }
  EXPECT_EQ(killer.stats().checkpoints_corrupted, 2u);

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("blast test");
  config.checkpointer = &cp;
  const BlastRun resumed = run_blast(config, nullptr);
  ASSERT_FALSE(resumed.killed);
  // The two flipped records were detected and their tasks re-ran; output
  // bytes are still exactly the fault-free ones.
  EXPECT_GE(cp.stats().corrupt_records, 1u);
  expect_same_hits(path("out_clean"), path("out_resumed"));
}

TEST_F(ResumeTest, BlastCycleLedgerResumeSkipsCommittedCycles) {
  const BlastBed bed = make_blast_bed(path("db"));
  auto clean_config = blast_config(bed, path("out_clean"));
  clean_config.blocks_per_iteration = 2;
  const BlastRun clean = run_blast(clean_config, nullptr);
  ASSERT_FALSE(clean.killed);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  fault::Injector killer(
      fault::FaultPlan::parse("kill:t=" + std::to_string(clean.elapsed * 0.7)));
  auto config = blast_config(bed, path("out_resumed"));
  config.blocks_per_iteration = 2;
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("blast cycles");
    config.checkpointer = &cp;
    const BlastRun killed = run_blast(config, &killer);
    ASSERT_TRUE(killed.killed);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("blast cycles");
  EXPECT_FALSE(cp.ledger_records().empty())
      << "kill fired before the first cycle committed; lower the kill time";
  config.checkpointer = &cp;
  const BlastRun resumed = run_blast(config, nullptr);
  ASSERT_FALSE(resumed.killed);
  expect_same_hits(path("out_clean"), path("out_resumed"));
}

// ---------- SOM ----------

som::Codebook run_som(const MatrixView& data, const som::Codebook& initial,
                      mrsom::ParallelSomConfig& config, fault::Injector* injector,
                      bool* killed, double* elapsed = nullptr) {
  rt::LaunchConfig lc;
  lc.backend = rt::Backend::Sim;
  lc.nranks = kRanks;
  lc.injector = injector;
  lc.checkpointing = config.checkpointer != nullptr;
  som::Codebook cb;
  *killed = false;
  try {
    const rt::LaunchResult run = rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      som::Codebook trained = mrsom::train_som_mr(comm, data, initial, config);
      if (rank.rank() == 0) cb = std::move(trained);
    });
    if (elapsed != nullptr) *elapsed = run.elapsed;
  } catch (const Error&) {
    *killed = true;
    EXPECT_NE(injector, nullptr) << "fault-free run threw";
  }
  return cb;
}

struct SomBed {
  Matrix data;
  som::Codebook initial;
  mrsom::ParallelSomConfig config;

  SomBed() : initial(som::SomGrid{4, 4}, 8) {
    Rng rng(2011);
    data = Matrix(96, 8);
    for (std::size_t i = 0; i < data.rows(); ++i) {
      for (float& v : data.row(i)) v = static_cast<float>(rng.uniform());
    }
    initial.init_pca(data.view());
    config.params.epochs = 4;
    config.block_vectors = 8;
    config.map_style = mrmpi::MapStyle::Chunk;
    config.flop_seconds = 2e-8;
  }
};

TEST_F(ResumeTest, SomKillResumeCodebookIsByteIdentical) {
  SomBed bed;
  bool killed = false;
  double elapsed = 0.0;
  const som::Codebook clean =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed, &elapsed);
  ASSERT_FALSE(killed);
  ASSERT_GT(elapsed, 0.0);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(
      fault::FaultPlan::parse("kill:t=" + std::to_string(elapsed * 0.5)));
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("som test");
    bed.config.checkpointer = &cp;
    (void)run_som(bed.data.view(), bed.initial, bed.config, &killer, &killed);
    ASSERT_TRUE(killed);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("som test");
  ASSERT_TRUE(cp.resuming());
  bed.config.checkpointer = &cp;
  const som::Codebook resumed =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed);
  ASSERT_FALSE(killed);

  ASSERT_EQ(resumed.weights().rows(), clean.weights().rows());
  ASSERT_EQ(resumed.weights().cols(), clean.weights().cols());
  EXPECT_EQ(std::memcmp(resumed.weights().data(), clean.weights().data(),
                        clean.weights().rows() * clean.weights().cols() * sizeof(float)),
            0)
      << "resumed codebook differs from the fault-free run";
}

TEST_F(ResumeTest, SomCorruptSnapshotDegradesToRetraining) {
  SomBed bed;
  bool killed = false;
  double elapsed = 0.0;
  const som::Codebook clean =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed, &elapsed);
  ASSERT_FALSE(killed);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  fault::Injector killer(fault::FaultPlan::parse(
      "kill:t=" + std::to_string(elapsed * 0.6) + "; corrupt:target=snapshot,count=1"));
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("som test");
    bed.config.checkpointer = &cp;
    (void)run_som(bed.data.view(), bed.initial, bed.config, &killer, &killed);
    ASSERT_TRUE(killed);
  }
  ASSERT_EQ(killer.stats().checkpoints_corrupted, 1u);

  // The flipped snapshot fails its CRC on load: training silently falls
  // back to epoch 0 and still converges to the fault-free codebook.
  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("som test");
  bed.config.checkpointer = &cp;
  const som::Codebook resumed =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed);
  ASSERT_FALSE(killed);
  EXPECT_EQ(std::memcmp(resumed.weights().data(), clean.weights().data(),
                        clean.weights().rows() * clean.weights().cols() * sizeof(float)),
            0);
}

TEST_F(ResumeTest, SomDeterministicMasterWorkerMidEpochResume) {
  SomBed bed;
  bed.config.map_style = mrmpi::MapStyle::MasterWorker;
  bed.config.deterministic_reduce = true;
  bool killed = false;
  double elapsed = 0.0;
  const som::Codebook clean =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed, &elapsed);
  ASSERT_FALSE(killed);

  ckpt::CheckpointConfig cc;
  cc.dir = path("ckpt");
  cc.interval = 0.0;
  fault::Injector killer(
      fault::FaultPlan::parse("kill:t=" + std::to_string(elapsed * 0.5)));
  {
    ckpt::Checkpointer cp(cc, &killer);
    cp.open("som det");
    bed.config.checkpointer = &cp;
    (void)run_som(bed.data.view(), bed.initial, bed.config, &killer, &killed);
    ASSERT_TRUE(killed);
  }

  cc.resume = true;
  ckpt::Checkpointer cp(cc, nullptr);
  cp.open("som det");
  bed.config.checkpointer = &cp;
  const som::Codebook resumed =
      run_som(bed.data.view(), bed.initial, bed.config, nullptr, &killed);
  ASSERT_FALSE(killed);
  EXPECT_EQ(std::memcmp(resumed.weights().data(), clean.weights().data(),
                        clean.weights().rows() * clean.weights().cols() * sizeof(float)),
            0);
}

}  // namespace
}  // namespace mrbio
