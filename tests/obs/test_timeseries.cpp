// Tests for obs::TimeSeries / obs::EventLog: cadence gating, ring bounds
// with overwrite accounting, JSON/JSONL serialization, the MRBIO_LOG sink
// bridge, and — under TSan via the NativeBackend CI filter — concurrent
// rank-thread producers racing the background sampler thread.
#include "obs/timeseries.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "mpi/comm.hpp"
#include "rt/backend.hpp"

namespace mrbio::obs {
namespace {

namespace fs = std::filesystem;

std::string slurp(const fs::path& p) {
  std::ifstream in(p);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

TEST(TimeSeries, CadenceGateAdmitsOnePointPerWindow) {
  TimeSeries ts(1, {.cadence = 1.0, .capacity = 16});
  ts.sample(0, "c", 0.0, 1.0);
  ts.sample(0, "c", 0.5, 2.0);  // inside the window: dropped
  ts.sample(0, "c", 0.999, 3.0);
  ts.sample(0, "c", 1.0, 4.0);  // window boundary: admitted
  ts.sample(0, "c", 2.5, 5.0);
  const auto pts = ts.points(0, "c");
  ASSERT_EQ(pts.size(), 3u);
  EXPECT_DOUBLE_EQ(pts[0].t, 0.0);
  EXPECT_DOUBLE_EQ(pts[0].v, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].t, 1.0);
  EXPECT_DOUBLE_EQ(pts[1].v, 4.0);
  EXPECT_DOUBLE_EQ(pts[2].t, 2.5);
  EXPECT_EQ(ts.total_samples(), 3u);
}

TEST(TimeSeries, RecordBypassesTheGate) {
  TimeSeries ts(1, {.cadence = 100.0, .capacity = 8});
  ts.sample(0, "c", 0.0, 1.0);
  ts.sample(0, "c", 1.0, 2.0);  // gated
  ts.record(0, "c", 1.0, 2.0);  // forced through
  EXPECT_EQ(ts.points(0, "c").size(), 2u);
}

TEST(TimeSeries, RingOverwritesOldestAndCountsDrops) {
  TimeSeries ts(1, {.cadence = 0.0, .capacity = 4});
  for (int i = 0; i < 10; ++i) {
    ts.sample(0, "c", static_cast<double>(i), static_cast<double>(i * i));
  }
  const auto pts = ts.points(0, "c");
  ASSERT_EQ(pts.size(), 4u);  // bounded by capacity
  // Chronological unroll keeps the newest 4 points (6..9).
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(pts[static_cast<std::size_t>(i)].t, 6.0 + i);
    EXPECT_DOUBLE_EQ(pts[static_cast<std::size_t>(i)].v, (6.0 + i) * (6.0 + i));
  }
  EXPECT_EQ(ts.total_samples(), 10u);
  EXPECT_EQ(ts.dropped_samples(), 6u);  // truncation is accounted, not silent
}

TEST(TimeSeries, OutOfRangeRanksAreIgnored) {
  TimeSeries ts(2);
  ts.sample(-1, "c", 0.0, 1.0);
  ts.sample(2, "c", 0.0, 1.0);
  EXPECT_EQ(ts.total_samples(), 0u);
  EXPECT_TRUE(ts.channels(0).empty());
}

TEST(TimeSeries, JsonAndJsonlSerializeAllChannels) {
  TimeSeries ts(3, {.cadence = 0.0, .capacity = 8});
  ts.sample(0, "busy_seconds", 0.5, 1.25);
  ts.sample(2, "sent_bytes", 1.0, 4096.0);
  const fs::path dir = fs::temp_directory_path();
  const fs::path json = dir / "mrbio_ts_test.json";
  const fs::path jsonl = dir / "mrbio_ts_test.jsonl";
  std::FILE* f = std::fopen(json.string().c_str(), "w");
  ASSERT_NE(f, nullptr);
  ts.write_json(f);
  std::fclose(f);
  f = std::fopen(jsonl.string().c_str(), "w");
  ASSERT_NE(f, nullptr);
  ts.write_jsonl(f);
  std::fclose(f);

  const std::string obj = slurp(json);
  EXPECT_NE(obj.find("\"cadence\":"), std::string::npos);
  EXPECT_NE(obj.find("\"recorded\":2"), std::string::npos);
  EXPECT_NE(obj.find("\"busy_seconds\":[[0.5,1.25]]"), std::string::npos);
  EXPECT_EQ(obj.find("\"rank\":1,"), std::string::npos);  // empty rank omitted

  const std::string lines = slurp(jsonl);
  EXPECT_NE(lines.find("{\"rank\":0,\"channel\":\"busy_seconds\""), std::string::npos);
  EXPECT_NE(lines.find("{\"rank\":2,\"channel\":\"sent_bytes\""), std::string::npos);
  fs::remove(json);
  fs::remove(jsonl);
}

TEST(EventLog, WritesOneJsonObjectPerEvent) {
  const fs::path p = fs::temp_directory_path() / "mrbio_eventlog_test.jsonl";
  {
    EventLog elog(p.string());
    elog.log(LogLevel::Warn, 3, "mrmpi", "task 7 timed out");
    elog.log(LogLevel::Info, -1, "driver", "line with \"quotes\"\nand newline");
    EXPECT_EQ(elog.events(), 2u);
  }
  std::ifstream in(p);
  std::string line1, line2, extra;
  ASSERT_TRUE(std::getline(in, line1));
  ASSERT_TRUE(std::getline(in, line2));
  EXPECT_FALSE(std::getline(in, extra));
  EXPECT_NE(line1.find("\"severity\":\"warn\""), std::string::npos);
  EXPECT_NE(line1.find("\"rank\":3"), std::string::npos);
  EXPECT_NE(line1.find("\"component\":\"mrmpi\""), std::string::npos);
  EXPECT_NE(line1.find("\"msg\":\"task 7 timed out\""), std::string::npos);
  EXPECT_EQ(line1.rfind("{\"t\":", 0), 0u);  // starts with the timestamp
  // Quotes and control characters must be escaped, not break the line.
  EXPECT_NE(line2.find("\\\"quotes\\\""), std::string::npos);
  EXPECT_NE(line2.find("\\n"), std::string::npos);
  fs::remove(p);
}

TEST(EventLog, SinkBridgesMrbioLogLines) {
  const fs::path p = fs::temp_directory_path() / "mrbio_eventlog_sink.jsonl";
  {
    EventLog elog(p.string());
    set_log_sink(&EventLog::log_sink, &elog);
    const LogLevel before = log_level();
    set_log_level(LogLevel::Warn);
    MRBIO_LOG(Warn, "bridged line ", 42);
    MRBIO_LOG(Debug, "suppressed line");  // below the level: not emitted
    set_log_level(before);
    set_log_sink(nullptr, nullptr);
    MRBIO_LOG(Warn, "after uninstall");  // must not reach the (dead) sink
    EXPECT_EQ(elog.events(), 1u);
  }
  const std::string text = slurp(p);
  EXPECT_NE(text.find("\"component\":\"log\""), std::string::npos);
  EXPECT_NE(text.find("\"rank\":-1"), std::string::npos);
  EXPECT_NE(text.find("bridged line 42"), std::string::npos);
  EXPECT_EQ(text.find("after uninstall"), std::string::npos);
  fs::remove(p);
}

// Concurrency proof, picked up by the CI TSan job's 'NativeBackend' filter:
// real rank threads produce sent_bytes / mailbox_depth samples while the
// engine's background sampler thread reads and writes the same lanes.
TEST(TimeSeriesNativeBackend, ConcurrentProducersAndSamplerAreRaceFree) {
  constexpr int kRanks = 4;
  TimeSeries ts(kRanks, {.cadence = 1e-4, .capacity = 256});
  rt::LaunchConfig lc;
  lc.backend = rt::Backend::Native;
  lc.nranks = kRanks;
  lc.timeseries = &ts;
  rt::launch(lc, [&](rt::Rank& rank) {
    mpi::Comm comm(rank);
    // A ring of small messages keeps every mailbox and byte counter hot.
    for (int i = 0; i < 200; ++i) {
      const int dst = (comm.rank() + 1) % comm.size();
      const int src = (comm.rank() + comm.size() - 1) % comm.size();
      comm.send_bytes(dst, 1, std::vector<std::byte>(64));
      const rt::Message msg = comm.recv_bytes(src, 1);
      (void)msg;
    }
    EXPECT_EQ(rank.timeseries(), &ts);  // reachable from the rank body
  });
  EXPECT_GT(ts.total_samples(), 0u);
  bool saw_sent = false;
  for (int r = 0; r < kRanks; ++r) {
    for (const std::string& c : ts.channels(r)) {
      if (c == "sent_bytes") saw_sent = true;
      // Per-channel times are non-decreasing after the chronological unroll.
      const auto pts = ts.points(r, c);
      for (std::size_t i = 1; i < pts.size(); ++i) {
        EXPECT_LE(pts[i - 1].t, pts[i].t) << "rank " << r << " channel " << c;
      }
    }
  }
  EXPECT_TRUE(saw_sent);
}

}  // namespace
}  // namespace mrbio::obs
