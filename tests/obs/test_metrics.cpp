// Histogram/percentile math (empty, single-sample, bucket-boundary cases)
// and the Registry's get-or-create / kind-collision behavior.
#include "obs/metrics.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrbio::obs {
namespace {

TEST(Histogram, EmptyReturnsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 0.0);
}

TEST(Histogram, SingleSampleIsExactAtEveryQuantile) {
  Histogram h;
  h.observe(0.037);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_DOUBLE_EQ(h.min(), 0.037);
  EXPECT_DOUBLE_EQ(h.max(), 0.037);
  EXPECT_DOUBLE_EQ(h.mean(), 0.037);
  for (const double q : {0.0, 0.01, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_DOUBLE_EQ(h.quantile(q), 0.037) << "q=" << q;
  }
}

TEST(Histogram, BucketBoundaryValuesLandInTheLowerBucket) {
  // min_value = 1: bucket 0 is (-inf, 1], bucket 1 is (1, 2], bucket 2 is
  // (2, 4]. Exact powers of two must land in the lower bucket, so three
  // single-occupancy buckets give exact nearest-rank answers.
  Histogram h(1.0);
  h.observe(1.0);  // boundary of bucket 0
  h.observe(2.0);  // boundary of bucket 1
  h.observe(4.0);  // boundary of bucket 2
  EXPECT_DOUBLE_EQ(h.quantile(0.34), 2.0);  // k=2 -> second sample
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.67), 4.0);  // k=3 -> third sample
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(Histogram, SharedBucketAnswersWithBucketMean) {
  // 3.0 and 3.5 share bucket (2, 4]; any quantile that lands there answers
  // with the bucket mean 3.25 (never off by more than one octave).
  Histogram h(1.0);
  h.observe(3.0);
  h.observe(3.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 3.25);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 3.25);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 3.5);
  EXPECT_DOUBLE_EQ(h.sum(), 6.5);
}

TEST(Histogram, TinyAndZeroSamplesGoToTheFirstBucket) {
  Histogram h;  // min_value 1e-9
  h.observe(0.0);
  h.observe(1e-12);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 5e-13);  // bucket mean of the two
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
}

TEST(Histogram, QuantilesAreMonotonicOnSpreadData) {
  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i) * 1e-3);
  double prev = 0.0;
  for (const double q : {0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q=" << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
  EXPECT_NEAR(h.mean(), 0.5005, 1e-9);
}

TEST(Registry, GetOrCreateReturnsTheSameInstrument) {
  Registry reg;
  Counter& c = reg.counter("x.count");
  c.inc(3);
  EXPECT_EQ(reg.counter("x.count").value(), 3u);
  Histogram& h = reg.histogram("x.seconds");
  h.observe(1.0);
  EXPECT_EQ(reg.histogram("x.seconds").count(), 1u);
  reg.gauge("x.level").set(7.5);
  EXPECT_DOUBLE_EQ(reg.gauge("x.level").value(), 7.5);
  EXPECT_EQ(reg.find_counter("nope"), nullptr);
  ASSERT_NE(reg.find_histogram("x.seconds"), nullptr);
}

TEST(Registry, NameCollisionAcrossKindsThrows) {
  Registry reg;
  reg.counter("dual");
  EXPECT_THROW(reg.histogram("dual"), LogicError);
  EXPECT_THROW(reg.gauge("dual"), LogicError);
}

}  // namespace
}  // namespace mrbio::obs
