// Tests for obs::analyze: critical-path extraction on a hand-built 3-rank
// DAG with a known path, the makespan-tiling invariant and exact idle
// decomposition on real simulated BLAST runs, trace JSON round-tripping,
// and the zero-perturbation guarantee with metrics + reporting attached.
#include "obs/analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <functional>

#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "mrsom/mrsom.hpp"
#include "obs/metrics.hpp"
#include "sim/engine.hpp"
#include "trace/trace.hpp"

namespace mrbio::obs {
namespace {

using trace::Category;
using trace::Level;
using trace::Recorder;

double run_sim(int nprocs, Recorder* rec, Registry* metrics,
               const std::function<void(mpi::Comm&)>& body) {
  sim::EngineConfig config;
  config.nprocs = nprocs;
  config.stack_bytes = 512 * 1024;
  config.recorder = rec;
  config.metrics = metrics;
  sim::Engine engine(config);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    body(comm);
  });
  return engine.elapsed();
}

mrblast::SimRunConfig small_blast() {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 4'000;
  config.workload.queries_per_block = 250;
  config.workload.db_partitions = 4;
  config.workload.mean_seconds_per_query = 0.02;
  return config;
}

mrsom::SimSomConfig small_som() {
  mrsom::SimSomConfig config;
  config.num_vectors = 640;
  config.dim = 16;
  config.grid = {10, 10};
  config.epochs = 2;
  config.block_vectors = 40;
  return config;
}

double label_seconds(const CriticalPath& path, const std::string& label) {
  for (const LabelShare& s : path.by_label) {
    if (s.label == label) return s.seconds;
  }
  return 0.0;
}

// Hand-built 3-rank DAG with a known critical path.
//
//   rank 0: compute [0,2.0]  send  [2.0,2.1] --seq 1, arrives 2.5--> rank 1
//   rank 1: recv    [0,2.6]  compute [2.6,5.0]  send [5.0,5.1]
//                                   --seq 2, arrives 5.5--> rank 2
//   rank 2: compute [0,1.0]  recv [1.0,5.6]  compute [5.6,6.0]
//
// Both receives are sender-bound (arrival after the post), so the backward
// walk from rank 2's finish at 6.0 must hop twice and land on rank 0's
// initial compute, attributing 1.0 s (2 x 0.5) to the network.
TEST(CriticalPath, HandBuiltDagFollowsSenderBoundReceives) {
  Recorder rec(3, Level::Full);
  rec.add(0, Category::Compute, "compute", 0.0, 2.0);
  rec.add_edge(0, Category::Send, "send", 2.0, 2.1, 64, /*peer=*/1, /*seq=*/1,
               /*dep=*/2.5);
  rec.add_edge(1, Category::RecvWait, "recv", 0.0, 2.6, 64, /*peer=*/0, /*seq=*/1,
               /*dep=*/2.5);
  rec.add(1, Category::Compute, "compute", 2.6, 5.0);
  rec.add_edge(1, Category::Send, "send", 5.0, 5.1, 64, /*peer=*/2, /*seq=*/2,
               /*dep=*/5.5);
  rec.add(2, Category::Compute, "compute", 0.0, 1.0);
  rec.add_edge(2, Category::RecvWait, "recv", 1.0, 5.6, 64, /*peer=*/1, /*seq=*/2,
               /*dep=*/5.5);
  rec.add(2, Category::Compute, "compute", 5.6, 6.0);
  rec.set_final_time(0, 2.1);
  rec.set_final_time(1, 5.1);
  rec.set_final_time(2, 6.0);

  const Report report = analyze(rec);
  EXPECT_EQ(report.nranks, 3);
  EXPECT_DOUBLE_EQ(report.makespan, 6.0);
  EXPECT_DOUBLE_EQ(report.path.length, 6.0);
  EXPECT_EQ(report.path.hops, 2);

  // Expected segments in time order (adjacent same-label stretches merge):
  //   r0 compute [0,2.0], r0 send [2.0,2.1], r1 net_wait [2.1,2.6],
  //   r1 compute [2.6,5.0], r1 send [5.0,5.1], r2 net_wait [5.1,5.6],
  //   r2 compute [5.6,6.0]
  ASSERT_EQ(report.path.segments.size(), 7u);
  const int expect_rank[] = {0, 0, 1, 1, 1, 2, 2};
  const char* expect_label[] = {"compute", "send", "net_wait", "compute",
                                "send",    "net_wait", "compute"};
  const double expect_t0[] = {0.0, 2.0, 2.1, 2.6, 5.0, 5.1, 5.6};
  double prev_t1 = 0.0;
  for (std::size_t i = 0; i < report.path.segments.size(); ++i) {
    const PathSegment& s = report.path.segments[i];
    EXPECT_EQ(s.rank, expect_rank[i]) << "segment " << i;
    EXPECT_EQ(s.label, expect_label[i]) << "segment " << i;
    EXPECT_DOUBLE_EQ(s.t0, expect_t0[i]) << "segment " << i;
    if (i != 0) {
      EXPECT_DOUBLE_EQ(s.t0, prev_t1) << "segment " << i;  // tiling
    }
    prev_t1 = s.t1;
  }
  EXPECT_DOUBLE_EQ(prev_t1, 6.0);
  EXPECT_NEAR(label_seconds(report.path, "compute"), 4.8, 1e-12);
  EXPECT_NEAR(label_seconds(report.path, "net_wait"), 1.0, 1e-12);
  EXPECT_NEAR(label_seconds(report.path, "send"), 0.2, 1e-12);
}

TEST(Breakdown, HandBuiltPartitionSumsExactly) {
  // One rank: useful app work [0,2], a DB load [2,3], a collective that is
  // all skew [3,4.5], final time 5 -> idle_other picks up the last 0.5 s.
  Recorder rec(1);
  rec.add(0, Category::App, "search", 0.0, 2.0);
  rec.add(0, Category::Io, "db_load", 2.0, 3.0);
  rec.add(0, Category::Collective, "reduce", 3.0, 4.5);
  rec.set_final_time(0, 5.0);
  const Report report = analyze(rec);
  const RankBreakdown& b = report.ranks.at(0);
  EXPECT_DOUBLE_EQ(b.useful, 2.0);
  EXPECT_DOUBLE_EQ(b.db_io, 1.0);
  EXPECT_DOUBLE_EQ(b.spill_io, 0.0);
  EXPECT_DOUBLE_EQ(b.other_busy, 0.0);
  EXPECT_DOUBLE_EQ(b.collective_skew, 1.5);
  EXPECT_DOUBLE_EQ(b.idle_other, 0.5);
  EXPECT_DOUBLE_EQ(b.busy_total() + b.idle_total(), b.final_time);
}

TEST(Stragglers, RanksAboveKTimesMedianAreListed) {
  Recorder rec(3);
  rec.add(0, Category::App, "work", 0.0, 1.0);
  rec.add(1, Category::App, "work", 0.0, 1.0);
  rec.add(2, Category::App, "work", 0.0, 10.0);
  for (int r = 0; r < 3; ++r) rec.set_final_time(r, 10.0);
  const Report report = analyze(rec);
  EXPECT_DOUBLE_EQ(report.median_busy, 1.0);
  ASSERT_EQ(report.stragglers.size(), 1u);
  EXPECT_EQ(report.stragglers[0].rank, 2);
  EXPECT_DOUBLE_EQ(report.stragglers[0].ratio, 10.0);
  // The straggler's timeline is all App work -> compute-bound attribution.
  EXPECT_EQ(report.stragglers[0].dominant, "compute");
  EXPECT_DOUBLE_EQ(report.stragglers[0].dominant_seconds, 10.0);
}

// Hand-built 4-rank phase with known skew statistics:
//   "map" windows: rank0 [0,1], rank1 [0,2], rank2 [0,4], rank3 absent.
//   Seconds over ALL ranks: {1, 2, 4, 0} -> mean 1.75, max 4 @ rank 2,
//   population stddev sqrt(8.75/4), CoV = stddev / mean ~ 0.845154.
TEST(PhaseSkew, HandBuiltPhaseHasKnownCovAndTopK) {
  Recorder rec(4);
  rec.add(0, Category::Phase, "map", 0.0, 1.0);
  rec.add(1, Category::Phase, "map", 0.0, 2.0);
  rec.add(2, Category::Phase, "map", 0.0, 4.0);
  // In-phase content for the dominant attribution: rank 2 computes the
  // whole window, rank 1 is blocked in a collective, rank 0 computes.
  rec.add(0, Category::App, "work", 0.0, 1.0);
  rec.add(1, Category::Collective, "reduce", 0.0, 2.0);
  rec.add(2, Category::App, "work", 0.0, 4.0);
  for (int r = 0; r < 4; ++r) rec.set_final_time(r, 4.0);

  AnalyzeOptions opts;
  opts.skew_top_k = 2;
  const Report report = analyze(rec, opts);
  ASSERT_EQ(report.phase_skew.size(), 1u);
  const PhaseSkew& skew = report.phase_skew[0];
  EXPECT_EQ(skew.phase, "map");
  EXPECT_EQ(skew.ranks_active, 3);
  EXPECT_DOUBLE_EQ(skew.mean, 1.75);
  EXPECT_DOUBLE_EQ(skew.max, 4.0);
  EXPECT_EQ(skew.max_rank, 2);
  EXPECT_NEAR(skew.cov, std::sqrt(8.75 / 4.0) / 1.75, 1e-12);

  ASSERT_EQ(skew.top.size(), 2u);  // top-k honored
  EXPECT_EQ(skew.top[0].rank, 2);
  EXPECT_DOUBLE_EQ(skew.top[0].seconds, 4.0);
  EXPECT_EQ(skew.top[0].dominant, "compute");
  EXPECT_DOUBLE_EQ(skew.top[0].dominant_seconds, 4.0);
  EXPECT_EQ(skew.top[1].rank, 1);
  EXPECT_DOUBLE_EQ(skew.top[1].seconds, 2.0);
  EXPECT_EQ(skew.top[1].dominant, "collective_skew");
  EXPECT_DOUBLE_EQ(skew.top[1].dominant_seconds, 2.0);
}

// Two phases sort by descending max rank seconds, and the in-phase
// dominant attribution is restricted to each phase's own windows: the same
// rank is compute-bound in one phase and recv-wait-bound in the other.
TEST(PhaseSkew, PhasesSortByMaxAndAttributionIsPerPhase) {
  Recorder rec(2, Level::Full);
  rec.add(0, Category::Phase, "map", 0.0, 1.0);
  rec.add(0, Category::Phase, "exchange", 1.0, 6.0);
  rec.add(1, Category::Phase, "map", 0.0, 1.0);
  rec.add(1, Category::Phase, "exchange", 1.0, 6.0);
  rec.add(0, Category::App, "work", 0.0, 1.0);
  rec.add(1, Category::App, "work", 0.0, 1.0);
  // During "exchange", rank 1 waits on a receive the whole time.
  rec.add(0, Category::Compute, "compute", 1.0, 6.0);
  rec.add(1, Category::RecvWait, "recv", 1.0, 6.0);
  rec.set_final_time(0, 6.0);
  rec.set_final_time(1, 6.0);

  const Report report = analyze(rec);
  ASSERT_EQ(report.phase_skew.size(), 2u);
  EXPECT_EQ(report.phase_skew[0].phase, "exchange");  // max 5 s sorts first
  EXPECT_EQ(report.phase_skew[1].phase, "map");
  const PhaseSkew& exchange = report.phase_skew[0];
  ASSERT_EQ(exchange.top.size(), 2u);
  for (const RankPhaseTime& t : exchange.top) {
    if (t.rank == 0) {
      EXPECT_EQ(t.dominant, "compute");
    } else {
      EXPECT_EQ(t.dominant, "recv_wait");
      EXPECT_DOUBLE_EQ(t.dominant_seconds, 5.0);
    }
  }
  const PhaseSkew& map = report.phase_skew[1];
  for (const RankPhaseTime& t : map.top) EXPECT_EQ(t.dominant, "compute");
}

// ISSUE acceptance: on a fig3-style run the critical-path length equals the
// simulated makespan, and the idle categories sum to total idle within
// 0.1%. Exercised at both trace levels.
TEST(Analyze, BlastRunPathTilesMakespanAndIdleSumsExactly) {
  for (const Level level : {Level::Phases, Level::Full}) {
    Recorder rec(7, level);
    const double elapsed =
        run_sim(7, &rec, nullptr,
                [](mpi::Comm& comm) { mrblast::run_blast_sim(comm, small_blast()); });
    const Report report = analyze(rec);
    EXPECT_DOUBLE_EQ(report.makespan, elapsed);
    EXPECT_NEAR(report.path.length, report.makespan, 1e-9 * report.makespan);
    ASSERT_FALSE(report.path.segments.empty());

    double idle_sum = 0.0, idle_total = 0.0, busy_plus_idle = 0.0, finals = 0.0;
    for (const RankBreakdown& b : report.ranks) {
      idle_sum += b.idle_total();
      idle_total += b.final_time - b.busy_total();
      busy_plus_idle += b.busy_total() + b.idle_total();
      finals += b.final_time;
    }
    ASSERT_GT(idle_total, 0.0);
    EXPECT_NEAR(idle_sum, idle_total, 1e-3 * idle_total);  // within 0.1%
    EXPECT_NEAR(busy_plus_idle, finals, 1e-9 * finals);
    // The totals row is the element-wise sum of the per-rank rows.
    EXPECT_NEAR(report.total.idle_total(), idle_sum, 1e-9 * finals);
  }
}

TEST(Analyze, ReportSurvivesChromeTraceRoundTrip) {
  Recorder rec(5, Level::Full);
  run_sim(5, &rec, nullptr,
          [](mpi::Comm& comm) { mrblast::run_blast_sim(comm, small_blast()); });
  const Report direct = analyze(rec);

  const auto path = std::filesystem::temp_directory_path() / "mrbio_obs_roundtrip.json";
  trace::write_chrome_trace(path.string(), rec);
  const trace::LoadedTrace loaded = trace::read_chrome_trace(path.string());
  std::filesystem::remove(path);
  const Report reloaded = analyze(loaded.recorder);

  EXPECT_EQ(reloaded.nranks, direct.nranks);
  EXPECT_EQ(reloaded.level, direct.level);
  EXPECT_DOUBLE_EQ(reloaded.makespan, direct.makespan);
  EXPECT_DOUBLE_EQ(reloaded.path.length, direct.path.length);
  EXPECT_EQ(reloaded.path.hops, direct.path.hops);
  EXPECT_EQ(reloaded.path.segments.size(), direct.path.segments.size());
  ASSERT_EQ(reloaded.ranks.size(), direct.ranks.size());
  for (std::size_t r = 0; r < direct.ranks.size(); ++r) {
    EXPECT_DOUBLE_EQ(reloaded.ranks[r].useful, direct.ranks[r].useful) << "rank " << r;
    EXPECT_DOUBLE_EQ(reloaded.ranks[r].idle_total(), direct.ranks[r].idle_total())
        << "rank " << r;
  }
}

// ISSUE satellite: metrics + full tracing + report generation must not move
// virtual time by a single bit on either driver (fig3- and fig6-style).
TEST(ZeroPerturbation, BlastVirtualTimeIdenticalWithMetricsAndReport) {
  const auto body = [](mpi::Comm& comm) { mrblast::run_blast_sim(comm, small_blast()); };
  const double bare = run_sim(7, nullptr, nullptr, body);
  Recorder rec(7, Level::Full);
  Registry registry;
  const double observed = run_sim(7, &rec, &registry, body);
  EXPECT_DOUBLE_EQ(bare, observed);
  EXPECT_GT(registry.counter("sim.messages").value(), 0u);
  EXPECT_GT(registry.histogram("mrmpi.task_seconds").count(), 0u);
  EXPECT_GT(registry.histogram("blast.search_seconds").count(), 0u);
  const Report report = analyze(rec);  // report generation is read-only
  EXPECT_DOUBLE_EQ(report.makespan, bare);
}

TEST(ZeroPerturbation, SomVirtualTimeIdenticalWithMetricsAndReport) {
  const auto body = [](mpi::Comm& comm) { mrsom::run_som_sim(comm, small_som()); };
  const double bare = run_sim(8, nullptr, nullptr, body);
  Recorder rec(8, Level::Full);
  Registry registry;
  const double observed = run_sim(8, &rec, &registry, body);
  EXPECT_DOUBLE_EQ(bare, observed);
  EXPECT_GT(registry.histogram("som.epoch_bcast_seconds").count(), 0u);
  EXPECT_GT(registry.histogram("som.epoch_reduce_seconds").count(), 0u);
  const Report report = analyze(rec);
  EXPECT_DOUBLE_EQ(report.makespan, bare);
}

}  // namespace
}  // namespace mrbio::obs
