// Differential tests of the floating-point SOM kernels: every variant
// must produce bit-identical float/double results (the canonical striped
// reduction makes that well-defined), and the full training entry points
// must yield byte-identical codebooks under every pinned ISA level.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstring>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"
#include "som/som.hpp"

namespace mrbio::simd {
namespace {

struct IsaPinGuard {
  ~IsaPinGuard() { clear_isa_override(); }
};

// ---------------------------------------------------------------------------
// Independent references (the documented canonical semantics)

double ref_dist2(const float* a, const float* b, std::size_t n) {
  double p[4] = {0.0, 0.0, 0.0, 0.0};
  for (std::size_t i = 0; i < n; ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    p[i % 4] += d * d;
  }
  return (p[0] + p[2]) + (p[1] + p[3]);
}

void ref_scaled_accum(float* acc, const float* x, std::size_t n, double h) {
  for (std::size_t i = 0; i < n; ++i) {
    acc[i] += static_cast<float>(h * static_cast<double>(x[i]));
  }
}

void ref_online_update(float* w, const float* x, std::size_t n, double ah) {
  for (std::size_t i = 0; i < n; ++i) {
    const float diff = x[i] - w[i];
    w[i] += static_cast<float>(ah * static_cast<double>(diff));
  }
}

/// Mixed-magnitude random floats (exercise rounding, not just tiny values).
std::vector<float> random_floats(Rng& rng, std::size_t n) {
  std::vector<float> v(n);
  for (auto& f : v) {
    const double mag = rng.uniform() < 0.2   ? 1e6
                       : rng.uniform() < 0.3 ? 1e-6
                                             : 1.0;
    f = static_cast<float>((rng.uniform() - 0.5) * 2.0 * mag);
  }
  return v;
}

void expect_bitwise_eq(std::span<const float> got, std::span<const float> want,
                       const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  for (std::size_t i = 0; i < want.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint32_t>(got[i]), std::bit_cast<std::uint32_t>(want[i]))
        << label << " element " << i << ": " << got[i] << " vs " << want[i];
  }
}

const std::size_t kLengths[] = {0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 32, 33, 100, 257};

TEST(SomKernelDifferential, Dist2Bitwise) {
  Rng rng(11);
  for (const std::size_t n : kLengths) {
    const std::vector<float> a = random_floats(rng, n);
    const std::vector<float> b = random_floats(rng, n);
    const double want = ref_dist2(a.data(), b.data(), n);
    for (Isa isa : runnable_isas()) {
      const double got = kernels(isa).dist2_f32(a.data(), b.data(), n);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(got), std::bit_cast<std::uint64_t>(want))
          << isa_name(isa) << " n=" << n << ": " << got << " vs " << want;
    }
  }
}

TEST(SomKernelDifferential, ScaledAccumBitwise) {
  Rng rng(12);
  for (const std::size_t n : kLengths) {
    const std::vector<float> x = random_floats(rng, n);
    const std::vector<float> acc0 = random_floats(rng, n);
    const double h = rng.uniform(0.0, 2.0);
    std::vector<float> want = acc0;
    ref_scaled_accum(want.data(), x.data(), n, h);
    for (Isa isa : runnable_isas()) {
      std::vector<float> got = acc0;
      kernels(isa).scaled_accum_f32(got.data(), x.data(), n, h);
      expect_bitwise_eq(got, want, isa_name(isa));
    }
  }
}

TEST(SomKernelDifferential, OnlineUpdateBitwise) {
  Rng rng(13);
  for (const std::size_t n : kLengths) {
    const std::vector<float> x = random_floats(rng, n);
    const std::vector<float> w0 = random_floats(rng, n);
    const double ah = rng.uniform(0.0, 0.5);
    std::vector<float> want = w0;
    ref_online_update(want.data(), x.data(), n, ah);
    for (Isa isa : runnable_isas()) {
      std::vector<float> got = w0;
      kernels(isa).online_update_f32(got.data(), x.data(), n, ah);
      expect_bitwise_eq(got, want, isa_name(isa));
    }
  }
}

TEST(SomKernelDifferential, AddAndScaleAssignBitwise) {
  Rng rng(14);
  for (const std::size_t n : kLengths) {
    const std::vector<float> b = random_floats(rng, n);
    const std::vector<float> a0 = random_floats(rng, n);
    const std::vector<float> num = random_floats(rng, n);
    const float denom = static_cast<float>(rng.uniform(0.5, 3.0));

    std::vector<float> add_want = a0;
    for (std::size_t i = 0; i < n; ++i) add_want[i] += b[i];
    std::vector<float> scale_want(n);
    for (std::size_t i = 0; i < n; ++i) scale_want[i] = num[i] / denom;

    for (Isa isa : runnable_isas()) {
      std::vector<float> add_got = a0;
      kernels(isa).add_f32(add_got.data(), b.data(), n);
      expect_bitwise_eq(add_got, add_want, isa_name(isa));
      std::vector<float> scale_got(n);
      kernels(isa).scale_assign_f32(scale_got.data(), num.data(), n, denom);
      expect_bitwise_eq(scale_got, scale_want, isa_name(isa));
    }
  }
}

// ---------------------------------------------------------------------------
// Full SOM entry points across pinned ISA levels

Matrix random_data(Rng& rng, std::size_t rows, std::size_t cols) {
  Matrix data(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c)
      data(r, c) = static_cast<float>(rng.uniform());
  return data;
}

TEST(SomTrainingDifferential, FindBmuIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  Rng rng(21);
  // Dims 7 and 12 exercise vector tails; duplicate rows exercise the
  // lowest-index tie-break.
  for (const std::size_t dim : {std::size_t{7}, std::size_t{12}}) {
    som::Codebook cb(som::SomGrid{6, 6}, dim);
    cb.init_random(rng);
    std::copy(cb.vector(14).begin(), cb.vector(14).end(), cb.vector(3).begin());
    for (int iter = 0; iter < 40; ++iter) {
      const std::vector<float> x = random_floats(rng, dim);
      set_isa(Isa::Scalar);
      const std::size_t want = som::find_bmu(cb, x);
      for (Isa isa : runnable_isas()) {
        set_isa(isa);
        EXPECT_EQ(som::find_bmu(cb, x), want) << isa_name(isa) << " iter " << iter;
      }
    }
  }
}

TEST(SomTrainingDifferential, TrainBatchCodebookByteIdentical) {
  IsaPinGuard guard;
  Rng data_rng(31);
  const Matrix data = random_data(data_rng, 90, 9);
  som::SomParams params;
  params.epochs = 4;

  auto train = [&](Isa isa) {
    set_isa(isa);
    Rng init_rng(5);
    som::Codebook cb(som::SomGrid{5, 4}, data.cols());
    cb.init_random(init_rng);
    som::train_batch(cb, data.view(), params);
    return cb;
  };

  const som::Codebook want = train(Isa::Scalar);
  for (Isa isa : runnable_isas()) {
    const som::Codebook got = train(isa);
    ASSERT_EQ(got.weights().rows(), want.weights().rows());
    EXPECT_EQ(std::memcmp(got.weights().row(0).data(), want.weights().row(0).data(),
                          want.weights().rows() * want.weights().cols() * sizeof(float)),
              0)
        << isa_name(isa);
  }
}

TEST(SomTrainingDifferential, TrainOnlineCodebookByteIdentical) {
  IsaPinGuard guard;
  Rng data_rng(41);
  const Matrix data = random_data(data_rng, 70, 6);
  som::SomParams params;
  params.epochs = 3;

  auto train = [&](Isa isa) {
    set_isa(isa);
    Rng init_rng(6);
    som::Codebook cb(som::SomGrid{4, 4}, data.cols());
    cb.init_random(init_rng);
    Rng train_rng(7);
    som::train_online(cb, data.view(), params, train_rng);
    return cb;
  };

  const som::Codebook want = train(Isa::Scalar);
  for (Isa isa : runnable_isas()) {
    const som::Codebook got = train(isa);
    ASSERT_EQ(got.weights().rows(), want.weights().rows());
    EXPECT_EQ(std::memcmp(got.weights().row(0).data(), want.weights().row(0).data(),
                          want.weights().rows() * want.weights().cols() * sizeof(float)),
              0)
        << isa_name(isa);
  }
}

TEST(SomTrainingDifferential, BatchAccumulatorMergeApplyIdentical) {
  IsaPinGuard guard;
  Rng rng(51);
  const Matrix data = random_data(rng, 40, 8);
  som::Codebook base(som::SomGrid{4, 3}, data.cols());
  base.init_random(rng);

  auto accumulate = [&](Isa isa) {
    set_isa(isa);
    som::Codebook cb = base;
    // Two shards merged, as the parallel decomposition does.
    som::BatchAccumulator acc1(cb.grid(), cb.dim());
    som::BatchAccumulator acc2(cb.grid(), cb.dim());
    for (std::size_t r = 0; r < data.rows(); ++r) {
      auto& acc = r < data.rows() / 2 ? acc1 : acc2;
      acc.add(cb, data.view().row(r), 1.5);
    }
    acc1.merge(acc2);
    acc1.apply(cb);
    return cb;
  };

  const som::Codebook want = accumulate(Isa::Scalar);
  for (Isa isa : runnable_isas()) {
    const som::Codebook got = accumulate(isa);
    EXPECT_EQ(std::memcmp(got.weights().row(0).data(), want.weights().row(0).data(),
                          want.weights().rows() * want.weights().cols() * sizeof(float)),
              0)
        << isa_name(isa);
  }
}

}  // namespace
}  // namespace mrbio::simd
