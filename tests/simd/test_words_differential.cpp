// Differential tests of the word-scan kernels: packed codes, validity
// masks, and the carried rolling state must match an independent
// run-counter reference and be identical across every runnable ISA — for
// all alphabet edge bytes, all word sizes, and arbitrary block splits.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "blast/lookup.hpp"
#include "blast/score.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace mrbio::simd {
namespace {

struct IsaPinGuard {
  ~IsaPinGuard() { clear_isa_override(); }
};

// ---------------------------------------------------------------------------
// prot_words

void ref_prot_words(const std::uint8_t* s, std::size_t m, std::uint16_t* codes,
                    std::uint64_t* valid) {
  *valid = 0;
  for (std::size_t i = 0; i < m; ++i) {
    codes[i] = static_cast<std::uint16_t>(
        (static_cast<unsigned>(s[i]) * 20u + s[i + 1]) * 20u + s[i + 2]);
    if (s[i] < 20 && s[i + 1] < 20 && s[i + 2] < 20) {
      *valid |= std::uint64_t{1} << i;
    }
  }
}

/// Only codes at valid positions are meaningful; invalid lanes may hold
/// anything, so compare exactly that.
void expect_same_valid_codes(std::uint64_t valid_want, const std::uint16_t* want,
                             std::uint64_t valid_got, const std::uint16_t* got,
                             std::size_t m, const char* label) {
  EXPECT_EQ(valid_got, valid_want) << label;
  for (std::size_t i = 0; i < m; ++i) {
    if ((valid_want >> i) & 1) {
      EXPECT_EQ(got[i], want[i]) << label << " pos " << i;
    }
  }
}

TEST(ProtWordsDifferential, RandomResiduesAllIsas) {
  Rng rng(5);
  for (int iter = 0; iter < 200; ++iter) {
    const std::size_t m = rng.below(65);
    std::vector<std::uint8_t> s(m + 2);
    for (auto& c : s) {
      const double u = rng.uniform();
      c = u < 0.05   ? std::uint8_t{31}
          : u < 0.12 ? std::uint8_t{20}
                     : static_cast<std::uint8_t>(rng.below(20));
    }
    std::uint16_t want_codes[64];
    std::uint64_t want_valid = 0;
    ref_prot_words(s.data(), m, want_codes, &want_valid);
    for (Isa isa : runnable_isas()) {
      std::uint16_t codes[64];
      std::uint64_t valid = 0;
      kernels(isa).prot_words(s.data(), m, codes, &valid);
      expect_same_valid_codes(want_valid, want_codes, valid, codes, m, isa_name(isa));
    }
  }
}

// Every byte value must classify correctly: 0..19 residue, >= 20 invalid.
TEST(ProtWordsDifferential, AllEdgeBytesClassify) {
  for (int mid = 0; mid < 256; ++mid) {
    std::uint8_t s[6] = {0, static_cast<std::uint8_t>(mid), 1, 2, 3, 4};
    std::uint16_t want_codes[64];
    std::uint64_t want_valid = 0;
    ref_prot_words(s, 4, want_codes, &want_valid);
    for (Isa isa : runnable_isas()) {
      std::uint16_t codes[64];
      std::uint64_t valid = 0;
      kernels(isa).prot_words(s, 4, codes, &valid);
      expect_same_valid_codes(want_valid, want_codes, valid, codes, 4, isa_name(isa));
    }
  }
}

// ---------------------------------------------------------------------------
// dna_words

/// Independent whole-sequence reference using the classic run counter:
/// (end offset, packed word) for every position where the last word_size
/// bases are unambiguous.
std::vector<std::pair<std::size_t, std::uint32_t>> ref_dna_scan(
    std::span<const std::uint8_t> s, int w) {
  const std::uint32_t mask = (std::uint32_t{1} << (2 * w)) - 1;
  std::uint32_t word = 0;
  int run = 0;
  std::vector<std::pair<std::size_t, std::uint32_t>> out;
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] >= 4) {
      run = 0;
      continue;
    }
    word = ((word << 2) | s[i]) & mask;
    if (++run >= w) out.emplace_back(i, word);
  }
  return out;
}

/// Streams `s` through the kernel in blocks of `block` bytes, collecting
/// (end offset, code) at valid positions.
std::vector<std::pair<std::size_t, std::uint32_t>> kernel_dna_scan(
    const Kernels& kern, std::span<const std::uint8_t> s, int w, std::size_t block) {
  const std::uint32_t mask = (std::uint32_t{1} << (2 * w)) - 1;
  std::uint32_t word = 0;
  std::uint64_t hist = 0;
  std::uint32_t codes[48];
  std::uint64_t valid = 0;
  std::vector<std::pair<std::size_t, std::uint32_t>> out;
  for (std::size_t base = 0; base < s.size(); base += block) {
    const std::size_t m = std::min(block, s.size() - base);
    kern.dna_words(s.data() + base, m, w, mask, &word, &hist, codes, &valid);
    while (valid != 0) {
      const int i = std::countr_zero(valid);
      valid &= valid - 1;
      out.emplace_back(base + static_cast<std::size_t>(i), codes[i]);
    }
  }
  return out;
}

TEST(DnaWordsDifferential, MatchesRunCounterReferenceAcrossBlockSplits) {
  Rng rng(31);
  for (int w : {4, 7, 11, 13}) {
    for (int iter = 0; iter < 30; ++iter) {
      const std::size_t n = rng.below(300);
      std::vector<std::uint8_t> s(n);
      for (auto& c : s) {
        const double u = rng.uniform();
        c = u < 0.06   ? std::uint8_t{4}
            : u < 0.09 ? std::uint8_t{31}
                       : static_cast<std::uint8_t>(rng.below(4));
      }
      const auto want = ref_dna_scan(s, w);
      for (Isa isa : runnable_isas()) {
        for (std::size_t block : {std::size_t{48}, std::size_t{17}, std::size_t{1}}) {
          const auto got = kernel_dna_scan(kernels(isa), s, w, block);
          EXPECT_EQ(got, want)
              << isa_name(isa) << " w=" << w << " block=" << block << " iter " << iter;
        }
      }
    }
  }
}

// The carried state (word_io / hist_io) is part of the contract — a block
// processed by one variant must leave the exact state any other variant
// would, or mixed-dispatch streams would diverge.
TEST(DnaWordsDifferential, CarriedStateIdenticalAcrossIsas) {
  Rng rng(83);
  const int w = 11;
  const std::uint32_t mask = (std::uint32_t{1} << (2 * w)) - 1;
  for (int iter = 0; iter < 50; ++iter) {
    const std::size_t m = 1 + rng.below(48);
    std::vector<std::uint8_t> s(m);
    for (auto& c : s) {
      c = rng.uniform() < 0.1 ? std::uint8_t{4}
                              : static_cast<std::uint8_t>(rng.below(4));
    }
    const std::uint32_t word_in = static_cast<std::uint32_t>(rng.below(mask + 1));
    const std::uint64_t hist_in = rng.below(std::uint64_t{1} << (w - 1));

    std::uint32_t want_word = 0;
    std::uint64_t want_hist = 0;
    std::uint64_t want_valid = 0;
    std::uint32_t want_codes[48];
    bool first = true;
    for (Isa isa : runnable_isas()) {
      std::uint32_t word = word_in;
      std::uint64_t hist = hist_in;
      std::uint64_t valid = 0;
      std::uint32_t codes[48];
      kernels(isa).dna_words(s.data(), m, w, mask, &word, &hist, codes, &valid);
      if (first) {
        want_word = word;
        want_hist = hist;
        want_valid = valid;
        std::copy(codes, codes + m, want_codes);
        first = false;
        continue;
      }
      EXPECT_EQ(word, want_word) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(hist, want_hist) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(valid, want_valid) << isa_name(isa) << " iter " << iter;
      for (std::size_t i = 0; i < m; ++i) {
        if ((want_valid >> i) & 1) {
          EXPECT_EQ(codes[i], want_codes[i]) << isa_name(isa) << " pos " << i;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Lookup tables built under each pinned level must be identical.

TEST(LookupDifferential, NucLookupIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  Rng rng(99);
  std::vector<std::uint8_t> concat(600);
  for (auto& c : concat) {
    const double u = rng.uniform();
    c = u < 0.05   ? std::uint8_t{4}
        : u < 0.08 ? std::uint8_t{31}
                   : static_cast<std::uint8_t>(rng.below(4));
  }
  for (int w : {4, 6}) {
    set_isa(Isa::Scalar);
    const blast::NucLookup want(concat, w);
    const std::uint32_t nbuckets = std::uint32_t{1} << (2 * w);
    for (Isa isa : runnable_isas()) {
      set_isa(isa);
      const blast::NucLookup got(concat, w);
      ASSERT_EQ(got.total_positions(), want.total_positions())
          << isa_name(isa) << " w=" << w;
      for (std::uint32_t bucket = 0; bucket < nbuckets; ++bucket) {
        const auto ws = want.hits(bucket);
        const auto gs = got.hits(bucket);
        ASSERT_EQ(gs.size(), ws.size()) << isa_name(isa) << " bucket " << bucket;
        for (std::size_t i = 0; i < ws.size(); ++i) {
          EXPECT_EQ(gs[i], ws[i]) << isa_name(isa) << " bucket " << bucket;
        }
      }
    }
  }
}

TEST(LookupDifferential, ProtLookupIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  Rng rng(101);
  std::vector<std::uint8_t> concat(300);
  for (auto& c : concat) {
    const double u = rng.uniform();
    c = u < 0.04   ? std::uint8_t{31}
        : u < 0.08 ? std::uint8_t{20}
                   : static_cast<std::uint8_t>(rng.below(20));
  }
  const blast::Scorer scorer = blast::Scorer::blosum62();
  for (int threshold : {0, 11}) {
    set_isa(Isa::Scalar);
    const blast::ProtLookup want(concat, threshold, scorer);
    for (Isa isa : runnable_isas()) {
      set_isa(isa);
      const blast::ProtLookup got(concat, threshold, scorer);
      ASSERT_EQ(got.total_positions(), want.total_positions())
          << isa_name(isa) << " T=" << threshold;
      for (std::uint32_t bucket = 0; bucket < blast::ProtLookup::kIndexSize; ++bucket) {
        const auto ws = want.hits(bucket);
        const auto gs = got.hits(bucket);
        ASSERT_EQ(gs.size(), ws.size()) << isa_name(isa) << " bucket " << bucket;
        for (std::size_t i = 0; i < ws.size(); ++i) {
          EXPECT_EQ(gs[i], ws[i]) << isa_name(isa) << " bucket " << bucket;
        }
      }
    }
  }
}

}  // namespace
}  // namespace mrbio::simd
