// Differential tests of the alignment-extension kernels: every runnable
// ISA variant must be bit-identical to an independently written scalar
// reference — on random inputs, on adversarial score profiles (X-drop
// boundary hits, sentinel walls, huge magnitudes), and through the full
// extend_ungapped / extend_gapped entry points.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <vector>

#include "blast/extend.hpp"
#include "blast/score.hpp"
#include "common/rng.hpp"
#include "simd/simd.hpp"

namespace mrbio::simd {
namespace {

struct IsaPinGuard {
  ~IsaPinGuard() { clear_isa_override(); }
};

// ---------------------------------------------------------------------------
// Independent references (deliberately re-derived from the documented
// contract, not shared with src/simd)

DiagScanResult ref_diag_scan(const std::uint8_t* a, const std::uint8_t* b,
                             std::size_t n, bool reverse, const int* table, int run,
                             int best, int xdrop) {
  std::size_t best_len = 0;
  for (std::size_t k = 0; k < n; ++k) {
    if (run <= best - xdrop) break;
    const std::uint8_t ak = reverse ? a[-static_cast<std::ptrdiff_t>(k) - 1] : a[k];
    const std::uint8_t bk = reverse ? b[-static_cast<std::ptrdiff_t>(k) - 1] : b[k];
    run += table[static_cast<std::size_t>(ak) * 32 + bk];
    if (run > best) {
      best = run;
      best_len = k + 1;
    }
  }
  return {best, best_len};
}

void ref_row_prep(const int* h_prev, const int* f_prev, std::size_t prev_n,
                  const std::uint8_t* b_lo, const int* score_row, int open_first,
                  int ext, std::size_t m, int* d_out, int* f_out,
                  std::uint8_t* fflag_out) {
  for (std::size_t t = 0; t < m; ++t) {
    if (t < prev_n) {
      const int from_h = h_prev[t] > kNegInf ? h_prev[t] - open_first : kNegInf;
      const int from_f = f_prev[t] > kNegInf ? f_prev[t] - ext : kNegInf;
      f_out[t] = from_f > from_h ? from_f : from_h;
      fflag_out[t] = from_f > from_h ? 1 : 0;
    } else {
      f_out[t] = kNegInf;
      fflag_out[t] = 0;
    }
    if (t >= 1 && t <= prev_n && h_prev[t - 1] > kNegInf) {
      d_out[t] = h_prev[t - 1] + score_row[b_lo[t - 1]];
    } else {
      d_out[t] = kNegInf;
    }
  }
}

/// Random 32x32 table; entries in [lo, hi], sentinel row/column poisoned.
std::vector<int> random_table(Rng& rng, int lo, int hi) {
  std::vector<int> table(32 * 32, 0);
  for (int& v : table) v = lo + static_cast<int>(rng.below(static_cast<std::uint64_t>(hi - lo + 1)));
  for (int i = 0; i < 32; ++i) {
    table[static_cast<std::size_t>(i) * 32 + 31] = -16384;
    table[static_cast<std::size_t>(31) * 32 + i] = -16384;
  }
  return table;
}

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t n, bool protein) {
  std::vector<std::uint8_t> s(n);
  for (auto& c : s) {
    const double u = rng.uniform();
    if (u < 0.03) {
      c = 31;  // sentinel
    } else if (u < 0.08) {
      c = protein ? 20 : 4;  // ambiguity code
    } else {
      c = static_cast<std::uint8_t>(rng.below(protein ? 20 : 4));
    }
  }
  return s;
}

// ---------------------------------------------------------------------------
// diag_scan

TEST(DiagScanDifferential, RandomSequencesAllIsas) {
  Rng rng(42);
  const std::vector<Isa> isas = runnable_isas();
  for (int iter = 0; iter < 400; ++iter) {
    const bool protein = rng.uniform() < 0.5;
    const std::vector<int> table = random_table(rng, -6, 5);
    const std::size_t n = rng.below(70);  // straddles the 8-pair block size
    const std::vector<std::uint8_t> a = random_bytes(rng, n, protein);
    const std::vector<std::uint8_t> b = random_bytes(rng, n, protein);
    const bool reverse = rng.uniform() < 0.5;
    const int run_in = static_cast<int>(rng.below(20));
    const int best_in = run_in + static_cast<int>(rng.below(10));
    const int xdrop = static_cast<int>(rng.below(30));

    const std::uint8_t* pa = reverse ? a.data() + n : a.data();
    const std::uint8_t* pb = reverse ? b.data() + n : b.data();
    const DiagScanResult want =
        ref_diag_scan(pa, pb, n, reverse, table.data(), run_in, best_in, xdrop);
    for (Isa isa : isas) {
      const DiagScanResult got =
          kernels(isa).diag_scan(pa, pb, n, reverse, table.data(), run_in, best_in, xdrop);
      EXPECT_EQ(got.best, want.best)
          << isa_name(isa) << " iter " << iter << " n=" << n << " rev=" << reverse;
      EXPECT_EQ(got.best_len, want.best_len)
          << isa_name(isa) << " iter " << iter << " n=" << n << " rev=" << reverse;
    }
  }
}

TEST(DiagScanDifferential, EmptyScanReturnsInputs) {
  const std::vector<int> table(32 * 32, 1);
  const std::uint8_t byte = 0;
  for (Isa isa : runnable_isas()) {
    for (bool reverse : {false, true}) {
      const DiagScanResult r =
          kernels(isa).diag_scan(&byte, &byte, 0, reverse, table.data(), 7, 9, 5);
      EXPECT_EQ(r.best, 9) << isa_name(isa);
      EXPECT_EQ(r.best_len, 0u) << isa_name(isa);
    }
  }
}

// The scan must stop at exactly run == best - xdrop, even when the stop
// lands in the middle of a vector block. Construct a profile that climbs,
// then decays by exactly one per pair so every stopping offset is hit.
TEST(DiagScanDifferential, XdropBoundaryExactStops) {
  std::vector<int> table(32 * 32, 0);
  table[0 * 32 + 0] = 3;   // (0,0): climb
  table[1 * 32 + 1] = -1;  // (1,1): decay by exactly 1
  for (std::size_t climb = 0; climb < 4; ++climb) {
    for (std::size_t tail = 0; tail < 24; ++tail) {
      std::vector<std::uint8_t> seq(climb + tail);
      for (std::size_t i = 0; i < climb; ++i) seq[i] = 0;
      for (std::size_t i = climb; i < seq.size(); ++i) seq[i] = 1;
      for (int xdrop : {0, 1, 2, 5, 7, 8, 9, 100}) {
        const DiagScanResult want = ref_diag_scan(seq.data(), seq.data(), seq.size(),
                                                  false, table.data(), 0, 0, xdrop);
        for (Isa isa : runnable_isas()) {
          const DiagScanResult got = kernels(isa).diag_scan(
              seq.data(), seq.data(), seq.size(), false, table.data(), 0, 0, xdrop);
          EXPECT_EQ(got.best, want.best)
              << isa_name(isa) << " climb=" << climb << " tail=" << tail
              << " xdrop=" << xdrop;
          EXPECT_EQ(got.best_len, want.best_len)
              << isa_name(isa) << " climb=" << climb << " tail=" << tail
              << " xdrop=" << xdrop;
        }
      }
    }
  }
}

// Sentinel-adjacent seeds and huge-magnitude scores: the -16384 sentinel
// wall next to large positive match scores stresses any narrowing in the
// vector lanes (our lanes are 32-bit; this guards against regressions).
TEST(DiagScanDifferential, SentinelWallsAndHugeScores) {
  Rng rng(7);
  for (int iter = 0; iter < 120; ++iter) {
    std::vector<int> table = random_table(rng, -30000, 29999);
    const std::size_t n = 1 + rng.below(40);
    std::vector<std::uint8_t> a = random_bytes(rng, n, false);
    std::vector<std::uint8_t> b = random_bytes(rng, n, false);
    a[rng.below(n)] = 31;  // guarantee at least one sentinel hit
    const int xdrop = static_cast<int>(rng.below(40000));
    const DiagScanResult want =
        ref_diag_scan(a.data(), b.data(), n, false, table.data(), 0, 0, xdrop);
    for (Isa isa : runnable_isas()) {
      const DiagScanResult got =
          kernels(isa).diag_scan(a.data(), b.data(), n, false, table.data(), 0, 0, xdrop);
      EXPECT_EQ(got.best, want.best) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.best_len, want.best_len) << isa_name(isa) << " iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// gapped_row_prep

TEST(RowPrepDifferential, RandomWindowsAllIsas) {
  Rng rng(1337);
  for (int iter = 0; iter < 400; ++iter) {
    const std::size_t prev_n = rng.below(36);
    // Typical row growth is m = prev_n + 1 but the window can also shrink.
    const std::size_t m = 1 + rng.below(prev_n + 3);
    std::vector<int> h_prev(prev_n), f_prev(prev_n);
    for (std::size_t t = 0; t < prev_n; ++t) {
      h_prev[t] = rng.uniform() < 0.25 ? kNegInf
                                       : static_cast<int>(rng.below(200)) - 100;
      f_prev[t] = rng.uniform() < 0.25 ? kNegInf
                                       : static_cast<int>(rng.below(200)) - 100;
    }
    std::vector<std::uint8_t> b_lo(m);
    for (auto& c : b_lo) c = static_cast<std::uint8_t>(rng.below(32));
    std::vector<int> score_row(32);
    for (int& v : score_row) v = static_cast<int>(rng.below(13)) - 6;
    const int open_first = 1 + static_cast<int>(rng.below(12));
    const int ext = 1 + static_cast<int>(rng.below(4));

    std::vector<int> d_want(m), f_want(m), d_got(m), f_got(m);
    std::vector<std::uint8_t> flag_want(m), flag_got(m);
    ref_row_prep(h_prev.data(), f_prev.data(), prev_n, b_lo.data(), score_row.data(),
                 open_first, ext, m, d_want.data(), f_want.data(), flag_want.data());
    for (Isa isa : runnable_isas()) {
      kernels(isa).gapped_row_prep(h_prev.data(), f_prev.data(), prev_n, b_lo.data(),
                                   score_row.data(), open_first, ext, m, d_got.data(),
                                   f_got.data(), flag_got.data());
      EXPECT_EQ(d_got, d_want) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(f_got, f_want) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(flag_got, flag_want) << isa_name(isa) << " iter " << iter;
    }
  }
}

// ---------------------------------------------------------------------------
// Full extension entry points across pinned ISA levels

/// Query/subject homolog pair plus an exact-match anchor for the seed.
struct HomologPair {
  std::vector<std::uint8_t> query, subject;
  std::size_t q_seed = 0, s_seed = 0;
};

HomologPair random_homologs(Rng& rng, bool protein) {
  HomologPair p;
  const std::size_t len = 40 + rng.below(160);
  p.query = random_bytes(rng, len, protein);
  p.subject = p.query;
  for (auto& c : p.subject) {
    if (rng.uniform() < 0.1) c = static_cast<std::uint8_t>(rng.below(protein ? 20 : 4));
  }
  p.q_seed = 4 + rng.below(len - 8);
  p.s_seed = p.q_seed;
  p.subject[p.s_seed] = p.query[p.q_seed];  // genuine residue match
  return p;
}

TEST(ExtendDifferential, UngappedIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  Rng rng(2024);
  const blast::Scorer dna = blast::Scorer::dna();
  const blast::Scorer prot = blast::Scorer::blosum62();
  for (int iter = 0; iter < 80; ++iter) {
    const bool protein = rng.uniform() < 0.5;
    const blast::Scorer& scorer = protein ? prot : dna;
    const HomologPair p = random_homologs(rng, protein);
    const std::size_t word_len = protein ? 3 : 8;
    const int xdrop = 5 + static_cast<int>(rng.below(30));
    const std::size_t q_pos = std::min(p.q_seed, p.query.size() - word_len);
    const std::size_t s_pos = std::min(p.s_seed, p.subject.size() - word_len);

    set_isa(Isa::Scalar);
    const blast::UngappedSegment want = blast::extend_ungapped(
        p.query, p.subject, q_pos, s_pos, word_len, scorer, xdrop);
    for (Isa isa : runnable_isas()) {
      set_isa(isa);
      const blast::UngappedSegment got = blast::extend_ungapped(
          p.query, p.subject, q_pos, s_pos, word_len, scorer, xdrop);
      EXPECT_EQ(got.score, want.score) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.q_start, want.q_start) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.q_end, want.q_end) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.s_start, want.s_start) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.s_end, want.s_end) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.q_best, want.q_best) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.s_best, want.s_best) << isa_name(isa) << " iter " << iter;
    }
  }
}

TEST(ExtendDifferential, UngappedSeedAtSequenceEdges) {
  IsaPinGuard guard;
  const blast::Scorer scorer = blast::Scorer::dna();
  std::vector<std::uint8_t> q(24, 0), s(24, 0);
  struct Case {
    std::size_t q_pos, s_pos;
  };
  // Seed flush at the start (left scan length 0) and flush at the end
  // (right scan length 0).
  for (const Case c : {Case{0, 0}, Case{16, 16}, Case{0, 16}, Case{16, 0}}) {
    set_isa(Isa::Scalar);
    const blast::UngappedSegment want =
        blast::extend_ungapped(q, s, c.q_pos, c.s_pos, 8, scorer, 10);
    for (Isa isa : runnable_isas()) {
      set_isa(isa);
      const blast::UngappedSegment got =
          blast::extend_ungapped(q, s, c.q_pos, c.s_pos, 8, scorer, 10);
      EXPECT_EQ(got.score, want.score) << isa_name(isa);
      EXPECT_EQ(got.q_start, want.q_start) << isa_name(isa);
      EXPECT_EQ(got.q_end, want.q_end) << isa_name(isa);
      EXPECT_EQ(got.s_end, want.s_end) << isa_name(isa);
    }
  }
}

TEST(ExtendDifferential, GappedIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  Rng rng(777);
  const blast::Scorer dna = blast::Scorer::dna();
  const blast::Scorer prot = blast::Scorer::blosum62();
  for (int iter = 0; iter < 60; ++iter) {
    const bool protein = rng.uniform() < 0.5;
    const blast::Scorer& scorer = protein ? prot : dna;
    HomologPair p = random_homologs(rng, protein);
    // Sprinkle indels so the gapped DP genuinely opens gaps.
    for (int d = 0; d < 3; ++d) {
      const std::size_t at = rng.below(p.subject.size());
      if (at == p.s_seed) continue;
      if (rng.uniform() < 0.5) {
        p.subject.erase(p.subject.begin() + static_cast<std::ptrdiff_t>(at));
        if (at < p.s_seed) --p.s_seed;
      } else {
        p.subject.insert(p.subject.begin() + static_cast<std::ptrdiff_t>(at),
                         static_cast<std::uint8_t>(rng.below(protein ? 20 : 4)));
        if (at <= p.s_seed) ++p.s_seed;
      }
    }
    p.subject[p.s_seed] = p.query[p.q_seed];
    const int xdrop = 10 + static_cast<int>(rng.below(30));

    set_isa(Isa::Scalar);
    const blast::GappedAlignment want =
        blast::extend_gapped(p.query, p.subject, p.q_seed, p.s_seed, scorer, xdrop);
    for (Isa isa : runnable_isas()) {
      set_isa(isa);
      const blast::GappedAlignment got =
          blast::extend_gapped(p.query, p.subject, p.q_seed, p.s_seed, scorer, xdrop);
      EXPECT_EQ(got.score, want.score) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.q_start, want.q_start) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.q_end, want.q_end) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.s_start, want.s_start) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.s_end, want.s_end) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.identities, want.identities) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.align_len, want.align_len) << isa_name(isa) << " iter " << iter;
      EXPECT_EQ(got.gaps, want.gaps) << isa_name(isa) << " iter " << iter;
      ASSERT_EQ(got.ops.size(), want.ops.size()) << isa_name(isa) << " iter " << iter;
      for (std::size_t i = 0; i < want.ops.size(); ++i) {
        EXPECT_EQ(got.ops[i].type, want.ops[i].type) << isa_name(isa) << " op " << i;
        EXPECT_EQ(got.ops[i].len, want.ops[i].len) << isa_name(isa) << " op " << i;
      }
    }
  }
}

}  // namespace
}  // namespace mrbio::simd
