// Runtime ISA dispatch: name round-trips, precedence of the explicit
// pin over the environment default, and sanity of the calibration timer.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/error.hpp"
#include "simd/simd.hpp"

namespace mrbio::simd {
namespace {

/// Restores the session default afterwards so tests don't leak a pin.
struct IsaPinGuard {
  ~IsaPinGuard() { clear_isa_override(); }
};

TEST(SimdDispatch, NamesRoundTrip) {
  for (Isa isa : {Isa::Scalar, Isa::Sse41, Isa::Avx2}) {
    EXPECT_EQ(parse_isa(isa_name(isa)), isa);
  }
  EXPECT_STREQ(isa_name(Isa::Scalar), "scalar");
  EXPECT_STREQ(isa_name(Isa::Sse41), "sse4.1");
  EXPECT_STREQ(isa_name(Isa::Avx2), "avx2");
}

TEST(SimdDispatch, ParseAcceptsAliasesAndCase) {
  EXPECT_EQ(parse_isa("sse"), Isa::Sse41);
  EXPECT_EQ(parse_isa("sse41"), Isa::Sse41);
  EXPECT_EQ(parse_isa("SSE4.1"), Isa::Sse41);
  EXPECT_EQ(parse_isa("AVX2"), Isa::Avx2);
  EXPECT_EQ(parse_isa("Scalar"), Isa::Scalar);
  EXPECT_EQ(parse_isa("auto"), detected_isa());
}

TEST(SimdDispatch, ParseRejectsUnknown) {
  EXPECT_THROW(parse_isa("avx512"), InputError);
  EXPECT_THROW(parse_isa(""), InputError);
  EXPECT_THROW(parse_isa("fastest"), InputError);
}

TEST(SimdDispatch, ScalarAlwaysRunnable) {
  EXPECT_TRUE(isa_compiled(Isa::Scalar));
  EXPECT_TRUE(isa_runnable(Isa::Scalar));
  const std::vector<Isa> isas = runnable_isas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), Isa::Scalar);
  EXPECT_TRUE(std::is_sorted(isas.begin(), isas.end()));
  for (Isa isa : isas) {
    EXPECT_TRUE(isa_compiled(isa));
    EXPECT_TRUE(isa_runnable(isa));
  }
  EXPECT_TRUE(isa_runnable(detected_isa()));
}

TEST(SimdDispatch, KernelTablesAreComplete) {
  for (Isa isa : runnable_isas()) {
    const Kernels& k = kernels(isa);
    EXPECT_NE(k.diag_scan, nullptr) << isa_name(isa);
    EXPECT_NE(k.gapped_row_prep, nullptr) << isa_name(isa);
    EXPECT_NE(k.prot_words, nullptr) << isa_name(isa);
    EXPECT_NE(k.dna_words, nullptr) << isa_name(isa);
    EXPECT_NE(k.dist2_f32, nullptr) << isa_name(isa);
    EXPECT_NE(k.scaled_accum_f32, nullptr) << isa_name(isa);
    EXPECT_NE(k.online_update_f32, nullptr) << isa_name(isa);
    EXPECT_NE(k.add_f32, nullptr) << isa_name(isa);
    EXPECT_NE(k.scale_assign_f32, nullptr) << isa_name(isa);
  }
}

TEST(SimdDispatch, ExplicitPinWinsAndClears) {
  IsaPinGuard guard;
  const Isa session_default = active_isa();
  for (Isa isa : runnable_isas()) {
    set_isa(isa);
    EXPECT_EQ(active_isa(), isa);
    EXPECT_EQ(&kernels(), &kernels(isa));
  }
  clear_isa_override();
  EXPECT_EQ(active_isa(), session_default);
}

TEST(SimdDispatch, ResolveDefaultMapsEnvStrings) {
  EXPECT_EQ(resolve_default(nullptr), detected_isa());
  EXPECT_EQ(resolve_default(""), detected_isa());
  EXPECT_EQ(resolve_default("scalar"), Isa::Scalar);
  EXPECT_EQ(resolve_default("auto"), detected_isa());
  EXPECT_THROW(resolve_default("turbo"), InputError);
}

TEST(SimdDispatch, UnrunnableLevelsAreRejected) {
  for (Isa isa : {Isa::Sse41, Isa::Avx2}) {
    if (isa_runnable(isa)) continue;
    IsaPinGuard guard;
    EXPECT_THROW(set_isa(isa), InputError) << isa_name(isa);
    EXPECT_THROW(kernels(isa), InputError) << isa_name(isa);
  }
}

TEST(SimdDispatch, CalibrationIsPositiveAndCached) {
  for (Isa isa : runnable_isas()) {
    const double rate = calibrated_seconds_per_cell(isa);
    EXPECT_GT(rate, 0.0) << isa_name(isa);
    EXPECT_LT(rate, 1e-3) << isa_name(isa);  // > 1 ms/cell would be absurd
    // Cached: the second call must return the identical measurement.
    EXPECT_EQ(calibrated_seconds_per_cell(isa), rate) << isa_name(isa);
  }
  EXPECT_EQ(calibrated_seconds_per_cell(),
            calibrated_seconds_per_cell(active_isa()));
}

}  // namespace
}  // namespace mrbio::simd
