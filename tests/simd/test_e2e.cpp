// End-to-end differential: full application results must be
// byte-identical across every SIMD level — through the BlastSearcher
// pipeline, through the mrblast driver on both backends and both
// schedulers, under a worker-crash fault plan, and through mrsom
// training. The SIMD level may change speed; it must never change bits.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "blast/dbformat.hpp"
#include "blast/search.hpp"
#include "blast/sequence.hpp"
#include "common/rng.hpp"
#include "fault/fault.hpp"
#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "mrsom/mrsom.hpp"
#include "rt/backend.hpp"
#include "sim/engine.hpp"
#include "simd/simd.hpp"
#include "som/som.hpp"
#include <unistd.h>

namespace mrbio::simd {
namespace {

constexpr int kRanks = 4;

struct IsaPinGuard {
  ~IsaPinGuard() { clear_isa_override(); }
};

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// BlastSearcher pipeline differential (serial, no driver)

TEST(SimdE2e, BlastSearcherHitsIdenticalAcrossIsaLevels) {
  IsaPinGuard guard;
  const auto work = std::filesystem::temp_directory_path() / ("mrbio_simd_searcher_" + std::to_string(::getpid()));
  std::filesystem::remove_all(work);
  std::filesystem::create_directories(work);

  for (const blast::SeqType type : {blast::SeqType::Dna, blast::SeqType::Protein}) {
    Rng rng(321);
    std::vector<blast::Sequence> genomes;
    const std::size_t len = type == blast::SeqType::Dna ? 1'200 : 500;
    for (int g = 0; g < 2; ++g) {
      genomes.push_back(blast::random_sequence(
          rng, "g" + std::to_string(g), len, type));
    }
    const std::string tag = type == blast::SeqType::Dna ? "dna" : "prot";
    const blast::DbInfo db =
        blast::build_db(genomes, (work / ("db_" + tag)).string(), type, 100'000);
    ASSERT_EQ(db.volume_paths.size(), 1u);
    auto volume = std::make_shared<const blast::DbVolume>(
        blast::DbVolume::load(db.volume_paths[0]));

    std::vector<blast::Sequence> queries;
    const std::size_t frag = type == blast::SeqType::Dna ? 150 : 60;
    for (const auto& piece : blast::shred({genomes[0]}, frag, frag / 2)) {
      queries.push_back(blast::mutate(rng, piece, piece.id, 0.03, type));
    }

    blast::SearchOptions options =
        type == blast::SeqType::Protein ? blast::make_protein_options()
                                        : blast::SearchOptions{};
    options.filter_low_complexity = false;

    auto run = [&](Isa isa) {
      set_isa(isa);
      blast::BlastSearcher searcher(volume, options);
      std::ostringstream out;
      for (const auto& result : searcher.search(queries)) {
        out << result.query_id << '\n';
        for (const auto& h : result.hsps) {
          out << h.subject_id << ' ' << h.raw_score << ' ' << h.evalue << ' '
              << h.q_start << '-' << h.q_end << ' ' << h.s_start << '-' << h.s_end
              << ' ' << h.identities << '/' << h.align_len << '\n';
        }
      }
      return out.str();
    };

    set_isa(Isa::Scalar);
    const std::string want = run(Isa::Scalar);
    EXPECT_FALSE(want.empty());
    for (Isa isa : runnable_isas()) {
      EXPECT_EQ(run(isa), want) << isa_name(isa) << " " << tag;
    }
  }
  std::filesystem::remove_all(work);
}

// ---------------------------------------------------------------------------
// mrblast driver: ISA x backend x scheduler x faults

class MrBlastSimdE2e : public ::testing::Test {
 protected:
  void SetUp() override {
    work_ = std::filesystem::temp_directory_path() / ("mrbio_simd_e2e_blast_" + std::to_string(::getpid()));
    std::filesystem::remove_all(work_);
    std::filesystem::create_directories(work_);

    Rng rng(4321);
    std::vector<blast::Sequence> genomes;
    for (int g = 0; g < 3; ++g) {
      genomes.push_back(blast::random_sequence(rng, "genome" + std::to_string(g),
                                               800, blast::SeqType::Dna));
    }
    db_ = blast::build_db(genomes, (work_ / "db").string(), blast::SeqType::Dna, 1'200);

    std::vector<blast::Sequence> queries;
    for (const auto& frag : blast::shred({genomes[0], genomes[1]}, 200, 150)) {
      queries.push_back(blast::mutate(rng, frag, frag.id, 0.02, blast::SeqType::Dna));
    }
    for (std::size_t i = 0; i < queries.size(); i += 4) {
      blocks_.emplace_back(
          queries.begin() + static_cast<std::ptrdiff_t>(i),
          queries.begin() + static_cast<std::ptrdiff_t>(std::min(i + 4, queries.size())));
    }
  }
  void TearDown() override { std::filesystem::remove_all(work_); }

  mrblast::RealRunConfig base_config(const std::string& tag) const {
    mrblast::RealRunConfig config;
    config.query_blocks = blocks_;
    config.partition_paths = db_.volume_paths;
    config.options.evalue_cutoff = 1e-6;
    config.options.filter_low_complexity = false;
    config.output_dir = (work_ / ("out_" + tag)).string();
    return config;
  }

  /// Runs the driver on the simulator backend; returns output files.
  std::map<std::string, std::string> run_sim(const mrblast::RealRunConfig& config,
                                             fault::Injector* injector = nullptr) {
    sim::EngineConfig ec;
    ec.nprocs = kRanks;
    ec.injector = injector;
    sim::Engine engine(ec);
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      mrblast::run_blast_mr(comm, config);
    });
    return collect(config.output_dir);
  }

  /// Runs the driver on the native multithreaded backend.
  std::map<std::string, std::string> run_native(const mrblast::RealRunConfig& config) {
    rt::LaunchConfig lc;
    lc.backend = rt::Backend::Native;
    lc.nranks = kRanks;
    rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      mrblast::run_blast_mr(comm, config);
    });
    return collect(config.output_dir);
  }

  std::map<std::string, std::string> collect(const std::string& dir) {
    std::map<std::string, std::string> files;
    for (const auto& e : std::filesystem::directory_iterator(dir)) {
      files[e.path().filename().string()] = slurp(e.path());
    }
    return files;
  }

  void expect_same(const std::map<std::string, std::string>& got,
                   const std::map<std::string, std::string>& want,
                   const std::string& label) {
    ASSERT_EQ(got.size(), want.size()) << label;
    for (const auto& [name, content] : want) {
      ASSERT_TRUE(got.count(name)) << label << " missing " << name;
      EXPECT_EQ(got.at(name), content) << label << " " << name;
    }
  }

  std::filesystem::path work_;
  blast::DbInfo db_;
  std::vector<std::vector<blast::Sequence>> blocks_;
};

TEST_F(MrBlastSimdE2e, HitFilesIdenticalAcrossIsaBackendSchedulerAndFaults) {
  IsaPinGuard guard;

  set_isa(Isa::Scalar);
  const auto baseline = run_sim(base_config("scalar_chunk"));
  ASSERT_FALSE(baseline.empty());

  for (Isa isa : runnable_isas()) {
    set_isa(isa);
    const std::string level = isa_name(isa);

    // Simulator backend, both schedulers.
    {
      auto config = base_config(level + "_chunk");
      config.scheduler = sched::Policy::Chunk;
      expect_same(run_sim(config), baseline, level + " sim/chunk");
    }
    {
      auto config = base_config(level + "_steal");
      config.scheduler = sched::Policy::Steal;
      expect_same(run_sim(config), baseline, level + " sim/steal");
    }

    // Native backend.
    {
      auto config = base_config(level + "_native");
      expect_same(run_native(config), baseline, level + " native");
    }

    // Simulator backend under a worker crash with fault tolerance on.
    {
      auto config = base_config(level + "_crash");
      config.ft.enabled = true;
      config.ft.task_timeout = 2.0;
      fault::FaultPlan plan;
      fault::CrashFault crash;
      crash.rank = 1;
      crash.task = 2;
      plan.crashes.push_back(crash);
      plan.validate(kRanks);
      fault::Injector injector(plan);
      expect_same(run_sim(config, &injector), baseline, level + " sim/crash");
    }
  }
}

// ---------------------------------------------------------------------------
// mrsom driver: ISA x backend

TEST(SimdE2e, MrSomCodebookIdenticalAcrossIsaLevelsAndBackends) {
  IsaPinGuard guard;
  Rng data_rng(77);
  Matrix data(80, 6);
  for (std::size_t r = 0; r < data.rows(); ++r)
    for (std::size_t c = 0; c < data.cols(); ++c)
      data(r, c) = static_cast<float>(data_rng.uniform());
  som::Codebook initial(som::SomGrid{5, 5}, data.cols());
  initial.init_pca(data.view());

  mrsom::ParallelSomConfig config;
  config.params.epochs = 3;
  config.block_vectors = 10;
  config.deterministic_reduce = true;

  auto train_sim = [&](Isa isa) {
    set_isa(isa);
    sim::EngineConfig ec;
    ec.nprocs = kRanks;
    sim::Engine engine(ec);
    som::Codebook cb;
    engine.run([&](sim::Process& p) {
      mpi::Comm comm(p);
      som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, config);
      if (p.rank() == 0) cb = std::move(trained);
    });
    return cb;
  };
  auto train_native = [&](Isa isa) {
    set_isa(isa);
    rt::LaunchConfig lc;
    lc.backend = rt::Backend::Native;
    lc.nranks = kRanks;
    som::Codebook cb;
    rt::launch(lc, [&](rt::Rank& rank) {
      mpi::Comm comm(rank);
      som::Codebook trained = mrsom::train_som_mr(comm, data.view(), initial, config);
      if (rank.rank() == 0) cb = std::move(trained);
    });
    return cb;
  };

  const som::Codebook want = train_sim(Isa::Scalar);
  const std::size_t bytes =
      want.weights().rows() * want.weights().cols() * sizeof(float);
  ASSERT_GT(bytes, 0u);
  for (Isa isa : runnable_isas()) {
    const som::Codebook sim_cb = train_sim(isa);
    EXPECT_EQ(std::memcmp(sim_cb.weights().row(0).data(), want.weights().row(0).data(),
                          bytes),
              0)
        << isa_name(isa) << " sim";
    const som::Codebook native_cb = train_native(isa);
    EXPECT_EQ(std::memcmp(native_cb.weights().row(0).data(),
                          want.weights().row(0).data(), bytes),
              0)
        << isa_name(isa) << " native";
  }
}

}  // namespace
}  // namespace mrbio::simd
