// Tests for the MPI-flavoured layer: typed p2p, collectives on binomial
// trees, phantom (timing-only) collectives, and cost-model sanity.
#include "mpi/comm.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "common/error.hpp"
#include "sim/engine.hpp"

namespace mrbio::mpi {
namespace {

sim::EngineConfig config(int n) {
  sim::EngineConfig c;
  c.nprocs = n;
  c.stack_bytes = 256 * 1024;
  return c;
}

/// Runs `body` on an n-rank simulated machine and returns the elapsed
/// virtual time.
double run_on(int n, const std::function<void(Comm&)>& body,
              sim::NetworkModel net = sim::NetworkModel{}) {
  sim::EngineConfig c = config(n);
  c.net = net;
  sim::Engine e(c);
  e.run([&](sim::Process& p) {
    Comm comm(p);
    body(comm);
  });
  return e.elapsed();
}

TEST(Comm, SendRecvValueRoundTrip) {
  run_on(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_value(1, 5, 3.25);
    } else {
      int src = -1;
      const double v = c.recv_value<double>(kAnySource, kAnyTag, &src);
      EXPECT_DOUBLE_EQ(v, 3.25);
      EXPECT_EQ(src, 0);
    }
  });
}

TEST(Comm, SendSpanRecvVector) {
  run_on(2, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<std::int64_t> data{1, 2, 3, 4};
      c.send_span<std::int64_t>(1, 0, data);
    } else {
      const auto got = c.recv_vector<std::int64_t>(0, 0);
      EXPECT_EQ(got, (std::vector<std::int64_t>{1, 2, 3, 4}));
    }
  });
}

TEST(Comm, UserTagAboveLimitRejected) {
  EXPECT_THROW(run_on(2,
                      [](Comm& c) {
                        if (c.rank() == 0) c.send_bytes(1, kUserTagLimit, {});
                        else c.recv_bytes();
                      }),
               InputError);
}

class CommCollectiveP : public ::testing::TestWithParam<int> {};

TEST_P(CommCollectiveP, BcastDeliversToAllRanks) {
  const int n = GetParam();
  for (int root = 0; root < n; root += std::max(1, n / 3)) {
    run_on(n, [&](Comm& c) {
      std::vector<std::int32_t> data;
      if (c.rank() == root) data = {10, 20, 30};
      c.bcast(data, root);
      EXPECT_EQ(data, (std::vector<std::int32_t>{10, 20, 30}))
          << "rank " << c.rank() << " root " << root;
    });
  }
}

TEST_P(CommCollectiveP, ReduceSumsAtRoot) {
  const int n = GetParam();
  run_on(n, [&](Comm& c) {
    std::vector<double> data{static_cast<double>(c.rank()), 1.0};
    c.reduce(data, ReduceOp::Sum, 0);
    if (c.rank() == 0) {
      EXPECT_DOUBLE_EQ(data[0], n * (n - 1) / 2.0);
      EXPECT_DOUBLE_EQ(data[1], static_cast<double>(n));
    }
  });
}

TEST_P(CommCollectiveP, AllreduceMaxMinEverywhere) {
  const int n = GetParam();
  run_on(n, [&](Comm& c) {
    std::vector<std::int64_t> mx{c.rank()};
    c.allreduce(mx, ReduceOp::Max);
    EXPECT_EQ(mx[0], n - 1);
    std::vector<std::int64_t> mn{c.rank() + 5};
    c.allreduce(mn, ReduceOp::Min);
    EXPECT_EQ(mn[0], 5);
  });
}

TEST_P(CommCollectiveP, GatherValueCollectsRankOrder) {
  const int n = GetParam();
  run_on(n, [&](Comm& c) {
    auto all = c.gather_value<std::int32_t>(c.rank() * 10, 0);
    if (c.rank() == 0) {
      ASSERT_EQ(all.size(), static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i * 10);
    } else {
      EXPECT_TRUE(all.empty());
    }
  });
}

TEST_P(CommCollectiveP, AlltoallvExchangesPersonalizedBuffers) {
  const int n = GetParam();
  run_on(n, [&](Comm& c) {
    std::vector<std::vector<std::byte>> send(static_cast<std::size_t>(n));
    for (int d = 0; d < n; ++d) {
      // rank r sends d bytes of value r to rank d
      send[static_cast<std::size_t>(d)].assign(static_cast<std::size_t>(d),
                                               static_cast<std::byte>(c.rank()));
    }
    auto got = c.alltoallv(std::move(send));
    ASSERT_EQ(got.size(), static_cast<std::size_t>(n));
    for (int s = 0; s < n; ++s) {
      const auto& buf = got[static_cast<std::size_t>(s)];
      EXPECT_EQ(buf.size(), static_cast<std::size_t>(c.rank()));
      for (std::byte b : buf) EXPECT_EQ(static_cast<int>(b), s);
    }
  });
}

TEST_P(CommCollectiveP, BarrierSynchronizesClocks) {
  const int n = GetParam();
  run_on(n, [&](Comm& c) {
    // Rank 0 computes a long time; after the barrier everyone must be at
    // least that far along.
    if (c.rank() == 0) c.compute(100.0);
    c.barrier();
    EXPECT_GE(c.now(), 100.0);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CommCollectiveP, ::testing::Values(1, 2, 3, 4, 7, 8, 16, 33));

TEST(Comm, BcastCostGrowsLogarithmically) {
  // With pure-latency network, a binomial bcast of p ranks costs
  // ceil(log2(p)) * latency (plus overheads we zero out).
  sim::NetworkModel net;
  net.latency = 1.0;
  net.byte_time = 0.0;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  for (int p : {2, 4, 8, 16, 32}) {
    const double t = run_on(
        p, [](Comm& c) { c.bcast_phantom(0, 0); }, net);
    EXPECT_DOUBLE_EQ(t, std::ceil(std::log2(p))) << "p=" << p;
  }
}

TEST(Comm, PhantomBcastTimingMatchesRealBcastOfSameSize) {
  sim::NetworkModel net;  // defaults, nonzero everywhere
  const std::size_t bytes = 4096;
  const double t_phantom = run_on(
      8, [&](Comm& c) { c.bcast_phantom(bytes, 0); }, net);
  const double t_real = run_on(
      8,
      [&](Comm& c) {
        std::vector<std::byte> data;
        if (c.rank() == 0) data.assign(bytes, std::byte{1});
        c.bcast_bytes(data, 0);
        EXPECT_EQ(data.size(), bytes);
      },
      net);
  EXPECT_NEAR(t_phantom, t_real, 1e-12);
}

TEST(Comm, AllreducePhantomChargesCombineTime) {
  sim::NetworkModel net;
  net.latency = 0.0;
  net.byte_time = 0.0;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  // 2 ranks: one combine on the reduce path, zero-cost bcast back.
  const double t = run_on(
      2, [](Comm& c) { c.allreduce_phantom(0, 3.5); }, net);
  EXPECT_DOUBLE_EQ(t, 3.5);
}

TEST(Comm, AllreduceScalarConvenience) {
  run_on(5, [](Comm& c) {
    const double sum = c.allreduce_scalar(static_cast<double>(c.rank() + 1), ReduceOp::Sum);
    EXPECT_DOUBLE_EQ(sum, 15.0);
    const std::uint64_t mx =
        c.allreduce_scalar(static_cast<std::uint64_t>(c.rank()), ReduceOp::Max);
    EXPECT_EQ(mx, 4u);
  });
}

TEST(Comm, SuccessiveCollectivesDoNotInterfere) {
  run_on(6, [](Comm& c) {
    for (int iter = 0; iter < 5; ++iter) {
      std::vector<std::int32_t> data;
      if (c.rank() == 0) data = {iter};
      c.bcast(data, 0);
      ASSERT_EQ(data.size(), 1u);
      EXPECT_EQ(data[0], iter);
      std::vector<std::int32_t> acc{1};
      c.allreduce(acc, ReduceOp::Sum);
      EXPECT_EQ(acc[0], 6);
    }
  });
}

TEST(Comm, MixedSizeBcastsKeepOrderOnFifoChannels) {
  // A big bcast followed by a tiny one: FIFO channels must prevent the tiny
  // payload from overtaking and being matched as the first bcast.
  run_on(4, [](Comm& c) {
    std::vector<std::byte> big;
    std::vector<std::byte> small;
    if (c.rank() == 0) {
      big.assign(1 << 20, std::byte{0xAA});
      small.assign(4, std::byte{0xBB});
    }
    c.bcast_bytes(big, 0);
    c.bcast_bytes(small, 0);
    EXPECT_EQ(big.size(), 1u << 20);
    EXPECT_EQ(small.size(), 4u);
    EXPECT_EQ(big.front(), std::byte{0xAA});
    EXPECT_EQ(small.front(), std::byte{0xBB});
  });
}

}  // namespace
}  // namespace mrbio::mpi
