// Property tests of the communication cost model: the virtual-time cost
// of each collective must follow its algorithmic formula under degenerate
// network models (latency-only / bandwidth-only), across rank counts.
#include <gtest/gtest.h>

#include <cmath>

#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace mrbio::mpi {
namespace {

double run_timed(int n, sim::NetworkModel net, const std::function<void(Comm&)>& body) {
  sim::EngineConfig c;
  c.nprocs = n;
  c.net = net;
  c.stack_bytes = 256 * 1024;
  sim::Engine e(c);
  e.run([&](sim::Process& p) {
    Comm comm(p);
    body(comm);
  });
  return e.elapsed();
}

sim::NetworkModel latency_only(double alpha) {
  sim::NetworkModel net;
  net.latency = alpha;
  net.byte_time = 0.0;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  return net;
}

sim::NetworkModel bandwidth_only(double beta) {
  sim::NetworkModel net;
  net.latency = 0.0;
  net.byte_time = beta;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  return net;
}

class CostP : public ::testing::TestWithParam<int> {};

TEST_P(CostP, BarrierCostsTwoTreeDepths) {
  const int p = GetParam();
  const double t = run_timed(p, latency_only(1.0), [](Comm& c) { c.barrier(); });
  // Reduce-tree up + bcast-tree down: 2 * ceil(log2 p) latencies.
  EXPECT_DOUBLE_EQ(t, 2.0 * std::ceil(std::log2(p)));
}

TEST_P(CostP, ReduceCostsOneTreeDepth) {
  const int p = GetParam();
  const double t = run_timed(p, latency_only(1.0),
                             [](Comm& c) { c.reduce_phantom(0, 0); });
  EXPECT_DOUBLE_EQ(t, std::ceil(std::log2(p)));
}

TEST_P(CostP, BinomialBcastBandwidthScalesWithDepth) {
  const int p = GetParam();
  const std::uint64_t bytes = 1'000'000;
  const double t = run_timed(p, bandwidth_only(1e-9),
                             [&](Comm& c) { c.bcast_phantom(bytes, 0); });
  // Each of the ceil(log2 p) levels forwards the full message.
  EXPECT_NEAR(t, std::ceil(std::log2(p)) * 1e-9 * static_cast<double>(bytes), 1e-12);
}

TEST_P(CostP, PipelinedBcastBandwidthIsDepthFree) {
  const int p = GetParam();
  const std::uint64_t bytes = 1'000'000;
  const double t = run_timed(p, bandwidth_only(1e-9),
                             [&](Comm& c) { c.bcast_phantom_pipelined(bytes, 0); });
  const double expected = 2.0 * (p - 1.0) / p * 1e-9 * static_cast<double>(bytes);
  EXPECT_NEAR(t, expected, 1e-12);
  // The whole point: for large p this is ~2x the message time, far below
  // the binomial tree's log2(p) x message time.
  if (p >= 8) {
    EXPECT_LT(t, std::ceil(std::log2(p)) * 1e-9 * static_cast<double>(bytes) / 1.4);
  }
}

TEST_P(CostP, AlltoallvLatencyScalesWithPartnerCount) {
  const int p = GetParam();
  if (p < 2) return;
  const double t = run_timed(p, latency_only(1.0), [&](Comm& c) {
    std::vector<std::vector<std::byte>> bufs(static_cast<std::size_t>(c.size()));
    c.alltoallv(std::move(bufs));
  });
  // Every rank sends p-1 messages; sends are eager (latency overlaps), so
  // the critical path is bounded by the slowest receive chain, at least
  // one latency and at most p-1.
  EXPECT_GE(t, 1.0);
  EXPECT_LE(t, static_cast<double>(p - 1) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CostP, ::testing::Values(2, 4, 8, 16, 64, 256));

TEST(CostModel, SendOverheadSerializesBackToBackSends) {
  sim::NetworkModel net = latency_only(0.0);
  net.send_overhead = 0.5;
  const double t = run_timed(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 4; ++i) c.send_bytes(1, 0, {});
    } else {
      for (int i = 0; i < 4; ++i) c.recv_bytes();
    }
  });
  EXPECT_DOUBLE_EQ(t, 2.0);  // 4 sends x 0.5 s CPU overhead
}

TEST(CostModel, RecvOverheadChargesPerMessage) {
  sim::NetworkModel net = latency_only(0.0);
  net.recv_overhead = 0.25;
  const double t = run_timed(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      for (int i = 0; i < 8; ++i) c.send_bytes(1, 0, {});
    } else {
      for (int i = 0; i < 8; ++i) c.recv_bytes();
    }
  });
  EXPECT_DOUBLE_EQ(t, 2.0);  // 8 receives x 0.25 s
}

TEST(CostModel, MessageCostIsAlphaPlusBetaBytes) {
  sim::NetworkModel net;
  net.latency = 3.0;
  net.byte_time = 0.01;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  const double t = run_timed(2, net, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_bytes(1, 0, std::vector<std::byte>(500));
    } else {
      c.recv_bytes();
    }
  });
  EXPECT_DOUBLE_EQ(t, 3.0 + 0.01 * 500.0);
}

}  // namespace
}  // namespace mrbio::mpi
