// Tests for nonblocking operations (isend/irecv/test/wait/waitall) and the
// allgather/scatter collectives.
#include <gtest/gtest.h>

#include <string>

#include "common/error.hpp"
#include "mpi/comm.hpp"
#include "sim/engine.hpp"

namespace mrbio::mpi {
namespace {

void run_on(int n, const std::function<void(Comm&)>& body,
            sim::NetworkModel net = sim::NetworkModel{}) {
  sim::EngineConfig c;
  c.nprocs = n;
  c.net = net;
  c.stack_bytes = 256 * 1024;
  sim::Engine e(c);
  e.run([&](sim::Process& p) {
    Comm comm(p);
    body(comm);
  });
}

std::vector<std::byte> bytes_of(const std::string& s) {
  return {reinterpret_cast<const std::byte*>(s.data()),
          reinterpret_cast<const std::byte*>(s.data()) + s.size()};
}

std::string str_of(const sim::Message& m) {
  return {reinterpret_cast<const char*>(m.payload.data()), m.payload.size()};
}

TEST(Nonblocking, IsendCompletesImmediately) {
  run_on(2, [](Comm& c) {
    if (c.rank() == 0) {
      auto req = c.isend(1, 1, bytes_of("hello"));
      EXPECT_TRUE(req.completed());
      EXPECT_TRUE(req.is_send());
      c.wait(req);  // no-op
    } else {
      EXPECT_EQ(str_of(c.recv_bytes(0, 1)), "hello");
    }
  });
}

TEST(Nonblocking, IrecvWaitReceivesMessage) {
  run_on(2, [](Comm& c) {
    if (c.rank() == 0) {
      c.send_bytes(1, 7, bytes_of("payload"));
    } else {
      auto req = c.irecv(0, 7);
      EXPECT_FALSE(req.completed());
      const sim::Message m = c.wait(req);
      EXPECT_EQ(str_of(m), "payload");
      EXPECT_TRUE(req.completed());
      // wait() is idempotent.
      EXPECT_EQ(str_of(c.wait(req)), "payload");
    }
  });
}

TEST(Nonblocking, TestPollsWithoutBlocking) {
  sim::NetworkModel net;
  net.latency = 1.0;
  run_on(2,
         [](Comm& c) {
           if (c.rank() == 0) {
             c.send_bytes(1, 2, bytes_of("late"));
           } else {
             auto req = c.irecv(0, 2);
             EXPECT_FALSE(c.test(req));  // nothing can have arrived at t=0
             c.compute(5.0);             // move past the arrival
             EXPECT_TRUE(c.test(req));
             EXPECT_EQ(str_of(c.wait(req)), "late");
           }
         },
         net);
}

TEST(Nonblocking, WaitallDrainsOutOfOrderArrivals) {
  run_on(4, [](Comm& c) {
    if (c.rank() == 0) {
      std::vector<Comm::Request> reqs;
      for (int src = 1; src < 4; ++src) reqs.push_back(c.irecv(src, 3));
      c.waitall(reqs);
      for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(str_of(c.wait(reqs[static_cast<std::size_t>(i)])),
                  "from" + std::to_string(i + 1));
      }
    } else {
      // Later ranks compute longer, so messages arrive in reverse order of
      // the irecv posting order.
      c.compute(0.01 * (4 - c.rank()));
      c.send_bytes(0, 3, bytes_of("from" + std::to_string(c.rank())));
    }
  });
}

TEST(Nonblocking, WildcardIrecvMatchesEarliestArrival) {
  sim::NetworkModel net;
  net.latency = 1.0;
  net.send_overhead = 0.0;
  net.recv_overhead = 0.0;
  run_on(3,
         [](Comm& c) {
           if (c.rank() == 0) {
             auto req = c.irecv();
             const sim::Message m = c.wait(req);
             EXPECT_EQ(m.source, 2);  // rank 2 sent earlier
             c.recv_bytes();          // drain the other
           } else {
             c.compute(c.rank() == 1 ? 3.0 : 1.0);
             c.send_bytes(0, 0, bytes_of("x"));
           }
         },
         net);
}

TEST(Collectives, AllgatherEveryRankSeesAll) {
  run_on(5, [](Comm& c) {
    const auto all = c.allgather_bytes(bytes_of("rank" + std::to_string(c.rank())));
    ASSERT_EQ(all.size(), 5u);
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(all[static_cast<std::size_t>(i)].data()),
                            all[static_cast<std::size_t>(i)].size()),
                "rank" + std::to_string(i));
    }
  });
}

TEST(Collectives, AllgatherSingleRank) {
  run_on(1, [](Comm& c) {
    const auto all = c.allgather_bytes(bytes_of("solo"));
    ASSERT_EQ(all.size(), 1u);
  });
}

TEST(Collectives, ScatterDistributesPersonalizedBuffers) {
  for (const int root : {0, 2}) {
    run_on(4, [&](Comm& c) {
      std::vector<std::vector<std::byte>> bufs;
      if (c.rank() == root) {
        for (int i = 0; i < 4; ++i) bufs.push_back(bytes_of("to" + std::to_string(i)));
      }
      const auto mine = c.scatter_bytes(std::move(bufs), root);
      EXPECT_EQ(std::string(reinterpret_cast<const char*>(mine.data()), mine.size()),
                "to" + std::to_string(c.rank()));
    });
  }
}

TEST(Collectives, ScatterWrongCountRejected) {
  EXPECT_THROW(run_on(3,
                      [](Comm& c) {
                        std::vector<std::vector<std::byte>> bufs(2);  // need 3
                        if (c.rank() == 0) {
                          c.scatter_bytes(std::move(bufs), 0);
                        } else {
                          c.recv_bytes();
                        }
                      }),
               InputError);
}

}  // namespace
}  // namespace mrbio::mpi
