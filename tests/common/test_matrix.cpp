// Tests for the dense matrix and its view type.
#include "common/matrix.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrbio {
namespace {

TEST(Matrix, ConstructAndIndex) {
  Matrix m(2, 3, 1.0f);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_FLOAT_EQ(m(1, 2), 1.0f);
  m(1, 2) = 5.0f;
  EXPECT_FLOAT_EQ(m(1, 2), 5.0f);
}

TEST(Matrix, RowSpanIsWritable) {
  Matrix m(3, 2);
  auto r = m.row(1);
  r[0] = 7.0f;
  r[1] = 8.0f;
  EXPECT_FLOAT_EQ(m(1, 0), 7.0f);
  EXPECT_FLOAT_EQ(m(1, 1), 8.0f);
  EXPECT_FLOAT_EQ(m(0, 0), 0.0f);
}

TEST(Matrix, FillOverwritesAll) {
  Matrix m(2, 2, 1.0f);
  m.fill(3.0f);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 2; ++c) EXPECT_FLOAT_EQ(m(r, c), 3.0f);
}

TEST(Matrix, OutOfRangeThrows) {
  Matrix m(2, 2);
  EXPECT_THROW(m(2, 0), LogicError);
  EXPECT_THROW(m(0, 2), LogicError);
  EXPECT_THROW(m.row(5), LogicError);
}

TEST(MatrixView, ViewSharesStorage) {
  Matrix m(2, 2);
  m(0, 1) = 4.0f;
  MatrixView v = m.view();
  EXPECT_FLOAT_EQ(v(0, 1), 4.0f);
  EXPECT_EQ(v.rows(), 2u);
}

TEST(MatrixView, RowsSlice) {
  Matrix m(4, 2);
  for (std::size_t r = 0; r < 4; ++r) m(r, 0) = static_cast<float>(r);
  MatrixView slice = m.view().rows_slice(1, 2);
  EXPECT_EQ(slice.rows(), 2u);
  EXPECT_FLOAT_EQ(slice(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(slice(1, 0), 2.0f);
  EXPECT_THROW(m.view().rows_slice(3, 2), LogicError);
}

TEST(MatrixView, EmptyDefault) {
  MatrixView v;
  EXPECT_TRUE(v.empty());
  Matrix m;
  EXPECT_TRUE(m.empty());
}

}  // namespace
}  // namespace mrbio
