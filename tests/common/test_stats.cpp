// Tests for running statistics and percentile helpers.
#include "common/stats.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrbio {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleSample) {
  RunningStats s;
  s.add(4.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 4.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(RunningStats, KnownMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, NegativeValues) {
  RunningStats s;
  s.add(-5.0);
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Percentile, MedianOfOddSet) {
  EXPECT_DOUBLE_EQ(percentile({3.0, 1.0, 2.0}, 0.5), 2.0);
}

TEST(Percentile, InterpolatesBetweenSamples) {
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 0.25), 2.5);
}

TEST(Percentile, Extremes) {
  std::vector<double> v{5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, SingleSample) {
  EXPECT_DOUBLE_EQ(percentile({7.0}, 0.99), 7.0);
}

TEST(Percentile, EmptyThrows) {
  EXPECT_THROW(percentile({}, 0.5), InputError);
}

TEST(Percentile, OutOfRangeQThrows) {
  EXPECT_THROW(percentile({1.0}, 1.5), InputError);
  EXPECT_THROW(percentile({1.0}, -0.1), InputError);
}

}  // namespace
}  // namespace mrbio
