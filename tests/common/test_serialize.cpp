// Round-trip tests for the byte serialization layer.
#include "common/serialize.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace mrbio {
namespace {

TEST(Serialize, PodRoundTrip) {
  ByteWriter w;
  w.put<std::int32_t>(-7);
  w.put<double>(2.5);
  w.put<std::uint8_t>(255);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(r.get<double>(), 2.5);
  EXPECT_EQ(r.get<std::uint8_t>(), 255);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, StringRoundTrip) {
  ByteWriter w;
  w.put_string("hello");
  w.put_string("");
  w.put_string(std::string("with\0null", 9));
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_string(), "hello");
  EXPECT_EQ(r.get_string(), "");
  EXPECT_EQ(r.get_string(), std::string("with\0null", 9));
  EXPECT_TRUE(r.done());
}

TEST(Serialize, VectorRoundTrip) {
  ByteWriter w;
  w.put_vector(std::vector<float>{1.0f, -2.0f, 3.5f});
  w.put_vector(std::vector<std::uint64_t>{});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_vector<float>(), (std::vector<float>{1.0f, -2.0f, 3.5f}));
  EXPECT_TRUE(r.get_vector<std::uint64_t>().empty());
}

TEST(Serialize, BytesRoundTrip) {
  ByteWriter w;
  std::vector<std::byte> blob{std::byte{1}, std::byte{2}};
  w.put_bytes(blob);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get_bytes(), blob);
}

TEST(Serialize, MixedSequencePreservesOrder) {
  ByteWriter w;
  w.put<std::uint16_t>(10);
  w.put_string("key");
  w.put_vector(std::vector<std::int32_t>{4, 5});
  ByteReader r(w.bytes());
  EXPECT_EQ(r.get<std::uint16_t>(), 10);
  EXPECT_EQ(r.get_string(), "key");
  EXPECT_EQ(r.get_vector<std::int32_t>(), (std::vector<std::int32_t>{4, 5}));
}

TEST(Serialize, UnderflowThrows) {
  ByteWriter w;
  w.put<std::int32_t>(1);
  ByteReader r(w.bytes());
  r.get<std::int32_t>();
  EXPECT_THROW(r.get<std::int32_t>(), LogicError);
}

TEST(Serialize, TruncatedStringThrows) {
  ByteWriter w;
  w.put<std::uint64_t>(100);  // claims 100 bytes follow, none do
  ByteReader r(w.bytes());
  EXPECT_THROW(r.get_string(), LogicError);
}

TEST(Serialize, RemainingTracksConsumption) {
  ByteWriter w;
  w.put<std::uint64_t>(1);
  w.put<std::uint64_t>(2);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 16u);
  r.get<std::uint64_t>();
  EXPECT_EQ(r.remaining(), 8u);
  r.get<std::uint64_t>();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.done());
}

TEST(Serialize, TakeMovesBufferAndClears) {
  ByteWriter w;
  w.put<std::int32_t>(5);
  auto buf = w.take();
  EXPECT_EQ(buf.size(), 4u);
  EXPECT_EQ(w.size(), 0u);
}

}  // namespace
}  // namespace mrbio
