// Tests for the command-line option parser.
#include "common/options.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"

namespace mrbio {
namespace {

Options make_opts() {
  Options o("test program");
  o.add("cores", "32", "number of cores");
  o.add("rate", "1.5", "a rate");
  o.add("name", "default", "a name");
  o.add_flag("verbose", "be chatty");
  return o;
}

int parse(Options& o, std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return o.parse(static_cast<int>(argv.size()), argv.data()) ? 1 : 0;
}

TEST(Options, DefaultsApply) {
  Options o = make_opts();
  parse(o, {});
  EXPECT_EQ(o.integer("cores"), 32);
  EXPECT_DOUBLE_EQ(o.real("rate"), 1.5);
  EXPECT_EQ(o.str("name"), "default");
  EXPECT_FALSE(o.flag("verbose"));
}

TEST(Options, SpaceSeparatedValues) {
  Options o = make_opts();
  parse(o, {"--cores", "128", "--name", "blast"});
  EXPECT_EQ(o.integer("cores"), 128);
  EXPECT_EQ(o.str("name"), "blast");
}

TEST(Options, EqualsSeparatedValues) {
  Options o = make_opts();
  parse(o, {"--cores=64", "--rate=0.25"});
  EXPECT_EQ(o.integer("cores"), 64);
  EXPECT_DOUBLE_EQ(o.real("rate"), 0.25);
}

TEST(Options, FlagForms) {
  Options o = make_opts();
  parse(o, {"--verbose"});
  EXPECT_TRUE(o.flag("verbose"));
  Options o2 = make_opts();
  parse(o2, {"--verbose=false"});
  EXPECT_FALSE(o2.flag("verbose"));
}

TEST(Options, PositionalArgumentsCollected) {
  Options o = make_opts();
  parse(o, {"input.fa", "--cores", "8", "db.fa"});
  EXPECT_EQ(o.positional(), (std::vector<std::string>{"input.fa", "db.fa"}));
}

TEST(Options, UnknownOptionThrows) {
  Options o = make_opts();
  EXPECT_THROW(parse(o, {"--bogus", "1"}), InputError);
}

TEST(Options, MissingValueThrows) {
  Options o = make_opts();
  EXPECT_THROW(parse(o, {"--cores"}), InputError);
}

TEST(Options, NonNumericIntegerThrows) {
  Options o = make_opts();
  parse(o, {"--cores", "abc"});
  EXPECT_THROW(o.integer("cores"), InputError);
}

TEST(Options, HelpReturnsFalse) {
  Options o = make_opts();
  EXPECT_EQ(parse(o, {"--help"}), 0);
}

TEST(Options, UsageListsOptions) {
  Options o = make_opts();
  const std::string u = o.usage();
  EXPECT_NE(u.find("--cores"), std::string::npos);
  EXPECT_NE(u.find("--verbose"), std::string::npos);
  EXPECT_NE(u.find("default: 32"), std::string::npos);
}

}  // namespace
}  // namespace mrbio
