// Tests for the deterministic PRNG: reproducibility, ranges, and rough
// distribution properties of the samplers.
#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include "common/stats.hpp"

namespace mrbio {
namespace {

TEST(Rng, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() != b()) ++differing;
  }
  EXPECT_GT(differing, 90);
}

TEST(Rng, ReseedRestartsStream) {
  Rng a(77);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 10; ++i) first.push_back(a());
  a.reseed(77);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a(), first[static_cast<std::size_t>(i)]);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(6);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform(-3.0, 7.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 7.0);
  }
}

TEST(Rng, BelowCoversFullRangeWithoutBias) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  const int draws = 100000;
  for (int i = 0; i < draws; ++i) counts[rng.below(10)]++;
  for (int c : counts) {
    EXPECT_GT(c, draws / 10 - draws / 50);
    EXPECT_LT(c, draws / 10 + draws / 50);
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng rng(8);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Rng, BelowZeroThrows) {
  Rng rng(9);
  EXPECT_THROW(rng.below(0), LogicError);
}

TEST(Rng, NormalMomentsAreClose) {
  Rng rng(10);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.normal(2.0, 3.0));
  EXPECT_NEAR(s.mean(), 2.0, 0.1);
  EXPECT_NEAR(s.stddev(), 3.0, 0.1);
}

TEST(Rng, LognormalIsPositiveWithHeavyTail) {
  Rng rng(11);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) {
    const double x = rng.lognormal(0.0, 1.0);
    EXPECT_GT(x, 0.0);
    s.add(x);
  }
  // E[lognormal(0,1)] = exp(0.5) ~ 1.6487; heavy tail means max >> mean.
  EXPECT_NEAR(s.mean(), std::exp(0.5), 0.1);
  EXPECT_GT(s.max(), 10.0 * s.mean());
}

TEST(Rng, ExponentialMeanIsInverseRate) {
  Rng rng(12);
  RunningStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(4.0));
  EXPECT_NEAR(s.mean(), 0.25, 0.01);
}

TEST(Rng, SplitProducesDecorrelatedChild) {
  Rng parent(13);
  Rng child = parent.split();
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) {
    seen.insert(parent());
    seen.insert(child());
  }
  EXPECT_EQ(seen.size(), 200u);  // no collisions between the streams
}

TEST(Rng, Mix64IsDeterministicAndSpreads) {
  EXPECT_EQ(mix64(42), mix64(42));
  EXPECT_NE(mix64(42), mix64(43));
  // Low bits of sequential inputs should decorrelate.
  int bit_flips = 0;
  for (std::uint64_t i = 0; i < 64; ++i) {
    bit_flips += ((mix64(i) ^ mix64(i + 1)) & 1) != 0 ? 1 : 0;
  }
  EXPECT_GT(bit_flips, 16);
}

}  // namespace
}  // namespace mrbio
