// Tests for memory-mapped file access and PGM/PPM image output.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/error.hpp"
#include "common/image.hpp"
#include "common/mmap_file.hpp"

namespace mrbio {
namespace {

class TempDir : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("mrbio_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }
  std::string path(const std::string& name) const { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

using MmapFileTest = TempDir;
using ImageTest = TempDir;

TEST_F(MmapFileTest, RoundTripMatrix) {
  Matrix m(3, 4);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = static_cast<float>(r * 10 + c);
  write_raw_matrix(path("m.raw"), m.view());

  MmapFile f(path("m.raw"));
  ASSERT_TRUE(f.is_open());
  EXPECT_EQ(f.size(), 3u * 4u * sizeof(float));
  MatrixView v = f.as_matrix(4);
  EXPECT_EQ(v.rows(), 3u);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(v(r, c), m(r, c));
}

TEST_F(MmapFileTest, MissingFileThrows) {
  EXPECT_THROW(MmapFile(path("absent.raw")), InputError);
}

TEST_F(MmapFileTest, BadRowSizeThrows) {
  Matrix m(2, 3);
  write_raw_matrix(path("m.raw"), m.view());
  MmapFile f(path("m.raw"));
  EXPECT_THROW(f.as_matrix(4), InputError);
}

TEST_F(MmapFileTest, EmptyFileIsValid) {
  std::ofstream(path("empty.raw")).close();
  MmapFile f(path("empty.raw"));
  EXPECT_FALSE(f.is_open());
  EXPECT_EQ(f.size(), 0u);
}

TEST_F(MmapFileTest, MoveTransfersOwnership) {
  Matrix m(1, 2);
  write_raw_matrix(path("m.raw"), m.view());
  MmapFile a(path("m.raw"));
  MmapFile b(std::move(a));
  EXPECT_TRUE(b.is_open());
  EXPECT_FALSE(a.is_open());  // NOLINT(bugprone-use-after-move): testing moved-from state
}

TEST_F(ImageTest, PgmHeaderAndSize) {
  Matrix img(4, 5);
  img(0, 0) = -1.0f;
  img(3, 4) = 1.0f;
  write_pgm(path("u.pgm"), img.view());

  std::ifstream in(path("u.pgm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0;
  std::size_t h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P5");
  EXPECT_EQ(w, 5u);
  EXPECT_EQ(h, 4u);
  EXPECT_EQ(maxval, 255);
  in.get();  // single whitespace after header
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  EXPECT_EQ(data.size(), 20u);
  // min maps to 0, max maps to 255
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 0);
  EXPECT_EQ(static_cast<unsigned char>(data[19]), 255);
}

TEST_F(ImageTest, PpmRoundTripPixels) {
  Matrix rgb(2, 6);  // 2x2 RGB image
  rgb(0, 0) = 1.0f;  // pixel (0,0) pure red
  rgb(1, 4) = 1.0f;  // pixel (1,1) green channel
  write_ppm(path("c.ppm"), rgb.view(), 2);

  std::ifstream in(path("c.ppm"), std::ios::binary);
  std::string magic;
  std::size_t w = 0;
  std::size_t h = 0;
  int maxval = 0;
  in >> magic >> w >> h >> maxval;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 2u);
  EXPECT_EQ(h, 2u);
  in.get();
  std::string data((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  ASSERT_EQ(data.size(), 12u);
  EXPECT_EQ(static_cast<unsigned char>(data[0]), 255);   // red of (0,0)
  EXPECT_EQ(static_cast<unsigned char>(data[1]), 0);
  EXPECT_EQ(static_cast<unsigned char>(data[10]), 255);  // green of (1,1)
}

TEST_F(ImageTest, PpmWrongShapeThrows) {
  Matrix rgb(2, 5);
  EXPECT_THROW(write_ppm(path("c.ppm"), rgb.view(), 2), InputError);
}

TEST_F(ImageTest, ConstantImageDoesNotDivideByZero) {
  Matrix img(2, 2, 3.0f);
  write_pgm(path("flat.pgm"), img.view());
  std::ifstream in(path("flat.pgm"), std::ios::binary);
  ASSERT_TRUE(in.good());
}

}  // namespace
}  // namespace mrbio
