// Smoke tests running every example binary as a subprocess: each must exit
// zero and produce its advertised outputs. Binary paths injected by CMake.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#ifndef MRBIO_EXAMPLE_DIR
#error "MRBIO_EXAMPLE_DIR must be defined by the build"
#endif

namespace {

namespace fs = std::filesystem;

class ExamplesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("mrbio_examples_" +
            std::string(::testing::UnitTest::GetInstance()->current_test_info()->name()));
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  int run(const std::string& name, const std::string& args = "") {
    const std::string cmd = std::string(MRBIO_EXAMPLE_DIR) + "/" + name + " " + args +
                            " > " + (dir_ / "out.txt").string() + " 2>&1";
    return std::system(cmd.c_str());
  }

  std::string output() const {
    std::ifstream in(dir_ / "out.txt");
    return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
  }

  fs::path dir_;
};

TEST_F(ExamplesTest, HelpWorksForAll) {
  for (const char* name : {"quickstart", "metagenome_binning", "protein_search", "rgb_som",
                           "translated_search"}) {
    EXPECT_EQ(run(name, "--help"), 0) << name;
  }
}

TEST_F(ExamplesTest, Quickstart) {
  ASSERT_EQ(run("quickstart", "--workdir " + (dir_ / "w").string()), 0);
  const std::string out = output();
  EXPECT_NE(out.find("HSPs reported"), std::string::npos);
  EXPECT_NE(out.find("genome0"), std::string::npos);
}

TEST_F(ExamplesTest, MetagenomeBinning) {
  const std::string um = (dir_ / "u.pgm").string();
  ASSERT_EQ(run("metagenome_binning", "--umatrix " + um), 0);
  const std::string out = output();
  EXPECT_NE(out.find("BMU purity"), std::string::npos);
  EXPECT_TRUE(fs::exists(um));
  // Purity printed as "purity: 0.xxx"; demand a decent bin separation.
  const auto pos = out.find("BMU purity: ");
  ASSERT_NE(pos, std::string::npos);
  const double purity = std::stod(out.substr(pos + 12));
  EXPECT_GT(purity, 0.8);
}

TEST_F(ExamplesTest, ProteinSearch) {
  ASSERT_EQ(run("protein_search", "--workdir " + (dir_ / "w").string()), 0);
  const std::string out = output();
  EXPECT_NE(out.find("homolog_d10"), std::string::npos);
  EXPECT_NE(out.find("homolog_d55"), std::string::npos);
}

TEST_F(ExamplesTest, RgbSom) {
  const std::string prefix = (dir_ / "rgb").string();
  ASSERT_EQ(run("rgb_som", "--out " + prefix + " --grid 20 --epochs 10 --vectors 100"), 0);
  EXPECT_TRUE(fs::exists(prefix + "_before.ppm"));
  EXPECT_TRUE(fs::exists(prefix + "_after.ppm"));
  EXPECT_TRUE(fs::exists(prefix + "_umatrix.pgm"));
}

TEST_F(ExamplesTest, TranslatedSearch) {
  ASSERT_EQ(run("translated_search", "--workdir " + (dir_ / "w").string()), 0);
  const std::string out = output();
  EXPECT_NE(out.find("enzymeA"), std::string::npos);
  EXPECT_NE(out.find("frame -"), std::string::npos);
  EXPECT_NE(out.find("no hits"), std::string::npos);  // the noise read
  EXPECT_NE(out.find("Query  1"), std::string::npos); // pairwise block
}

}  // namespace
