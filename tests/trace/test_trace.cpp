// Tests for the mrbio::trace layer: metric arithmetic on hand-built
// recorders, instrumentation of real simulated runs (MapReduce phases,
// master-worker service spans, BLAST app spans), the Chrome JSON export,
// and the zero-perturbation guarantee (virtual times are identical with
// tracing on and off).
#include "trace/trace.hpp"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "mpi/comm.hpp"
#include "mrblast/mrblast.hpp"
#include "mrmpi/mapreduce.hpp"
#include "sim/engine.hpp"

namespace mrbio::trace {
namespace {

TEST(TraceRecorder, StoresPerRankLanes) {
  Recorder rec(3);
  rec.add(0, Category::Compute, "compute", 0.0, 1.0);
  rec.add(2, Category::App, "search", 1.0, 2.5, 7, 128);
  EXPECT_EQ(rec.size(), 2u);
  EXPECT_EQ(rec.rank_events(0).size(), 1u);
  EXPECT_TRUE(rec.rank_events(1).empty());
  ASSERT_EQ(rec.rank_events(2).size(), 1u);
  const Event& e = rec.rank_events(2)[0];
  EXPECT_STREQ(e.name, "search");
  EXPECT_EQ(e.kv_pairs, 7u);
  EXPECT_EQ(e.bytes, 128u);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
}

TEST(TraceSummary, BusyCommIdleArithmetic) {
  // Rank 0: busy [0,2] and [1,3] (overlap -> union 3 s), comm [2.5,4]
  // (0.5 s overlaps busy, so comm charges 1 s), final time 5 -> idle 1 s.
  Recorder rec(2);
  rec.add(0, Category::Compute, "compute", 0.0, 2.0);
  rec.add(0, Category::App, "search", 1.0, 3.0);
  rec.add(0, Category::Collective, "reduce", 2.5, 4.0);
  rec.set_final_time(0, 5.0);
  rec.set_final_time(1, 5.0);
  const Summary s = summarize(rec);
  ASSERT_EQ(s.ranks.size(), 2u);
  EXPECT_DOUBLE_EQ(s.ranks[0].busy_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.ranks[0].comm_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.ranks[0].idle_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.ranks[0].final_time, 5.0);
  // Rank 1 never worked: all idle.
  EXPECT_DOUBLE_EQ(s.ranks[1].busy_seconds, 0.0);
  EXPECT_DOUBLE_EQ(s.ranks[1].idle_seconds, 5.0);
}

TEST(TraceSummary, IoCountsAsBusyAndIsTrackedSeparately) {
  Recorder rec(1);
  rec.add(0, Category::Io, "db_load", 0.0, 2.0, 0, 4096);
  rec.add(0, Category::App, "search", 2.0, 3.0);
  rec.set_final_time(0, 3.0);
  const Summary s = summarize(rec);
  EXPECT_DOUBLE_EQ(s.ranks[0].busy_seconds, 3.0);
  EXPECT_DOUBLE_EQ(s.ranks[0].io_seconds, 2.0);
  EXPECT_DOUBLE_EQ(s.ranks[0].idle_seconds, 0.0);
  const PhaseRow* row = s.phase(Category::Io, "db_load");
  ASSERT_NE(row, nullptr);
  EXPECT_EQ(row->count, 1u);
  EXPECT_EQ(row->bytes, 4096u);
}

TEST(TraceSummary, PhaseRowsAggregateByCategoryAndName) {
  Recorder rec(2);
  rec.add(0, Category::Phase, "map", 0.0, 2.0, 10, 100);
  rec.add(1, Category::Phase, "map", 0.0, 3.0, 20, 200);
  rec.add(0, Category::Task, "map_task", 0.0, 1.0);
  rec.add(0, Category::Task, "map_task", 1.0, 2.0);
  const Summary s = summarize(rec);
  const PhaseRow* map = s.phase(Category::Phase, "map");
  ASSERT_NE(map, nullptr);
  EXPECT_EQ(map->count, 2u);
  EXPECT_DOUBLE_EQ(map->seconds, 5.0);
  EXPECT_DOUBLE_EQ(map->max_seconds, 3.0);
  EXPECT_EQ(map->kv_pairs, 30u);
  EXPECT_EQ(map->bytes, 300u);
  EXPECT_EQ(s.ranks[0].tasks, 2u);
  EXPECT_EQ(s.ranks[1].tasks, 0u);
}

TEST(TraceUtilization, MatchesHandComputedBuckets) {
  // 2 cores, bucket 1 s: rank 0 busy [0, 1.5], rank 1 busy [0.5, 2].
  // bucket 0: 1.0 + 0.5 = 1.5 -> 0.75; bucket 1: 0.5 + 1.0 = 1.5 -> 0.75.
  Recorder rec(2);
  rec.add(0, Category::App, "search", 0.0, 1.5);
  rec.add(1, Category::App, "search", 0.5, 2.0);
  const auto series = utilization_series(rec, Category::App, "search", 1.0, 2);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 0.75);
  EXPECT_DOUBLE_EQ(series[1], 0.75);
  EXPECT_DOUBLE_EQ(total_seconds(rec, Category::App, "search"), 3.0);
}

TEST(TraceChromeJson, StructurallyValidOneLanePerRank) {
  Recorder rec(2);
  rec.add(0, Category::Phase, "map", 0.0, 1.0, 5, 50);
  rec.add(1, Category::App, "search", 0.5, 1.5);
  const auto path =
      (std::filesystem::temp_directory_path() / "mrbio_test_trace.json").string();
  write_chrome_trace(path, rec);
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string json = ss.str();
  std::filesystem::remove(path);

  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // One thread_name metadata record per rank.
  EXPECT_NE(json.find("\"args\":{\"name\":\"rank 0\"}"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"name\":\"rank 1\"}"), std::string::npos);
  // Complete events with microsecond timestamps and attributes.
  EXPECT_NE(json.find("\"name\":\"map\",\"cat\":\"phase\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(json.find("\"kv_pairs\":5"), std::string::npos);
  // Balanced braces/brackets -- cheap structural sanity for the writer.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['),
            std::count(json.begin(), json.end(), ']'));
}

// ---------------------------------------------------------------------------
// Instrumented simulated runs

double run_traced(int nprocs, Recorder* rec,
                  const std::function<void(mpi::Comm&)>& body) {
  sim::EngineConfig ec;
  ec.nprocs = nprocs;
  ec.stack_bytes = 512 * 1024;
  ec.recorder = rec;
  sim::Engine engine(ec);
  engine.run([&](sim::Process& p) {
    mpi::Comm comm(p);
    body(comm);
  });
  return engine.elapsed();
}

void word_count(mpi::Comm& comm) {
  mrmpi::MapReduceConfig cfg;
  cfg.map_style = mrmpi::MapStyle::MasterWorker;
  mrmpi::MapReduce mr(comm, cfg);
  mr.map(12, [&](std::uint64_t t, mrmpi::KeyValue& kv) {
    comm.compute(0.01);
    kv.add("k" + std::to_string(t % 3), "1");
  });
  mr.collate();
  mr.reduce([](const mrmpi::KmvGroup&, mrmpi::KeyValue&) {});
  mr.gather();
}

TEST(TraceMapReduce, RecordsPhaseAndTaskSpans) {
  Recorder rec(4);
  run_traced(4, &rec, word_count);
  const Summary s = summarize(rec);
  for (const char* phase : {"map", "aggregate", "convert", "reduce", "gather"}) {
    const PhaseRow* row = s.phase(Category::Phase, phase);
    ASSERT_NE(row, nullptr) << phase;
    EXPECT_GT(row->count, 0u) << phase;
  }
  // The map phase carries the emitted KV pairs (12 tasks x 1 pair).
  EXPECT_EQ(s.phase(Category::Phase, "map")->kv_pairs, 12u);
  // 12 tasks ran, all on workers (master rank 0 serves).
  std::uint64_t tasks = 0;
  for (const auto& m : s.ranks) tasks += m.tasks;
  EXPECT_EQ(tasks, 12u);
  EXPECT_EQ(s.ranks[0].tasks, 0u);
  // Master service spans: one per answered request = tasks + stop tokens.
  const PhaseRow* svc = s.phase(Category::Phase, "mw_service");
  ASSERT_NE(svc, nullptr);
  EXPECT_EQ(svc->count, 12u + 3u);
  // Every rank reached the same final virtual time (collectives sync).
  for (const auto& m : s.ranks) EXPECT_GT(m.final_time, 0.0);
}

TEST(TraceMapReduce, PhaseTracingCanBeDisabledPerInstance) {
  Recorder rec(2);
  run_traced(2, &rec, [](mpi::Comm& comm) {
    mrmpi::MapReduceConfig cfg;
    cfg.trace_phases = false;
    mrmpi::MapReduce mr(comm, cfg);
    mr.map(4, [](std::uint64_t, mrmpi::KeyValue& kv) { kv.add("k", "v"); });
    mr.aggregate();
  });
  const Summary s = summarize(rec);
  EXPECT_EQ(s.phase(Category::Phase, "map"), nullptr);
  EXPECT_EQ(s.phase(Category::Phase, "aggregate"), nullptr);
}

TEST(TraceFullLevel, RecordsMessageAndComputeEvents) {
  Recorder rec(2, Level::Full);
  run_traced(2, &rec, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(0.5);
      comm.send_bytes(1, 7, std::vector<std::byte>(64));
    } else {
      comm.recv_bytes(0, 7);
    }
  });
  const Summary s = summarize(rec);
  const PhaseRow* compute = s.phase(Category::Compute, "compute");
  ASSERT_NE(compute, nullptr);
  EXPECT_DOUBLE_EQ(compute->max_seconds, 0.5);
  ASSERT_NE(s.phase(Category::Send, "send"), nullptr);
  const PhaseRow* recv = s.phase(Category::RecvWait, "recv");
  ASSERT_NE(recv, nullptr);
  // Rank 1 posted at t=0 and the message arrived later: non-zero wait.
  EXPECT_GT(recv->seconds, 0.0);
}

TEST(TraceFullLevel, PhasesLevelSkipsPerMessageEvents) {
  Recorder rec(2);  // Level::Phases
  run_traced(2, &rec, [](mpi::Comm& comm) {
    if (comm.rank() == 0) {
      comm.compute(0.5);
      comm.send_bytes(1, 7, std::vector<std::byte>(64));
    } else {
      comm.recv_bytes(0, 7);
    }
  });
  const Summary s = summarize(rec);
  EXPECT_EQ(s.phase(Category::Compute, "compute"), nullptr);
  EXPECT_EQ(s.phase(Category::Send, "send"), nullptr);
  EXPECT_EQ(s.phase(Category::RecvWait, "recv"), nullptr);
}

TEST(TraceCollectives, TaggedAtBothLevels) {
  Recorder rec(3);  // Phases level still records collectives
  run_traced(3, &rec, [](mpi::Comm& comm) {
    std::vector<std::uint64_t> v{1};
    comm.reduce(v, mpi::ReduceOp::Sum, 0);
    std::vector<std::byte> b(16);
    comm.bcast(b, 0);
  });
  const Summary s = summarize(rec);
  const PhaseRow* reduce = s.phase(Category::Collective, "reduce");
  ASSERT_NE(reduce, nullptr);
  EXPECT_EQ(reduce->count, 3u);  // every rank participates
  ASSERT_NE(s.phase(Category::Collective, "bcast"), nullptr);
}

// ---------------------------------------------------------------------------
// BLAST driver integration

mrblast::SimRunConfig small_sim() {
  mrblast::SimRunConfig config;
  config.workload.total_queries = 4'000;
  config.workload.queries_per_block = 250;
  config.workload.db_partitions = 4;
  config.workload.mean_seconds_per_query = 0.02;
  return config;
}

TEST(TraceBlastSim, UtilizationMatchesLegacyTracker) {
  // The App/"search" spans cover exactly the intervals handed to the
  // legacy UtilizationTracker; the two Fig. 5 pipelines must agree up to
  // summation order (the tracker accumulates in insertion order, the
  // trace rank-major), i.e. to ~1e-12 -- far inside the 1% bar.
  auto config = small_sim();
  workload::UtilizationTracker tracker;
  config.tracker = &tracker;
  Recorder rec(9);
  const double elapsed = run_traced(9, &rec, [&](mpi::Comm& comm) {
    mrblast::run_blast_sim(comm, config);
  });
  ASSERT_GT(elapsed, 0.0);
  const double bucket = elapsed / 16.0;
  const auto legacy = tracker.series(bucket, 9);
  const auto traced = utilization_series(rec, Category::App, "search", bucket, 9);
  ASSERT_EQ(traced.size(), legacy.size());
  for (std::size_t b = 0; b < traced.size(); ++b) {
    EXPECT_NEAR(traced[b], legacy[b], 1e-9) << "bucket " << b;
  }
}

TEST(TraceBlastSim, RecordsDbLoadIoSpans) {
  auto config = small_sim();
  Recorder rec(5);
  run_traced(5, &rec, [&](mpi::Comm& comm) { mrblast::run_blast_sim(comm, config); });
  const Summary s = summarize(rec);
  const PhaseRow* load = s.phase(Category::Io, "db_load");
  ASSERT_NE(load, nullptr);
  EXPECT_GT(load->count, 0u);
  EXPECT_GT(s.phase(Category::App, "search")->count, 0u);
}

TEST(TraceZeroPerturbation, VirtualTimesIdenticalWithTracingOnAndOff) {
  // The acceptance bar for the whole layer: attaching a recorder (even at
  // Full level) must not move a single virtual clock.
  auto config = small_sim();
  const double bare = run_traced(7, nullptr, [&](mpi::Comm& comm) {
    mrblast::run_blast_sim(comm, config);
  });
  Recorder phases(7);
  const double traced = run_traced(7, &phases, [&](mpi::Comm& comm) {
    mrblast::run_blast_sim(comm, config);
  });
  Recorder full(7, Level::Full);
  const double traced_full = run_traced(7, &full, [&](mpi::Comm& comm) {
    mrblast::run_blast_sim(comm, config);
  });
  EXPECT_DOUBLE_EQ(bare, traced);
  EXPECT_DOUBLE_EQ(bare, traced_full);
  EXPECT_GT(full.size(), phases.size());  // Full really records more
}

}  // namespace
}  // namespace mrbio::trace
