// Tests for the paper-scale workload oracle: determinism, distribution
// shape, the cluster RAM cache model, and the utilization tracker.
#include "workload/blast_model.hpp"

#include <gtest/gtest.h>

#include "common/error.hpp"
#include "common/stats.hpp"

namespace mrbio::workload {
namespace {

BlastWorkloadConfig small_config() {
  BlastWorkloadConfig c;
  c.total_queries = 8'000;
  c.queries_per_block = 1'000;
  c.db_partitions = 10;
  return c;
}

TEST(BlastWorkload, UnitEnumeration) {
  const BlastWorkload wl(small_config());
  EXPECT_EQ(wl.num_blocks(), 8u);
  EXPECT_EQ(wl.num_units(), 80u);
  EXPECT_EQ(wl.block_of(0), 0u);
  EXPECT_EQ(wl.partition_of(0), 0u);
  EXPECT_EQ(wl.block_of(25), 2u);
  EXPECT_EQ(wl.partition_of(25), 5u);
}

TEST(BlastWorkload, ShortLastBlock) {
  BlastWorkloadConfig c = small_config();
  c.total_queries = 8'500;
  const BlastWorkload wl(c);
  EXPECT_EQ(wl.num_blocks(), 9u);
  EXPECT_EQ(wl.block_queries(0), 1'000u);
  EXPECT_EQ(wl.block_queries(8), 500u);
}

TEST(BlastWorkload, CostsAreDeterministic) {
  const BlastWorkload a(small_config());
  const BlastWorkload b(small_config());
  for (std::uint64_t u = 0; u < a.num_units(); ++u) {
    EXPECT_DOUBLE_EQ(a.unit_compute_seconds(u), b.unit_compute_seconds(u));
    EXPECT_EQ(a.unit_hits(u), b.unit_hits(u));
  }
}

TEST(BlastWorkload, DifferentSeedsDiffer) {
  BlastWorkloadConfig c2 = small_config();
  c2.seed = 999;
  const BlastWorkload a(small_config());
  const BlastWorkload b(c2);
  int diffs = 0;
  for (std::uint64_t u = 0; u < a.num_units(); ++u) {
    if (a.unit_compute_seconds(u) != b.unit_compute_seconds(u)) ++diffs;
  }
  EXPECT_GT(diffs, 70);
}

TEST(BlastWorkload, MeanCostMatchesConfiguration) {
  BlastWorkloadConfig c = small_config();
  c.total_queries = 100'000;
  c.lognormal_sigma = 0.8;
  const BlastWorkload wl(c);
  RunningStats s;
  for (std::uint64_t u = 0; u < wl.num_units(); ++u) s.add(wl.unit_compute_seconds(u));
  const double expected = c.mean_seconds_per_query * static_cast<double>(c.queries_per_block);
  EXPECT_NEAR(s.mean(), expected, expected * 0.1);
}

TEST(BlastWorkload, HeavyTailPresent) {
  BlastWorkloadConfig c = small_config();
  c.total_queries = 100'000;
  c.lognormal_sigma = 1.0;
  const BlastWorkload wl(c);
  RunningStats s;
  for (std::uint64_t u = 0; u < wl.num_units(); ++u) s.add(wl.unit_compute_seconds(u));
  // A lognormal with sigma=1 has max >> mean over 1000 draws.
  EXPECT_GT(s.max(), 5.0 * s.mean());
}

TEST(BlastWorkload, WarmFractionGrowsWithCores) {
  BlastWorkloadConfig c;  // paper scale: 109 GB DB, 2 GB/core
  const BlastWorkload wl(c);
  const double f32 = wl.warm_fraction(32);
  const double f64 = wl.warm_fraction(64);
  const double f128 = wl.warm_fraction(128);
  EXPECT_LT(f32, 0.7);  // 64 GB of 109 GB
  EXPECT_GT(f64, f32);
  EXPECT_DOUBLE_EQ(f128, 1.0);  // 256 GB >= 109 GB: fully cached
}

TEST(BlastWorkload, LoadCostReflectsWarmFraction) {
  BlastWorkloadConfig c;
  const BlastWorkload wl(c);
  // At 1024 cores everything is warm.
  for (std::uint64_t u = 0; u < 50; ++u) {
    EXPECT_DOUBLE_EQ(wl.load_seconds(u, static_cast<int>(u % 7), 1024),
                     c.warm_load_seconds);
  }
  // At 16 cores (32 GB of 109 GB) most loads are cold.
  int cold = 0;
  for (std::uint64_t u = 0; u < 200; ++u) {
    if (wl.load_seconds(u, 1, 16) == c.cold_load_seconds) ++cold;
  }
  EXPECT_GT(cold, 100);
}

TEST(BlastWorkload, HitsScaleWithConfig) {
  BlastWorkloadConfig c = small_config();
  const BlastWorkload wl(c);
  RunningStats s;
  for (std::uint64_t u = 0; u < wl.num_units(); ++u) {
    s.add(static_cast<double>(wl.unit_hits(u)));
  }
  const double expected = c.hits_per_query * static_cast<double>(c.queries_per_block) /
                          static_cast<double>(c.db_partitions);
  EXPECT_NEAR(s.mean(), expected, expected * 0.5);
}

TEST(BlastWorkload, ProteinPresetIsCpuBound) {
  const BlastWorkloadConfig p = protein_workload_config();
  const BlastWorkload wl(p);
  // Compute per unit dwarfs the load cost -- the paper's explanation for
  // the protein search's near-perfect scaling.
  const double mean_compute =
      p.mean_seconds_per_query * static_cast<double>(p.queries_per_block);
  EXPECT_GT(mean_compute, 20.0 * p.cold_load_seconds);
}

TEST(BlastWorkload, EmptyConfigRejected) {
  BlastWorkloadConfig c;
  c.total_queries = 0;
  EXPECT_THROW(BlastWorkload{c}, InputError);
}

TEST(UtilizationTracker, SeriesComputesBusyFraction) {
  UtilizationTracker t;
  t.add(0, 0.0, 10.0);
  t.add(1, 0.0, 5.0);
  const auto series = t.series(5.0, 2);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 1.0);  // both cores busy in [0,5)
  EXPECT_DOUBLE_EQ(series[1], 0.5);  // one of two cores busy in [5,10)
}

TEST(UtilizationTracker, PartialBucketOverlap) {
  UtilizationTracker t;
  t.add(0, 2.5, 7.5);
  const auto series = t.series(5.0, 1);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_DOUBLE_EQ(series[0], 0.5);
  EXPECT_DOUBLE_EQ(series[1], 0.5);
}

TEST(UtilizationTracker, TotalBusySeconds) {
  UtilizationTracker t;
  t.add(0, 0.0, 3.0);
  t.add(5, 1.0, 2.0);
  EXPECT_DOUBLE_EQ(t.total_busy_seconds(), 4.0);
}

TEST(UtilizationTracker, RejectsNegativeInterval) {
  UtilizationTracker t;
  EXPECT_THROW(t.add(0, 5.0, 4.0), InputError);
}

}  // namespace
}  // namespace mrbio::workload
